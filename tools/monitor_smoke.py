#!/usr/bin/env python3
"""Monitor smoke test: daemon access log -> reducers -> batch identity.

The end-to-end streaming contract, exercised the way CI can trust it:
a *separate process* runs ``python -m repro serve --access-log`` (real
sockets, real JSONL appends), a loadgen burst generates traffic whose
byte-identity gate must pass, and then ``repro monitor`` replays the
access log through the mergeable reducers — whose aggregates must
match an in-process replay of the very same traffic, and must converge
across partitioned merges.

Steps:

1. bind port 0 to find a free port, then start ``repro serve --port P
   --access-log LOG`` with pinned --seed/--responders/--certs;
2. poll ``GET /-/healthz`` until the daemon answers;
3. run a ``repro loadgen`` burst — its exit code is the hard
   byte-identity + structural gate;
4. SIGINT the daemon (flushes and reports the access log), require
   exit 0;
5. ``repro monitor replay LOG --partitions 5`` — non-zero exit means
   partitioned reducer merges diverged from the single-partition
   answer;
6. independently rebuild the same traffic in-process, reduce the
   in-process access events, and require the access-side aggregates
   (statuses, sources, sizes, hosts) to match the daemon log's
   reduction exactly — the stream-vs-batch identity over real TCP.

Usage: ``python tools/monitor_smoke.py [requests]`` (default 1500).
Exit 0 on success.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
SEED = 6961
RESPONDERS = 16
CERTS = 2
READY_WAIT_S = 120.0
SHUTDOWN_WAIT_S = 15.0


def _env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _healthz(port: int) -> bool:
    from repro.runtime.sock import dial

    try:
        # dial() retries refusals with bounded deterministic backoff,
        # so one probe racing the daemon's bind isn't a false negative.
        with dial("127.0.0.1", port, attempts=5, timeout_s=10.0) as conn:
            conn.sendall(b"GET /-/healthz HTTP/1.1\r\nHost: c\r\n\r\n")
            conn.shutdown(socket.SHUT_WR)
            chunks = []
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        reply = b"".join(chunks)
    except OSError:
        return False
    return b" 200 " in reply.split(b"\r\n", 1)[0] and reply.endswith(b"ok")


def main() -> int:
    requests = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    port = _free_port()
    log_path = REPO_ROOT / f"monitor_smoke_access_{port}.jsonl"
    common = ["--seed", str(SEED), "--responders", str(RESPONDERS),
              "--certs", str(CERTS)]

    # 1-2. Boot the daemon with an access log; wait for /-/healthz.
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--access-log", str(log_path)] + common,
        env=_env(), stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
        text=True)
    try:
        deadline = time.time() + READY_WAIT_S
        while time.time() < deadline and daemon.poll() is None:
            if _healthz(port):
                break
            time.sleep(0.2)
        else:
            stderr = daemon.stderr.read() if daemon.poll() is not None else ""
            print(f"daemon never became healthy on port {port}\n{stderr}")
            return 1
        print(f"daemon healthy on port {port}, access log {log_path.name}")

        # 3. The burst.  loadgen's exit code is the hard gate: digest
        # mismatch, dropped responses, or non-200 statuses all fail.
        # One connection serializes the daemon's cache-vs-sign
        # decisions, so the access log's provenance tags are
        # reproducible in-process (step 6); byte-identity itself holds
        # at any concurrency.
        burst = subprocess.run(
            [sys.executable, "-m", "repro", "loadgen", "--port", str(port),
             "--requests", str(requests), "--concurrency", "1",
             "--nonce-fraction", "0.02"] + common,
            env=_env(), capture_output=True, text=True)
        sys.stdout.write(burst.stdout)
        if burst.returncode != 0:
            print(f"loadgen burst failed (exit {burst.returncode}):\n"
                  f"{burst.stderr}")
            return 1

        # 4. Clean shutdown flushes the log.
        daemon.send_signal(signal.SIGINT)
        daemon.wait(timeout=SHUTDOWN_WAIT_S)
        if daemon.returncode != 0:
            print(f"daemon exited {daemon.returncode} on SIGINT\n"
                  f"{daemon.stderr.read()}")
            return 1
        print("daemon exited cleanly on SIGINT")

        # 5. The CLI convergence gate over the daemon's own log.
        replay = subprocess.run(
            [sys.executable, "-m", "repro", "monitor", "replay",
             str(log_path), "--partitions", "5"],
            env=_env(), capture_output=True, text=True)
        sys.stdout.write(replay.stdout)
        if replay.returncode != 0:
            print(f"monitor replay gate failed (exit {replay.returncode}):"
                  f"\n{replay.stderr}")
            return 1

        # 6. Stream-vs-batch identity: the daemon's access log must
        # reduce to the same access-side aggregates as an in-process
        # replay of the identical seeded traffic.
        from repro.datasets import MeasurementWorld, WorldConfig
        from repro.monitor import read_events, reduce_log, default_reducers
        from repro.serve import ServeApp, replay_inprocess, synthesize_traffic
        from repro.simnet import HOUR

        with open(log_path, "r", encoding="ascii") as stream:
            logged = read_events(stream)
        # Only the burst's OCSP traffic: the daemon also logs the
        # healthz polls ("control" rows) the in-process app never sees.
        ocsp_rows = [e for e in logged if e.data["source"] != "control"]

        world = MeasurementWorld(WorldConfig(
            n_responders=RESPONDERS, certs_per_responder=CERTS, seed=SEED))
        app = ServeApp.for_world(world, now=world.config.start + HOUR)
        inprocess = []
        app.access_sink = inprocess.append
        traffic = synthesize_traffic(world, requests, seed=SEED,
                                     nonce_fraction=0.02)
        replay_inprocess(app, traffic, record_latency=False)

        reducer = default_reducers()["response-stats"]
        stream_final = reducer.finalize(
            reduce_log(ocsp_rows)["response-stats"])
        batch_final = reducer.finalize(
            reduce_log(inprocess)["response-stats"])
        if stream_final != batch_final:
            print("access-log aggregates diverge from the in-process "
                  "replay:")
            print(f"  stream: {json.dumps(stream_final, sort_keys=True)}")
            print(f"  batch:  {json.dumps(batch_final, sort_keys=True)}")
            return 1
        print(f"stream == batch over {stream_final['events']} access "
              f"events: statuses {stream_final['status_counts']}, "
              f"sources {stream_final['sources']}, "
              f"{stream_final['total_bytes']} bytes")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()
        log_path.unlink(missing_ok=True)

    print("monitor smoke clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
