#!/usr/bin/env python3
"""Recorded perf trajectory for the headline campaigns.

Runs ``fig3`` (the availability scan), ``hostile-corpus`` (the
mutation survival matrix), ``serve-loadtest`` (the responder
daemon's byte-identity + warm-cache load test), and
``monitor-convergence`` (streaming reducer merges vs the batch
pipeline, plus the event replay rate) through
:func:`repro.runtime.run_experiment` twice each — cold (fresh cache,
every shard executes) and warm (same cache, every shard restores) —
and emits one JSON artifact per campaign:

* ``BENCH_fig3_availability.json``
* ``BENCH_hostile_corpus.json``
* ``BENCH_serve_loadtest.json``
* ``BENCH_monitor_replay.json``
* ``BENCH_dist_socket.json`` (``fig3`` over the TCP socket transport:
  wall time plus wire telemetry — frames, reconnects, reclaims)

Each artifact records wall time (cold and warm), shard count, and the
warm-run cache hit rate; ``serve-loadtest`` additionally records its
summary throughput (req/s, p50/p99 latency) and identity verdict.
With committed baselines under ``benchmarks/baselines/`` the tool
doubles as a regression gate: shard count and cache hit rate must not
regress at all (both are deterministic), byte-identity must hold,
and cold wall time / serving throughput must stay within
``REPRO_BENCH_TOLERANCE`` (default 0.25 — the >25%% CI gate) of the
baseline.

Usage::

    python tools/bench_trajectory.py [--out-dir DIR] [--workers N]
    python tools/bench_trajectory.py --campaign serve-loadtest
    python tools/bench_trajectory.py --write-baseline   # refresh baselines

Exit code 0 when clean (or no baseline committed yet), 1 on
regression.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

SCHEMA = "repro-bench/1"
BASELINE_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"

#: experiment id -> artifact stem.
CAMPAIGNS = {
    "fig3": "BENCH_fig3_availability",
    "hostile-corpus": "BENCH_hostile_corpus",
    "serve-loadtest": "BENCH_serve_loadtest",
    "monitor-convergence": "BENCH_monitor_replay",
    "dist-socket": "BENCH_dist_socket",
}

#: Short spellings accepted by ``--campaign``.
CAMPAIGN_ALIASES = {"monitor": "monitor-convergence"}

#: Summary fields copied into the artifact when the experiment's
#: summary carries them (the serve-loadtest throughput headline, the
#: monitor's replay rate and convergence verdict).
SUMMARY_FIELDS = ("req_per_s", "p50_ms", "p99_ms", "byte_identical",
                  "events", "events_per_s", "converged", "merge_commutes")


def _tolerance() -> float:
    return float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.25"))


def bench_campaign(experiment_id: str, workers: int) -> Dict[str, object]:
    """Cold+warm run of one campaign against a fresh cache."""
    from repro.runtime import run_experiment

    cache_dir = tempfile.mkdtemp(prefix=f"bench-{experiment_id}-")
    try:
        started = time.perf_counter()
        cold = run_experiment(experiment_id, workers=workers,
                              cache=True, cache_dir=cache_dir)
        cold_wall = time.perf_counter() - started

        started = time.perf_counter()
        warm = run_experiment(experiment_id, workers=workers,
                              cache=True, cache_dir=cache_dir)
        warm_wall = time.perf_counter() - started
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    shards = len(warm.provenance.shards)
    hit_rate = (warm.provenance.cached_shards / shards) if shards else 0.0
    record = {
        "schema": SCHEMA,
        "experiment": experiment_id,
        "workers": workers,
        "shards": shards,
        "cold_wall_s": round(cold_wall, 3),
        "warm_wall_s": round(warm_wall, 3),
        "cache_hit_rate": round(hit_rate, 4),
        "cold_cache": cold.cache_status,
        "warm_cache": warm.cache_status,
        "code_version": warm.provenance.code_version,
    }
    # Timing summaries come from the COLD run: the warm run restores
    # cached shard rows, whose timings are the cold run's anyway.
    for field in SUMMARY_FIELDS:
        if field in cold.summary:
            record[field] = cold.summary[field]
    return record


def bench_dist_socket(workers: int) -> Dict[str, object]:
    """Cold+warm ``fig3`` over the TCP socket transport.

    The cold leg runs against an explicitly constructed
    :class:`~repro.runtime.sock.SocketTransport` so the artifact can
    record the wire telemetry (frames each way, reconnects, reclaims)
    alongside wall time; the warm leg exercises the string-transport
    path (``transport="socket"``) end to end, spawn and reap included.
    """
    from repro.runtime import (QueueTuning, SocketTransport,
                               run_experiment, spawn_socket_workers)
    from repro.runtime.dist import join_workers

    fleet = max(2, min(workers, 4))
    cache_dir = tempfile.mkdtemp(prefix="bench-dist-socket-")
    transport = SocketTransport("127.0.0.1", 0)
    try:
        processes = spawn_socket_workers(
            transport.host, transport.port, fleet, cache_dir=cache_dir)
        started = time.perf_counter()
        cold = run_experiment("fig3", workers=fleet, cache=True,
                              cache_dir=cache_dir, transport=transport,
                              shard_timeout=120.0)
        cold_wall = time.perf_counter() - started
        stats = transport.stats()
    finally:
        transport.close()
    join_workers(processes)

    try:
        started = time.perf_counter()
        warm = run_experiment("fig3", workers=fleet, cache=True,
                              cache_dir=cache_dir, transport="socket",
                              listen="127.0.0.1:0",
                              queue_tuning=QueueTuning(),
                              shard_timeout=120.0)
        warm_wall = time.perf_counter() - started
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    shards = len(warm.provenance.shards)
    hit_rate = (warm.provenance.cached_shards / shards) if shards else 0.0
    return {
        "schema": SCHEMA,
        "experiment": "fig3",
        "transport": "socket",
        "workers": fleet,
        "shards": shards,
        "cold_wall_s": round(cold_wall, 3),
        "warm_wall_s": round(warm_wall, 3),
        "cache_hit_rate": round(hit_rate, 4),
        "cold_cache": cold.cache_status,
        "warm_cache": warm.cache_status,
        "code_version": warm.provenance.code_version,
        # Wire telemetry from the cold leg.  frames_sent varies with
        # heartbeat timing, so the gate only bounds the failure
        # counters (see compare()).
        "frames_sent": stats["frames_sent"],
        "frames_received": stats["frames_received"],
        "connects": stats["connects"],
        "reconnects": stats["reconnects"],
        "jobs_reclaimed": stats["jobs_reclaimed"],
        "protocol_errors": stats["protocol_errors"],
    }


def compare(current: Dict[str, object], baseline: Dict[str, object],
            tolerance: float) -> List[str]:
    """Regressions of *current* vs *baseline* (empty when clean)."""
    problems: List[str] = []
    if current["shards"] != baseline["shards"]:
        problems.append(
            f"shard count changed: {baseline['shards']} -> "
            f"{current['shards']} (update the baseline if intentional)")
    if current["cache_hit_rate"] < baseline["cache_hit_rate"]:
        problems.append(
            f"cache hit rate regressed: {baseline['cache_hit_rate']} -> "
            f"{current['cache_hit_rate']}")
    limit = float(baseline["cold_wall_s"]) * (1.0 + tolerance)
    if float(current["cold_wall_s"]) > limit:
        problems.append(
            f"cold wall time regressed >{tolerance * 100:.0f}%: "
            f"{baseline['cold_wall_s']}s -> {current['cold_wall_s']}s "
            f"(limit {limit:.3f}s)")
    if current.get("byte_identical") is False:
        problems.append("daemon path is no longer byte-identical to the "
                        "in-process responder core")
    if current.get("converged") is False or \
            current.get("merge_commutes") is False:
        problems.append("streaming reducer merges no longer converge "
                        "byte-identically to the batch pipeline")
    if "req_per_s" in current and "req_per_s" in baseline:
        floor = float(baseline["req_per_s"]) * (1.0 - tolerance)
        if float(current["req_per_s"]) < floor:
            problems.append(
                f"serving throughput regressed >{tolerance * 100:.0f}%: "
                f"{baseline['req_per_s']} -> {current['req_per_s']} req/s "
                f"(floor {floor:.0f})")
    if "events_per_s" in current and "events_per_s" in baseline:
        floor = float(baseline["events_per_s"]) * (1.0 - tolerance)
        if float(current["events_per_s"]) < floor:
            problems.append(
                f"event replay rate regressed >{tolerance * 100:.0f}%: "
                f"{baseline['events_per_s']} -> "
                f"{current['events_per_s']} events/s (floor {floor:.0f})")
    # Socket-transport health: an undisturbed localhost campaign has
    # no business reclaiming leases or hitting protocol errors.  These
    # gate at the baseline's level, not zero, so a deliberately noisy
    # future baseline stays expressible; frames_sent is telemetry only
    # (heartbeat counts vary with scheduling).
    for counter in ("jobs_reclaimed", "protocol_errors"):
        if counter in current and counter in baseline:
            if int(current[counter]) > int(baseline[counter]):
                problems.append(
                    f"{counter} regressed: {baseline[counter]} -> "
                    f"{current[counter]} on an undisturbed campaign")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default=".",
                        help="where the BENCH_*.json artifacts land")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--write-baseline", action="store_true",
                        help="refresh benchmarks/baselines/ instead of "
                             "comparing against it")
    parser.add_argument("--campaign", action="append", default=None,
                        choices=sorted(CAMPAIGNS) + sorted(CAMPAIGN_ALIASES),
                        help="run only this campaign (repeatable; "
                             "default: all)")
    args = parser.parse_args(argv)
    if args.campaign is not None:
        args.campaign = [CAMPAIGN_ALIASES.get(name, name)
                         for name in args.campaign]

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    tolerance = _tolerance()
    failures: List[str] = []

    selected = {name: stem for name, stem in CAMPAIGNS.items()
                if args.campaign is None or name in args.campaign}
    for experiment_id, stem in selected.items():
        if experiment_id == "dist-socket":
            record = bench_dist_socket(args.workers)
        else:
            record = bench_campaign(experiment_id, args.workers)
        artifact = out_dir / f"{stem}.json"
        artifact.write_text(json.dumps(record, indent=2, sort_keys=True)
                            + "\n")
        print(f"{experiment_id}: {record['shards']} shards, "
              f"cold {record['cold_wall_s']}s, warm {record['warm_wall_s']}s, "
              f"hit rate {record['cache_hit_rate']} -> {artifact}")

        baseline_path = BASELINE_DIR / f"{stem}.json"
        if args.write_baseline:
            BASELINE_DIR.mkdir(parents=True, exist_ok=True)
            baseline_path.write_text(
                json.dumps(record, indent=2, sort_keys=True) + "\n")
            print(f"  baseline written: {baseline_path}")
        elif baseline_path.exists():
            baseline = json.loads(baseline_path.read_text())
            for problem in compare(record, baseline, tolerance):
                failures.append(f"{experiment_id}: {problem}")
        else:
            print(f"  no baseline at {baseline_path}; comparison skipped")

    if failures:
        for failure in failures:
            print(f"REGRESSION {failure}", file=sys.stderr)
        return 1
    print("bench trajectory clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
