#!/usr/bin/env python3
"""Serve smoke test: boot the daemon, burst corpus traffic at it over
real TCP, require byte-identity with the in-process responder core,
poke it with malformed HTTP, and shut it down cleanly.

This is the transport-neutrality contract of ``repro.serve`` exercised
the way CI can trust: a *separate process* runs ``python -m repro
serve`` (so the daemon sees real sockets, real framing, real
concurrency), while ``python -m repro loadgen`` replays a seeded
corpus against it and independently recomputes every expected answer
through :func:`repro.serve.loadgen.direct_responses` — the loadgen
exits non-zero on its own if a single response byte differs.

Steps:

1. bind port 0 to find a free port, then start
   ``repro serve --port P`` with pinned --seed/--responders/--certs;
2. poll ``GET /-/healthz`` until the daemon answers (world
   construction signs certificates, so readiness takes a moment);
3. run a ~2 s ``repro loadgen`` burst — its exit code IS the
   byte-identity verdict;
4. throw malformed HTTP at the same port (garbage request line,
   oversized body, a connection dropped mid-request) and require the
   daemon to answer with the right status codes and stay up;
5. read ``/-/stats`` (must parse as JSON and show the burst), then
   SIGINT the daemon and require exit code 0.

Usage: ``python tools/serve_smoke.py [requests]`` (default 2000).
Exit 0 on success.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
SEED = 6960
RESPONDERS = 16
CERTS = 2
READY_WAIT_S = 120.0
SHUTDOWN_WAIT_S = 15.0


def _env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _raw_exchange(port: int, payload: bytes, recv: bool = True) -> bytes:
    """One TCP round trip of raw bytes (empty reply when recv=False).

    Dials via :func:`repro.runtime.sock.dial` so a probe racing the
    daemon's bind retries with bounded backoff instead of flaking.
    """
    from repro.runtime.sock import dial

    with dial("127.0.0.1", port, timeout_s=10.0) as conn:
        conn.sendall(payload)
        if not recv:
            return b""  # abrupt close: the mid-request drop probe
        conn.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                return b"".join(chunks)
            chunks.append(chunk)


def _status_line(reply: bytes) -> str:
    return reply.split(b"\r\n", 1)[0].decode("ascii", "replace")


def _healthz(port: int) -> bool:
    try:
        reply = _raw_exchange(
            port, b"GET /-/healthz HTTP/1.1\r\nHost: control\r\n\r\n")
    except OSError:
        return False
    return b" 200 " in reply.split(b"\r\n", 1)[0] and reply.endswith(b"ok")


def main() -> int:
    requests = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    port = _free_port()
    common = ["--seed", str(SEED), "--responders", str(RESPONDERS),
              "--certs", str(CERTS)]

    # 1-2. Boot the daemon; wait for /-/healthz.
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port)]
        + common,
        env=_env(), stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
        text=True)
    try:
        deadline = time.time() + READY_WAIT_S
        while time.time() < deadline and daemon.poll() is None:
            if _healthz(port):
                break
            time.sleep(0.2)
        else:
            stderr = daemon.stderr.read() if daemon.poll() is not None else ""
            print(f"daemon never became healthy on port {port}\n{stderr}")
            return 1
        print(f"daemon healthy on port {port}")

        # 3. The corpus burst.  loadgen recomputes every expected
        # response via the in-process core and exits 1 on MISMATCH,
        # so its exit code is the byte-identity assertion.
        burst = subprocess.run(
            [sys.executable, "-m", "repro", "loadgen", "--port", str(port),
             "--requests", str(requests)] + common,
            env=_env(), capture_output=True, text=True)
        sys.stdout.write(burst.stdout)
        if burst.returncode != 0:
            print(f"loadgen burst failed (exit {burst.returncode}):\n"
                  f"{burst.stderr}")
            return 1

        # 4. Malformed HTTP: typed rejections, and the daemon survives.
        probes = [
            (b"not even http\r\n\r\n", "400"),
            (b"POST / HTTP/1.1\r\nHost: x\r\nContent-Length: 100000"
             b"\r\n\r\n", "413"),
            (b"GET /%%%not-base64 HTTP/1.1\r\nHost: nowhere.invalid"
             b"\r\n\r\n", "404"),
        ]
        for payload, expected in probes:
            status = _status_line(_raw_exchange(port, payload))
            if f" {expected} " not in status + " ":
                print(f"probe {payload[:30]!r}: expected {expected}, "
                      f"got {status!r}")
                return 1
        # A client vanishing mid-request must not take the daemon down.
        _raw_exchange(port, b"POST / HTTP/1.1\r\nHost: x\r\nConte",
                      recv=False)
        if not _healthz(port):
            print("daemon unhealthy after malformed probes")
            return 1
        print(f"{len(probes)} malformed probes + 1 dropped connection "
              f"survived")

        # 5. Stats must parse and reflect the burst.
        reply = _raw_exchange(
            port, b"GET /-/stats HTTP/1.1\r\nHost: control\r\n\r\n")
        stats = json.loads(reply.split(b"\r\n\r\n", 1)[1])
        if stats["requests"] < requests:
            print(f"stats recorded {stats['requests']} requests, "
                  f"expected >= {requests}")
            return 1
        print(f"stats: {stats['requests']} requests, "
              f"cache hits {stats['cache']['hits']}, "
              f"dropped connections "
              f"{stats['daemon']['dropped_connections']}")
    finally:
        if daemon.poll() is None:
            daemon.send_signal(signal.SIGINT)
        try:
            daemon.wait(timeout=SHUTDOWN_WAIT_S)
        except subprocess.TimeoutExpired:
            daemon.kill()
            daemon.wait()
            print("daemon did not exit on SIGINT")
            return 1

    if daemon.returncode != 0:
        print(f"daemon exited {daemon.returncode} on SIGINT\n"
              f"{daemon.stderr.read()}")
        return 1
    print("daemon exited cleanly on SIGINT")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
