#!/usr/bin/env python3
"""Resume smoke test: SIGKILL a supervised run mid-flight, resume it,
and require output byte-identical to an undisturbed serial run.

This is the crash-tolerance contract of
``repro.runtime.supervisor.SupervisedExecutor`` exercised end to end,
the way a real campaign dies: the *whole process* is killed with
SIGKILL (no signal handlers, no atexit, no chance to flush), not a
worker inside it.  Because the supervisor persists every shard to the
artifact cache the moment it completes, the resumed invocation only
recomputes the shards the kill interrupted — and the merged result
must not bear a single byte of evidence that anything happened.

Steps:

1. start ``repro run fig3 --workers 4 --supervise`` against a fresh
   cache directory;
2. wait until at least one shard has been persisted, then SIGKILL the
   process;
3. re-invoke the same command to completion (the resume);
4. run the undisturbed serial baseline with the cache disabled;
5. compare ``rows`` / ``series`` / ``summary`` exactly, and verify
   the surviving cache passes ``repro cache verify``.

Usage: ``python tools/resume_smoke.py [cache_dir]`` (default:
``.resume-smoke-cache``; the directory is wiped first).  Exit 0 on
success.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
KILL_WAIT_S = 180.0
ENTRIES_BEFORE_KILL = 2


def _env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _run_cmd(cache_dir: str) -> list:
    return [sys.executable, "-m", "repro", "run", "fig3",
            "--workers", "4", "--supervise", "--cache-dir", cache_dir,
            "--json"]


def _cache_entries(cache_dir: str) -> int:
    """Live (non-quarantined) entries currently persisted."""
    root = Path(cache_dir)
    if not root.is_dir():
        return 0
    return sum(1 for path in root.glob("*/*.jsonl")
               if path.parent.name != "corrupt")


def _result_doc(stdout: str) -> dict:
    document = json.loads(stdout)
    return {"rows": document["rows"], "series": document["series"],
            "summary": document["summary"]}


def main() -> int:
    cache_dir = sys.argv[1] if len(sys.argv) > 1 else ".resume-smoke-cache"
    shutil.rmtree(cache_dir, ignore_errors=True)

    # 1-2. Start the supervised run; SIGKILL it once shards are landing.
    process = subprocess.Popen(_run_cmd(cache_dir), env=_env(),
                               stdout=subprocess.DEVNULL,
                               stderr=subprocess.DEVNULL)
    deadline = time.time() + KILL_WAIT_S
    while (time.time() < deadline and process.poll() is None
           and _cache_entries(cache_dir) < ENTRIES_BEFORE_KILL):
        time.sleep(0.05)
    killed = process.poll() is None
    if killed:
        process.send_signal(signal.SIGKILL)
    process.wait()
    survivors = _cache_entries(cache_dir)
    if killed:
        print(f"killed mid-run with {survivors} shard(s) persisted")
    else:
        # Machine too fast: the run finished before the kill window.
        # The resume leg still proves a full warm restore.
        print(f"run finished before the kill ({survivors} shards cached); "
              f"resume degenerates to a warm-cache check")

    # 3. Resume: same command, same cache — must complete cleanly.
    resumed = subprocess.run(_run_cmd(cache_dir), env=_env(),
                             capture_output=True, text=True)
    if resumed.returncode != 0:
        print(f"resume failed (exit {resumed.returncode}):\n{resumed.stderr}")
        return 1
    resumed_doc = json.loads(resumed.stdout)
    cached = resumed_doc["manifest"]["cached"]
    computed = resumed_doc["manifest"]["computed"]
    print(f"resume: {cached} shards from cache, {computed} recomputed")
    if killed and survivors and cached < survivors:
        print(f"expected at least {survivors} cached shards on resume")
        return 1

    # 4. The undisturbed serial baseline (cache off: nothing shared).
    serial = subprocess.run(
        [sys.executable, "-m", "repro", "run", "fig3", "--workers", "1",
         "--no-cache", "--json"],
        env=_env(), capture_output=True, text=True)
    if serial.returncode != 0:
        print(f"serial baseline failed:\n{serial.stderr}")
        return 1

    # 5. Byte-identical content, and an intact cache.
    if _result_doc(resumed.stdout) != _result_doc(serial.stdout):
        print("MISMATCH: resumed output differs from undisturbed serial run")
        return 1
    print("resumed output identical to undisturbed serial run")
    verify = subprocess.run(
        [sys.executable, "-m", "repro", "cache", "verify",
         "--cache-dir", cache_dir],
        env=_env(), capture_output=True, text=True)
    print(verify.stdout.strip())
    if verify.returncode != 0:
        print("cache verify failed after the kill")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
