#!/usr/bin/env python3
"""AST-based determinism lint for ``src/repro``.

The reproduction's core invariant is that every result is a pure
function of explicit inputs (seeds, reference times).  This checker
bans the ambient-state escape hatches that silently break that:

* ``datetime.now()`` / ``datetime.utcnow()`` / ``date.today()``
* ``time.time()`` / ``time.time_ns()`` / ``time.monotonic()``
* unseeded ``random.Random()``
* the module-level ``random.*`` functions (global, unseeded RNG)
* ``random.SystemRandom`` / ``os.urandom`` / ``secrets.*``
* ``time.sleep()`` — ambient wall-clock pacing; simulated time and the
  supervisor's deadline-based scheduling replace it
* ``os._exit()`` — skips interpreter cleanup and can truncate output
  files mid-write; only the chaos harness may crash workers this way
* builtin ``hash()`` outside ``__hash__`` methods — string hashing is
  randomized per process, so hash-derived seeds silently fork RNG
  streams across runs; use :func:`repro.canon.stable_seed`

Documented exceptions go in :data:`ALLOWLIST` as
``(path suffix, offending code)`` pairs: the convenience default of
:func:`repro.crypto.rsa.generate_keypair` (every reproducible caller
overrides it with a seed), the two fault-injection primitives of
:mod:`repro.runtime.chaos` — the crash/hang injections are the tested
behaviour there, not an escape hatch — and the job-queue transport of
:mod:`repro.runtime.dist`, whose lease deadlines and worker polling
are *operational* wall-clock mechanics: the determinism contract holds
because the queue moves attempts, never content (merged bytes depend
only on the shard plan and the artifact cache keys).

Usage: ``python tools/check_determinism.py [root]`` (default:
``src/repro`` relative to the repository root).  Exit code 0 when
clean, 1 when violations are found.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, NamedTuple, Optional, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analyze.effects import (  # noqa: E402
    GLOBAL_RNG_FUNCS,
    GLOBAL_RNG_MESSAGE,
    HASH_MESSAGE,
    SECRETS_MESSAGE,
    UNSEEDED_RANDOM_MESSAGE,
    UTCNOW_MESSAGE,
    banned_attr_call_messages,
)

#: (normalized path suffix, offending code) pairs that are documented.
ALLOWLIST: Tuple[Tuple[str, str], ...] = (
    # generate_keypair()'s fresh-key default; every corpus/test caller
    # passes an explicit seed, and the docstring flags the default.
    ("crypto/rsa.py", "random.Random()"),
    # The self-chaos harness *injects* crashes and hangs on purpose;
    # these two calls are its tested behaviour, gated on attempt
    # markers and confined to worker processes under supervision.
    ("runtime/chaos.py", "os._exit()"),
    ("runtime/chaos.py", "time.sleep()"),
    # The filesystem job queue is the one place the runtime touches the
    # wall clock: lease deadlines must be comparable across machines,
    # and idle workers sleep between polls.  Timing never reaches
    # content — results merge by ticket into cache-keyed artifacts.
    ("runtime/dist.py", "time.time()"),
    ("runtime/dist.py", "time.sleep()"),
    # The socket transport's worker-side dial/backoff sleeps are the
    # same operational pacing: lease deadlines themselves live on the
    # coordinator's perf_counter (never compared across machines), and
    # timing never reaches content.
    ("runtime/sock.py", "time.sleep()"),
)

#: Banned (object, attribute) call pairs and why — derived from the
#: effect analyzer's seed table (:mod:`repro.analyze.effects`), so the
#: two static passes cannot drift.  Rules with ``determinism_ban=True``
#: there are exactly this checker's historical ban list.
_BANNED_ATTR_CALLS = banned_attr_call_messages()

#: Module-level random functions that use the global (unseeded) RNG.
_GLOBAL_RNG_FUNCS = GLOBAL_RNG_FUNCS


class Violation(NamedTuple):
    """One banned call site."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} — {self.message}"


def _dotted(node: ast.AST) -> Optional[List[str]]:
    """Flatten ``a.b.c`` into ``["a", "b", "c"]`` (None if not names)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


class _Checker(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.violations: List[Violation] = []
        #: Names bound by ``import random`` / ``import secrets`` —
        #: distinguishes ``random.choice(...)`` (global RNG, banned)
        #: from ``rng.choice(...)`` on a seeded instance (fine).
        self.module_names: set = set()
        #: Depth of enclosing ``__hash__`` definitions — the only place
        #: builtin ``hash()`` is deterministic *enough* (in-process).
        self._hash_method_depth = 0

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node: ast.AST) -> None:
        is_hash = getattr(node, "name", "") == "__hash__"
        self._hash_method_depth += is_hash
        self.generic_visit(node)
        self._hash_method_depth -= is_hash

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.module_names.add(alias.asname or alias.name.split(".")[0])
        self.generic_visit(node)

    def _flag(self, node: ast.Call, code: str, message: str) -> None:
        self.violations.append(Violation(
            self.path, node.lineno, node.col_offset, code, message))

    def visit_Call(self, node: ast.Call) -> None:
        parts = _dotted(node.func)
        if parts:
            head, tail = parts[0], parts[-1]
            pair = (parts[-2], tail) if len(parts) >= 2 else None
            if pair in _BANNED_ATTR_CALLS:
                self._flag(node, ".".join(parts) + "()", _BANNED_ATTR_CALLS[pair])
            elif tail == "utcnow":
                self._flag(node, ".".join(parts) + "()", UTCNOW_MESSAGE)
            elif tail == "Random" and not node.args and not node.keywords:
                self._flag(node, ".".join(parts) + "()",
                           UNSEEDED_RANDOM_MESSAGE)
            elif (len(parts) == 2 and head == "random"
                  and head in self.module_names and tail in _GLOBAL_RNG_FUNCS):
                self._flag(node, ".".join(parts) + "()", GLOBAL_RNG_MESSAGE)
            elif head == "secrets" and head in self.module_names:
                self._flag(node, ".".join(parts) + "()", SECRETS_MESSAGE)
            elif (parts == ["hash"] and not self._hash_method_depth):
                self._flag(node, "hash()", HASH_MESSAGE)
        self.generic_visit(node)


def _allowed(violation: Violation) -> bool:
    normalized = violation.path.replace("\\", "/")
    return any(normalized.endswith(suffix) and violation.code == code
               for suffix, code in ALLOWLIST)


def scan_source(source: str, path: str) -> List[Violation]:
    """Scan one module's source text, applying the allowlist."""
    checker = _Checker(path)
    checker.visit(ast.parse(source, filename=path))
    return [v for v in checker.violations if not _allowed(v)]


def iter_python_files(root: Path) -> Iterator[Path]:
    """Every ``.py`` file under *root*, sorted for stable output."""
    yield from sorted(root.rglob("*.py"))


def scan_tree(root: Path) -> List[Violation]:
    """Scan a source tree."""
    violations: List[Violation] = []
    for path in iter_python_files(root):
        violations.extend(scan_source(path.read_text(), str(path)))
    return violations


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    default_root = Path(__file__).resolve().parent.parent / "src" / "repro"
    root = Path(argv[0]) if argv else default_root
    if not root.exists():
        print(f"determinism lint: no such tree: {root}", file=sys.stderr)
        return 2
    violations = scan_tree(root)
    for violation in violations:
        print(violation.render())
    count = len(list(iter_python_files(root)))
    if violations:
        print(f"determinism lint: {len(violations)} violation(s) "
              f"in {count} files")
        return 1
    print(f"determinism lint: {count} files clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
