#!/usr/bin/env python3
"""Distributed-runtime smoke test: a 3-worker campaign degraded
mid-run must complete and merge byte-identical to an undisturbed
serial run.

Two transports, one contract:

``--transport jobqueue`` (default) exercises the lease-reclaim path of
``repro.runtime.dist.JobQueueTransport`` the way a real fleet
degrades: one host dies outright (SIGKILL — no signal handlers, no
cleanup, the claim and lease just stop being renewed) and one host
wedges (SIGSTOP — the process is alive but its heartbeat thread is
frozen, so the lease expires exactly as a dead host's does).

``--transport socket`` exercises ``repro.runtime.sock``'s TCP fleet
through a hostile wire: every worker connects through a
``repro.runtime.netchaos.ChaosProxy`` running the deterministic
``reset`` plan (connections RST mid-conversation at seeded frame
indices), and one worker is additionally SIGKILLed mid-campaign.
Workers must reconnect-and-resume; the coordinator must reclaim the
dead worker's lease and reissue its job.

Either way the coordinator reclaims what stops heartbeating, the
surviving workers steal the work, and the merged result must not bear
a single byte of evidence that topology or fault order changed
mid-campaign.

Steps:

1. start three ``repro worker`` processes (``--queue-dir`` against a
   fresh queue, or ``--connect`` through the chaos proxy);
2. start ``repro run fig3 --transport {jobqueue,socket} --no-spawn``;
3. once shards start landing in the cache, SIGKILL one worker (and,
   jobqueue only, SIGSTOP another);
4. require the run to complete successfully on the surviving workers;
5. run the undisturbed serial baseline with the cache disabled and
   compare ``rows`` / ``series`` / ``summary`` exactly;
6. verify the shared cache's integrity, then stop and reap the fleet.

Usage: ``python tools/dist_smoke.py [--transport jobqueue|socket]
[scratch_dir]`` (default scratch: ``.dist-smoke``; the directory is
wiped first).  Exit 0 on success.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import socket as socketlib
import subprocess
import sys
import time
from pathlib import Path
from typing import List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
FAULT_WAIT_S = 180.0
RUN_WAIT_S = 300.0
ENTRIES_BEFORE_FAULTS = 1
CHAOS_SEED = 20260808


def _env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _free_port() -> int:
    with socketlib.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _cache_entries(cache_dir: str) -> int:
    root = Path(cache_dir)
    if not root.is_dir():
        return 0
    return sum(1 for path in root.glob("*/*.jsonl")
               if path.parent.name != "corrupt")


def _result_doc(stdout: str) -> dict:
    document = json.loads(stdout)
    return {"rows": document["rows"], "series": document["series"],
            "summary": document["summary"]}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("scratch", nargs="?", default=".dist-smoke")
    parser.add_argument("--transport", choices=["jobqueue", "socket"],
                        default="jobqueue")
    args = parser.parse_args()

    scratch = args.scratch
    shutil.rmtree(scratch, ignore_errors=True)
    queue_dir = os.path.join(scratch, "queue")
    cache_dir = os.path.join(scratch, "cache")
    os.makedirs(queue_dir, exist_ok=True)

    proxy = None
    coordinator: Optional[subprocess.Popen] = None
    workers: List[subprocess.Popen] = []
    stopped: List[subprocess.Popen] = []

    try:
        if args.transport == "jobqueue":
            # 1+2. Fleet first (blocks on the queue dir), then the
            # coordinator (no fleet of its own: --no-spawn).
            for index in range(3):
                workers.append(subprocess.Popen(
                    [sys.executable, "-m", "repro", "worker",
                     "--queue-dir", queue_dir, "--id", f"smoke-{index}",
                     "--cache-dir", cache_dir, "--poll", "0.05"],
                    env=_env(), stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL))
            coordinator = subprocess.Popen(
                [sys.executable, "-m", "repro", "run", "fig3",
                 "--transport", "jobqueue", "--queue-dir", queue_dir,
                 "--no-spawn", "--cache-dir", cache_dir,
                 "--lease", "0.5", "--shard-timeout", "60",
                 "--retries", "4", "--json"],
                env=_env(), stdout=subprocess.PIPE,
                stderr=subprocess.PIPE, text=True)
        else:
            # 1+2. Coordinator first (it owns the listening socket),
            # then a deterministic chaos proxy in front of it, then
            # the fleet dialing through the proxy.  dial()'s bounded
            # backoff absorbs the bind races on both hops.
            from repro.runtime.netchaos import ChaosProxy, netchaos_plan

            listen_port = _free_port()
            coordinator = subprocess.Popen(
                [sys.executable, "-m", "repro", "run", "fig3",
                 "--transport", "socket",
                 "--listen", f"127.0.0.1:{listen_port}", "--no-spawn",
                 "--cache-dir", cache_dir,
                 "--lease", "0.5", "--shard-timeout", "60",
                 "--retries", "4", "--json"],
                env=_env(), stdout=subprocess.PIPE,
                stderr=subprocess.PIPE, text=True)
            proxy = ChaosProxy("127.0.0.1", listen_port,
                               netchaos_plan("reset", CHAOS_SEED))
            proxy.start()
            for index in range(3):
                workers.append(subprocess.Popen(
                    [sys.executable, "-m", "repro", "worker",
                     "--connect", f"127.0.0.1:{proxy.port}",
                     "--id", f"sock-smoke-{index}",
                     "--cache-dir", cache_dir, "--reconnect", "12"],
                    env=_env(), stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL))

        # 3. Fault injection once real work is landing.
        deadline = time.time() + FAULT_WAIT_S
        while (time.time() < deadline and coordinator.poll() is None
               and _cache_entries(cache_dir) < ENTRIES_BEFORE_FAULTS):
            time.sleep(0.05)
        if coordinator.poll() is None:
            workers[0].send_signal(signal.SIGKILL)
            if args.transport == "jobqueue":
                workers[1].send_signal(signal.SIGSTOP)
                stopped.append(workers[1])
                print("faults injected: worker smoke-0 SIGKILLed, "
                      "smoke-1 SIGSTOPped; smoke-2 must finish the "
                      "campaign")
            else:
                print("faults injected: worker sock-smoke-0 SIGKILLed "
                      "behind a resetting proxy; the survivors must "
                      "reconnect and finish the campaign")
        else:
            # Machine too fast: the campaign drained before the fault
            # window.  The byte-identity leg below still proves the
            # 3-worker merge; the reclaim paths are covered by
            # tests/test_dist.py and tests/test_sock.py.
            print("run finished before the fault window; "
                  "checking byte-identity only")

        # 4. The campaign must still complete.
        try:
            stdout, stderr = coordinator.communicate(timeout=RUN_WAIT_S)
        except subprocess.TimeoutExpired:
            coordinator.kill()
            print("coordinator did not finish after the faults")
            return 1
        if coordinator.returncode != 0:
            print(f"coordinator failed (exit {coordinator.returncode}):\n"
                  f"{stderr}")
            return 1
        manifest = json.loads(stdout)["manifest"]
        print(f"campaign complete: {manifest['computed']} computed, "
              f"{manifest['cached']} cached, {manifest['retried']} retried")
        if proxy is not None:
            print(f"chaos proxy: {proxy.counts['connections']} "
                  f"connections, {proxy.counts['frames']} frames, "
                  f"{proxy.counts['resets']} resets")

        # 5. Byte-identity against the undisturbed serial baseline.
        serial = subprocess.run(
            [sys.executable, "-m", "repro", "run", "fig3",
             "--workers", "1", "--no-cache", "--json"],
            env=_env(), capture_output=True, text=True)
        if serial.returncode != 0:
            print(f"serial baseline failed:\n{serial.stderr}")
            return 1
        if _result_doc(stdout) != _result_doc(serial.stdout):
            print(f"MISMATCH: {args.transport} output differs from "
                  f"serial run")
            return 1
        print(f"{args.transport} output identical to undisturbed "
              f"serial run")

        # 6. The shared cache survived the carnage intact.
        verify = subprocess.run(
            [sys.executable, "-m", "repro", "cache", "verify",
             "--cache-dir", cache_dir],
            env=_env(), capture_output=True, text=True)
        print(verify.stdout.strip())
        if verify.returncode != 0:
            print("cache verify failed after the faults")
            return 1
        return 0
    finally:
        # Wind the fleet down.  Jobqueue workers watch a stop marker;
        # socket workers got a stop RETRACT when the coordinator's
        # transport closed (or exhaust their reconnect budget against
        # the dead proxy).  SIGCONT the frozen (a stopped process
        # cannot see the marker), then a kill escalation for anything
        # still wedged.
        with open(os.path.join(queue_dir, "stop"), "w") as stream:
            stream.write("stop\n")
        if proxy is not None:
            proxy.stop()
        for process in stopped:
            try:
                process.send_signal(signal.SIGCONT)
            except OSError:
                pass
        for process in workers:
            try:
                process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
            except OSError:
                pass


if __name__ == "__main__":
    raise SystemExit(main())
