#!/usr/bin/env python3
"""Distributed-runtime smoke test: a 3-worker job-queue campaign with
one worker SIGKILLed and another SIGSTOPped mid-run must complete and
merge byte-identical to an undisturbed serial run.

This is the lease-reclaim contract of
``repro.runtime.dist.JobQueueTransport`` exercised end to end, the way
a real fleet degrades: one host dies outright (SIGKILL — no signal
handlers, no cleanup, the claim and lease just stop being renewed) and
one host wedges (SIGSTOP — the process is alive but its heartbeat
thread is frozen, so the lease expires exactly as a dead host's does).
The coordinator reclaims both leases, requeues the attempts, and the
surviving worker steals the work; the merged result must not bear a
single byte of evidence that topology changed mid-campaign.

Steps:

1. start three ``repro worker`` processes against a fresh queue and
   cache directory;
2. start ``repro run fig3 --transport jobqueue --no-spawn`` against
   the same queue;
3. once shards start landing in the cache, SIGKILL one worker and
   SIGSTOP another;
4. require the run to complete successfully on the surviving worker;
5. run the undisturbed serial baseline with the cache disabled and
   compare ``rows`` / ``series`` / ``summary`` exactly;
6. verify the shared cache's integrity, then stop and reap the fleet
   (SIGCONT first — a stopped process ignores everything else).

Usage: ``python tools/dist_smoke.py [scratch_dir]`` (default:
``.dist-smoke``; the directory is wiped first).  Exit 0 on success.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
FAULT_WAIT_S = 180.0
RUN_WAIT_S = 300.0
ENTRIES_BEFORE_FAULTS = 1


def _env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _cache_entries(cache_dir: str) -> int:
    root = Path(cache_dir)
    if not root.is_dir():
        return 0
    return sum(1 for path in root.glob("*/*.jsonl")
               if path.parent.name != "corrupt")


def _result_doc(stdout: str) -> dict:
    document = json.loads(stdout)
    return {"rows": document["rows"], "series": document["series"],
            "summary": document["summary"]}


def main() -> int:
    scratch = sys.argv[1] if len(sys.argv) > 1 else ".dist-smoke"
    shutil.rmtree(scratch, ignore_errors=True)
    queue_dir = os.path.join(scratch, "queue")
    cache_dir = os.path.join(scratch, "cache")
    os.makedirs(queue_dir, exist_ok=True)

    # 1. The fleet: three external workers sharing queue + cache.
    workers = []
    for index in range(3):
        workers.append(subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--queue-dir", queue_dir, "--id", f"smoke-{index}",
             "--cache-dir", cache_dir, "--poll", "0.05"],
            env=_env(), stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL))
    stopped: list = []

    try:
        # 2. The coordinator (no fleet of its own: --no-spawn).
        coordinator = subprocess.Popen(
            [sys.executable, "-m", "repro", "run", "fig3",
             "--transport", "jobqueue", "--queue-dir", queue_dir,
             "--no-spawn", "--cache-dir", cache_dir,
             "--lease", "0.5", "--shard-timeout", "60",
             "--retries", "4", "--json"],
            env=_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)

        # 3. Fault injection once real work is landing.
        deadline = time.time() + FAULT_WAIT_S
        while (time.time() < deadline and coordinator.poll() is None
               and _cache_entries(cache_dir) < ENTRIES_BEFORE_FAULTS):
            time.sleep(0.05)
        if coordinator.poll() is None:
            workers[0].send_signal(signal.SIGKILL)
            workers[1].send_signal(signal.SIGSTOP)
            stopped.append(workers[1])
            print("faults injected: worker smoke-0 SIGKILLed, "
                  "smoke-1 SIGSTOPped; smoke-2 must finish the campaign")
        else:
            # Machine too fast: the campaign drained before the fault
            # window.  The byte-identity leg below still proves the
            # 3-worker queue merge; the reclaim paths are covered by
            # tests/test_dist.py.
            print("run finished before the fault window; "
                  "checking byte-identity only")

        # 4. The campaign must still complete.
        try:
            stdout, stderr = coordinator.communicate(timeout=RUN_WAIT_S)
        except subprocess.TimeoutExpired:
            coordinator.kill()
            print("coordinator did not finish after the faults")
            return 1
        if coordinator.returncode != 0:
            print(f"coordinator failed (exit {coordinator.returncode}):\n"
                  f"{stderr}")
            return 1
        manifest = json.loads(stdout)["manifest"]
        print(f"campaign complete: {manifest['computed']} computed, "
              f"{manifest['cached']} cached, {manifest['retried']} retried")

        # 5. Byte-identity against the undisturbed serial baseline.
        serial = subprocess.run(
            [sys.executable, "-m", "repro", "run", "fig3",
             "--workers", "1", "--no-cache", "--json"],
            env=_env(), capture_output=True, text=True)
        if serial.returncode != 0:
            print(f"serial baseline failed:\n{serial.stderr}")
            return 1
        if _result_doc(stdout) != _result_doc(serial.stdout):
            print("MISMATCH: job-queue output differs from serial run")
            return 1
        print("job-queue output identical to undisturbed serial run")

        # 6. The shared cache survived the carnage intact.
        verify = subprocess.run(
            [sys.executable, "-m", "repro", "cache", "verify",
             "--cache-dir", cache_dir],
            env=_env(), capture_output=True, text=True)
        print(verify.stdout.strip())
        if verify.returncode != 0:
            print("cache verify failed after the faults")
            return 1
        return 0
    finally:
        # Wind the fleet down: stop marker for the living, SIGCONT for
        # the frozen (a stopped process cannot see the marker), and a
        # kill escalation for anything still wedged.
        with open(os.path.join(queue_dir, "stop"), "w") as stream:
            stream.write("stop\n")
        for process in stopped:
            try:
                process.send_signal(signal.SIGCONT)
            except OSError:
                pass
        for process in workers:
            try:
                process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
            except OSError:
                pass


if __name__ == "__main__":
    raise SystemExit(main())
