"""Object identifier type and the OID registry used across the library.

An :class:`ObjectIdentifier` is an immutable, hashable dotted-integer
value with DER content-octet encoding/decoding.  The registry at the
bottom collects every OID the X.509/OCSP stack needs, including the
star of the paper: ``TLS_FEATURE`` (1.3.6.1.5.5.7.1.24), the OCSP
Must-Staple extension.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from .errors import DecodeError, EncodeError


class ObjectIdentifier:
    """An ASN.1 OBJECT IDENTIFIER value.

    Instances are immutable and usable as dict keys.  Construct from a
    dotted string or an iterable of arcs::

        >>> ObjectIdentifier("1.3.6.1.5.5.7.1.24").arcs
        (1, 3, 6, 1, 5, 5, 7, 1, 24)
    """

    __slots__ = ("_arcs",)

    def __init__(self, value: "str | Iterable[int] | ObjectIdentifier") -> None:
        if isinstance(value, ObjectIdentifier):
            arcs: Tuple[int, ...] = value._arcs
        elif isinstance(value, str):
            try:
                arcs = tuple(int(part) for part in value.split("."))
            except ValueError as exc:
                raise EncodeError(f"invalid OID string {value!r}") from exc
        else:
            arcs = tuple(int(part) for part in value)
        if len(arcs) < 2:
            raise EncodeError(f"OID needs at least two arcs, got {arcs!r}")
        if arcs[0] not in (0, 1, 2):
            raise EncodeError(f"first OID arc must be 0, 1, or 2, got {arcs[0]}")
        if arcs[0] < 2 and arcs[1] >= 40:
            raise EncodeError(f"second OID arc must be < 40 when first is {arcs[0]}")
        if any(arc < 0 for arc in arcs):
            raise EncodeError(f"OID arcs must be non-negative: {arcs!r}")
        object.__setattr__(self, "_arcs", arcs)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ObjectIdentifier is immutable")

    @property
    def arcs(self) -> Tuple[int, ...]:
        """The tuple of integer arcs."""
        return self._arcs

    @property
    def dotted(self) -> str:
        """Dotted-decimal string form (``"1.3.6.1.5.5.7.1.24"``)."""
        return ".".join(str(arc) for arc in self._arcs)

    def encode_content(self) -> bytes:
        """Return the DER content octets (no tag/length)."""
        first = self._arcs[0] * 40 + self._arcs[1]
        out = bytearray(_encode_base128(first))
        for arc in self._arcs[2:]:
            out.extend(_encode_base128(arc))
        return bytes(out)

    @classmethod
    def decode_content(cls, content: bytes) -> "ObjectIdentifier":
        """Parse DER content octets into an ObjectIdentifier."""
        if not content:
            raise DecodeError("empty OID content")
        arcs = []
        value = 0
        started = False
        for index, octet in enumerate(content):
            if not started and octet == 0x80:
                raise DecodeError("OID sub-identifier has redundant leading 0x80")
            started = True
            value = (value << 7) | (octet & 0x7F)
            if not octet & 0x80:
                arcs.append(value)
                value = 0
                started = False
            elif index == len(content) - 1:
                raise DecodeError("OID content ends mid sub-identifier")
        first = arcs[0]
        if first < 40:
            head = (0, first)
        elif first < 80:
            head = (1, first - 40)
        else:
            head = (2, first - 80)
        return cls(head + tuple(arcs[1:]))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ObjectIdentifier):
            return self._arcs == other._arcs
        if isinstance(other, str):
            return self.dotted == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._arcs)

    def __repr__(self) -> str:
        name = OID_NAMES.get(self)
        if name:
            return f"ObjectIdentifier({self.dotted}, {name})"
        return f"ObjectIdentifier({self.dotted})"

    def __str__(self) -> str:
        return self.dotted


def _encode_base128(value: int) -> bytes:
    """Encode a non-negative integer in base-128 with continuation bits."""
    if value < 0x80:
        return bytes([value])
    chunks = []
    while value:
        chunks.append(value & 0x7F)
        value >>= 7
    chunks.reverse()
    return bytes([chunk | 0x80 for chunk in chunks[:-1]] + [chunks[-1]])


# --- Registry -------------------------------------------------------------

# Signature / digest algorithms.
SHA256_WITH_RSA = ObjectIdentifier("1.2.840.113549.1.1.11")
SHA1_WITH_RSA = ObjectIdentifier("1.2.840.113549.1.1.5")
RSA_ENCRYPTION = ObjectIdentifier("1.2.840.113549.1.1.1")
SHA1 = ObjectIdentifier("1.3.14.3.2.26")
SHA256 = ObjectIdentifier("2.16.840.1.101.3.4.2.1")

# X.509 name attribute types.
COMMON_NAME = ObjectIdentifier("2.5.4.3")
COUNTRY_NAME = ObjectIdentifier("2.5.4.6")
ORGANIZATION_NAME = ObjectIdentifier("2.5.4.10")
ORGANIZATIONAL_UNIT = ObjectIdentifier("2.5.4.11")

# X.509 certificate extensions.
SUBJECT_KEY_IDENTIFIER = ObjectIdentifier("2.5.29.14")
KEY_USAGE = ObjectIdentifier("2.5.29.15")
SUBJECT_ALT_NAME = ObjectIdentifier("2.5.29.17")
BASIC_CONSTRAINTS = ObjectIdentifier("2.5.29.19")
CRL_NUMBER = ObjectIdentifier("2.5.29.20")
CRL_REASON = ObjectIdentifier("2.5.29.21")
CRL_DISTRIBUTION_POINTS = ObjectIdentifier("2.5.29.31")
AUTHORITY_KEY_IDENTIFIER = ObjectIdentifier("2.5.29.35")
EXTENDED_KEY_USAGE = ObjectIdentifier("2.5.29.37")
AUTHORITY_INFORMATION_ACCESS = ObjectIdentifier("1.3.6.1.5.5.7.1.1")

# The paper's protagonist: RFC 7633 TLS Feature, a.k.a. OCSP Must-Staple.
TLS_FEATURE = ObjectIdentifier("1.3.6.1.5.5.7.1.24")

# Access method OIDs inside AIA.
AD_OCSP = ObjectIdentifier("1.3.6.1.5.5.7.48.1")
AD_CA_ISSUERS = ObjectIdentifier("1.3.6.1.5.5.7.48.2")

# Extended key usage purposes.
EKU_SERVER_AUTH = ObjectIdentifier("1.3.6.1.5.5.7.3.1")
EKU_CLIENT_AUTH = ObjectIdentifier("1.3.6.1.5.5.7.3.2")
EKU_OCSP_SIGNING = ObjectIdentifier("1.3.6.1.5.5.7.3.9")

# OCSP protocol OIDs (RFC 6960).
OCSP_BASIC = ObjectIdentifier("1.3.6.1.5.5.7.48.1.1")
OCSP_NONCE = ObjectIdentifier("1.3.6.1.5.5.7.48.1.2")
OCSP_NOCHECK = ObjectIdentifier("1.3.6.1.5.5.7.48.1.5")

OID_NAMES = {
    SHA256_WITH_RSA: "sha256WithRSAEncryption",
    SHA1_WITH_RSA: "sha1WithRSAEncryption",
    RSA_ENCRYPTION: "rsaEncryption",
    SHA1: "sha1",
    SHA256: "sha256",
    COMMON_NAME: "commonName",
    COUNTRY_NAME: "countryName",
    ORGANIZATION_NAME: "organizationName",
    ORGANIZATIONAL_UNIT: "organizationalUnitName",
    SUBJECT_KEY_IDENTIFIER: "subjectKeyIdentifier",
    KEY_USAGE: "keyUsage",
    SUBJECT_ALT_NAME: "subjectAltName",
    BASIC_CONSTRAINTS: "basicConstraints",
    CRL_NUMBER: "cRLNumber",
    CRL_REASON: "cRLReason",
    CRL_DISTRIBUTION_POINTS: "cRLDistributionPoints",
    AUTHORITY_KEY_IDENTIFIER: "authorityKeyIdentifier",
    EXTENDED_KEY_USAGE: "extendedKeyUsage",
    AUTHORITY_INFORMATION_ACCESS: "authorityInformationAccess",
    TLS_FEATURE: "tlsFeature (OCSP Must-Staple)",
    AD_OCSP: "id-ad-ocsp",
    AD_CA_ISSUERS: "id-ad-caIssuers",
    EKU_SERVER_AUTH: "serverAuth",
    EKU_CLIENT_AUTH: "clientAuth",
    EKU_OCSP_SIGNING: "OCSPSigning",
    OCSP_BASIC: "id-pkix-ocsp-basic",
    OCSP_NONCE: "id-pkix-ocsp-nonce",
    OCSP_NOCHECK: "id-pkix-ocsp-nocheck",
}
