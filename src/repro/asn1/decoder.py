"""Strict DER decoder.

The central type is :class:`Reader`, a cursor over a byte string with
typed ``read_*`` methods.  Constructed types hand back a sub-``Reader``
limited to their content, so parsers compose naturally::

    reader = Reader(der_bytes)
    seq = reader.read_sequence()
    serial = seq.read_integer()
    ...

Strictness matters for the reproduction: the paper's Figure 5 counts
responses whose "malformed OCSP structure (ASN.1 structure error)"
makes them unusable, and our scanner produces that classification by
feeding real responder output through this decoder.  A ``lenient=True``
mode exists solely for the parser ablation benchmark.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import tags
from .errors import (
    DecodeError,
    LimitExceededError,
    StrictDERError,
    TagMismatchError,
    TruncatedError,
)
from .oid import ObjectIdentifier
from .timecodec import decode_time

#: Maximum nesting depth of constructed elements.  Real X.509/OCSP/CRL
#: structures stay below ~10 levels; hostile inputs nest thousands deep
#: to exhaust the Python stack, so the cap converts a RecursionError
#: into a typed DecodeError.
MAX_DEPTH = 64

#: Maximum number of length octets in a long-form length.  Eight octets
#: already announce lengths up to 2**64-1 — far beyond any buffer —
#: so longer encodings are only ever seen in hostile input.
MAX_LENGTH_OCTETS = 8

#: Maximum number of TLV headers decoded from one buffer (shared across
#: all sub-readers of a document).  Bounds total work and allocation to
#: a fixed multiple of the input size.
MAX_ELEMENTS = 100_000


class Reader:
    """A strict DER cursor over immutable bytes.

    The cursor is *bounded*: nesting depth, length-octet count, and the
    total number of decoded elements are all capped (see
    :data:`MAX_DEPTH`, :data:`MAX_LENGTH_OCTETS`, :data:`MAX_ELEMENTS`),
    so pathological inputs raise :class:`LimitExceededError` — a
    :class:`DecodeError` — instead of ``RecursionError``/``MemoryError``.
    """

    __slots__ = ("_data", "_pos", "_end", "lenient", "_depth", "_elements")

    def __init__(self, data: bytes, start: int = 0, end: Optional[int] = None,
                 lenient: bool = False, _depth: int = 0,
                 _elements: Optional[List[int]] = None) -> None:
        self._data = bytes(data)
        self._pos = start
        self._end = len(self._data) if end is None else end
        self.lenient = lenient
        self._depth = _depth
        # Element budget, shared by reference across every sub-reader of
        # the same document so the cap applies to the buffer as a whole.
        self._elements = [0] if _elements is None else _elements

    # -- low level ---------------------------------------------------------

    @property
    def position(self) -> int:
        """Absolute byte offset of the cursor in the underlying buffer.

        Sub-readers share the parent's buffer, so positions are always
        offsets into the *original* DER blob — which is what makes
        byte-offset provenance (``repro.lint``) possible.
        """
        return self._pos

    @property
    def remaining(self) -> int:
        """Number of unread bytes in this reader's window."""
        return self._end - self._pos

    def at_end(self) -> bool:
        """True when the window is exhausted."""
        return self._pos >= self._end

    def peek_tag(self) -> int:
        """Return the next identifier octet without consuming it."""
        if self.at_end():
            raise TruncatedError("no bytes left to peek a tag")
        return self._data[self._pos]

    def read_tlv(self) -> Tuple[int, bytes]:
        """Consume one TLV and return ``(tag, content)``."""
        tag, content, _ = self._read_header_and_content()
        return tag, content

    def peek_span(self) -> Tuple[int, int]:
        """Return ``(offset, total_length)`` of the next TLV without consuming.

        The offset is absolute in the underlying buffer (see
        :attr:`position`); the length covers tag + length octets +
        content, i.e. the element's complete encoding.
        """
        mark = self._pos
        budget = self._elements[0]
        try:
            self._read_header_and_content()
            return mark, self._pos - mark
        finally:
            self._pos = mark
            self._elements[0] = budget

    def read_raw_element(self) -> bytes:
        """Consume one TLV and return its *complete* encoding (tag+len+content).

        Used to capture the exact signed bytes of ``tbsCertificate`` /
        ``tbsResponseData`` so signatures verify over the original
        encoding, never a re-encoding.
        """
        start = self._pos
        self._read_header_and_content()
        return self._data[start:self._pos]

    def _read_header_and_content(self) -> Tuple[int, bytes, int]:
        if self.at_end():
            raise TruncatedError("no bytes left to read a tag",
                                 offset=self._pos)
        self._elements[0] += 1
        if self._elements[0] > MAX_ELEMENTS:
            raise LimitExceededError(
                f"more than {MAX_ELEMENTS} elements in one document",
                offset=self._pos)
        tag = self._data[self._pos]
        pos = self._pos + 1
        if tag & tags.TAG_NUMBER_MASK == 0x1F:
            raise DecodeError("multi-octet tag numbers are not supported",
                              offset=self._pos)
        if pos >= self._end:
            raise TruncatedError("input ends after tag octet", offset=pos)
        first_len = self._data[pos]
        pos += 1
        if first_len < 0x80:
            length = first_len
        elif first_len == 0x80:
            raise StrictDERError("indefinite length is forbidden in DER")
        else:
            n_octets = first_len & 0x7F
            if n_octets > MAX_LENGTH_OCTETS:
                raise LimitExceededError(
                    f"length uses {n_octets} octets "
                    f"(cap {MAX_LENGTH_OCTETS})", offset=pos - 1)
            if pos + n_octets > self._end:
                raise TruncatedError("input ends inside length octets",
                                     offset=pos - 1)
            raw = self._data[pos:pos + n_octets]
            pos += n_octets
            if not self.lenient:
                if raw[0] == 0x00:
                    raise StrictDERError("length has leading zero octet")
                length = int.from_bytes(raw, "big")
                if length < 0x80:
                    raise StrictDERError("long-form length used for short value")
            else:
                length = int.from_bytes(raw, "big")
        if pos + length > self._end:
            raise TruncatedError(
                f"content length {length} exceeds remaining {self._end - pos} bytes",
                offset=self._pos,
            )
        content = self._data[pos:pos + length]
        self._pos = pos + length
        return tag, content, length

    def expect_end(self) -> None:
        """Raise unless the window was fully consumed (DER forbids slack)."""
        if not self.at_end():
            raise DecodeError(f"{self.remaining} trailing bytes after structure",
                              offset=self._pos)

    # -- typed readers -------------------------------------------------------

    def _read_expected(self, expected_tag: int) -> bytes:
        mark = self._pos
        tag, content = self.read_tlv()
        if tag != expected_tag:
            raise TagMismatchError(expected_tag, tag, offset=mark)
        return content

    def read_boolean(self) -> bool:
        """Read a BOOLEAN, enforcing DER's 0x00/0xFF rule."""
        content = self._read_expected(tags.BOOLEAN)
        if len(content) != 1:
            raise DecodeError(f"BOOLEAN content must be 1 octet, got {len(content)}")
        if content[0] == 0x00:
            return False
        if content[0] == 0xFF or self.lenient:
            return True
        raise StrictDERError(f"BOOLEAN TRUE must be 0xFF in DER, got 0x{content[0]:02x}")

    def read_integer(self, tag: int = tags.INTEGER) -> int:
        """Read an INTEGER (or ENUMERATED via *tag*), minimal-form checked."""
        content = self._read_expected(tag)
        return decode_integer_content(content, lenient=self.lenient)

    def read_enumerated(self) -> int:
        """Read an ENUMERATED value."""
        return self.read_integer(tag=tags.ENUMERATED)

    def read_octet_string(self, tag: int = tags.OCTET_STRING) -> bytes:
        """Read an OCTET STRING's content."""
        return self._read_expected(tag)

    def read_bit_string(self) -> bytes:
        """Read a BIT STRING, returning the bit bytes (unused bits must be 0 here).

        All BIT STRINGs in this library (signatures, public keys) are
        octet-aligned, so a nonzero unused-bit count is rejected.
        """
        content = self._read_expected(tags.BIT_STRING)
        if not content:
            raise DecodeError("BIT STRING missing unused-bits octet")
        if content[0] != 0 and not self.lenient:
            raise DecodeError(f"unexpected unused bits in BIT STRING: {content[0]}")
        return content[1:]

    def read_named_bits(self) -> List[int]:
        """Read a NamedBitList BIT STRING into a list of set bit positions."""
        content = self._read_expected(tags.BIT_STRING)
        if not content:
            raise DecodeError("BIT STRING missing unused-bits octet")
        unused = content[0]
        if unused > 7:
            raise DecodeError(f"unused-bits octet out of range: {unused}")
        bits = []
        body = content[1:]
        total_bits = len(body) * 8 - unused
        for position in range(total_bits):
            if body[position // 8] & (0x80 >> (position % 8)):
                bits.append(position)
        return bits

    def read_null(self) -> None:
        """Read a NULL."""
        content = self._read_expected(tags.NULL)
        if content:
            raise DecodeError("NULL with nonempty content")

    def read_oid(self) -> ObjectIdentifier:
        """Read an OBJECT IDENTIFIER."""
        return ObjectIdentifier.decode_content(self._read_expected(tags.OBJECT_IDENTIFIER))

    def read_string(self) -> str:
        """Read any of the supported character string types."""
        tag, content = self.read_tlv()
        if tag == tags.UTF8_STRING:
            try:
                return content.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise DecodeError("invalid UTF-8 in UTF8String") from exc
        if tag in (tags.PRINTABLE_STRING, tags.IA5_STRING):
            try:
                return content.decode("ascii")
            except UnicodeDecodeError as exc:
                raise DecodeError("non-ASCII byte in ASCII string type") from exc
        raise DecodeError(f"tag 0x{tag:02x} is not a supported string type")

    def read_time(self) -> int:
        """Read UTCTime or GeneralizedTime as a POSIX timestamp."""
        tag, content = self.read_tlv()
        return decode_time(tag, content)

    def read_sequence(self) -> "Reader":
        """Read a SEQUENCE and return a sub-reader over its content."""
        return self._sub_reader(tags.SEQUENCE)

    def read_set(self) -> "Reader":
        """Read a SET and return a sub-reader over its content."""
        return self._sub_reader(tags.SET)

    def _sub_reader(self, expected_tag: int) -> "Reader":
        if self._depth + 1 > MAX_DEPTH:
            raise LimitExceededError(
                f"nesting deeper than {MAX_DEPTH} levels", offset=self._pos)
        start_of_content, end_of_content = self._content_span(expected_tag)
        return Reader(self._data, start_of_content, end_of_content,
                      lenient=self.lenient, _depth=self._depth + 1,
                      _elements=self._elements)

    def _content_span(self, expected_tag: int) -> Tuple[int, int]:
        mark = self._pos
        tag, _content, _ = self._read_header_and_content()
        if tag != expected_tag:
            self._pos = mark
            raise TagMismatchError(expected_tag, tag, offset=mark)
        end = self._pos
        # Recompute where content started: end minus content length.
        return end - len(_content), end

    def read_context(self, number: int, constructed: bool = True) -> "Reader":
        """Read a context-specific [number] element, returning a content reader."""
        return self._sub_reader(tags.context(number, constructed))

    def read_implicit_content(self, number: int, constructed: bool = False) -> bytes:
        """Read an IMPLICIT [number] element's raw content octets."""
        return self._read_expected(tags.context(number, constructed))

    def maybe_context(self, number: int, constructed: bool = True) -> Optional["Reader"]:
        """Return a content reader if the next element is [number], else None."""
        if self.at_end():
            return None
        if self.peek_tag() != tags.context(number, constructed):
            return None
        return self.read_context(number, constructed)


def decode_integer_content(content: bytes, lenient: bool = False) -> int:
    """Decode INTEGER content octets with DER minimality checks."""
    if not content:
        raise DecodeError("INTEGER with empty content")
    if len(content) > 1 and not lenient:
        if content[0] == 0x00 and content[1] < 0x80:
            raise StrictDERError("INTEGER has redundant leading 0x00")
        if content[0] == 0xFF and content[1] >= 0x80:
            raise StrictDERError("INTEGER has redundant leading 0xFF")
    return int.from_bytes(content, "big", signed=True)
