"""A from-scratch ASN.1 DER codec.

This package is the wire-format substrate for the whole reproduction:
X.509 certificates, CRLs, and OCSP messages are all encoded and decoded
through it.  The encoder emits canonical DER only; the decoder is
strict by default (with a ``lenient`` escape hatch used in the parser
ablation study).
"""

from .errors import (
    ASN1Error,
    DecodeError,
    EncodeError,
    LimitExceededError,
    StrictDERError,
    TagMismatchError,
    TruncatedError,
    UnsupportedAlgorithmError,
)
from .oid import ObjectIdentifier
from .decoder import Reader, decode_integer_content
from . import encoder, tags, timecodec, oid

__all__ = [
    "ASN1Error",
    "DecodeError",
    "EncodeError",
    "LimitExceededError",
    "StrictDERError",
    "TagMismatchError",
    "TruncatedError",
    "UnsupportedAlgorithmError",
    "ObjectIdentifier",
    "Reader",
    "decode_integer_content",
    "encoder",
    "tags",
    "timecodec",
    "oid",
]
