"""DER encoding primitives.

Every function returns complete TLV byte strings.  The encoder always
produces canonical DER (minimal lengths, minimal integers, definite
lengths), which the strict decoder in :mod:`repro.asn1.decoder` will
round-trip.  Fault-injecting responders in :mod:`repro.ca` deliberately
corrupt these bytes *after* encoding, so the encoder itself never needs
a "produce broken output" mode.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from . import tags
from .errors import EncodeError
from .oid import ObjectIdentifier
from .timecodec import choose_time_encoding, encode_generalized_time


def encode_length(length: int) -> bytes:
    """Encode a definite length in the minimal DER form."""
    if length < 0:
        raise EncodeError(f"negative length: {length}")
    if length < 0x80:
        return bytes([length])
    octets = length.to_bytes((length.bit_length() + 7) // 8, "big")
    return bytes([0x80 | len(octets)]) + octets


def encode_tlv(tag: int, content: bytes) -> bytes:
    """Wrap *content* in a tag and DER length."""
    if not 0 <= tag <= 0xFF:
        raise EncodeError(f"tag must be a single octet, got {tag}")
    return bytes([tag]) + encode_length(len(content)) + content


def encode_boolean(value: bool) -> bytes:
    """Encode BOOLEAN; DER mandates 0xFF for TRUE."""
    return encode_tlv(tags.BOOLEAN, b"\xff" if value else b"\x00")


def encode_integer(value: int, tag: int = tags.INTEGER) -> bytes:
    """Encode a (possibly negative) integer in minimal two's complement."""
    if value == 0:
        return encode_tlv(tag, b"\x00")
    length = (value.bit_length() + 8) // 8  # + sign bit headroom
    content = value.to_bytes(length, "big", signed=True)
    # Strip redundant sign-extension octets while staying minimal.
    while (
        len(content) > 1
        and (
            (content[0] == 0x00 and content[1] < 0x80)
            or (content[0] == 0xFF and content[1] >= 0x80)
        )
    ):
        content = content[1:]
    return encode_tlv(tag, content)


def encode_enumerated(value: int) -> bytes:
    """Encode ENUMERATED (same content rules as INTEGER)."""
    return encode_integer(value, tag=tags.ENUMERATED)


def encode_octet_string(value: bytes, tag: int = tags.OCTET_STRING) -> bytes:
    """Encode an OCTET STRING (or any raw-content type via *tag*)."""
    return encode_tlv(tag, bytes(value))


def encode_bit_string(value: bytes, unused_bits: int = 0) -> bytes:
    """Encode a BIT STRING; *unused_bits* counts padding bits in the last octet."""
    if not 0 <= unused_bits <= 7:
        raise EncodeError(f"unused_bits out of range: {unused_bits}")
    if unused_bits and not value:
        raise EncodeError("unused_bits set on empty bit string")
    return encode_tlv(tags.BIT_STRING, bytes([unused_bits]) + bytes(value))


def encode_named_bits(bits: Sequence[int]) -> bytes:
    """Encode a NamedBitList BIT STRING from set bit positions.

    DER requires trailing zero bits to be trimmed; KeyUsage is encoded
    this way.
    """
    if not bits:
        return encode_bit_string(b"", 0)
    highest = max(bits)
    if min(bits) < 0:
        raise EncodeError("bit positions must be non-negative")
    n_octets = highest // 8 + 1
    content = bytearray(n_octets)
    for bit in bits:
        content[bit // 8] |= 0x80 >> (bit % 8)
    unused = 7 - (highest % 8)
    return encode_bit_string(bytes(content), unused)


def encode_null() -> bytes:
    """Encode NULL."""
    return encode_tlv(tags.NULL, b"")


def encode_oid(oid: "ObjectIdentifier | str") -> bytes:
    """Encode an OBJECT IDENTIFIER."""
    return encode_tlv(tags.OBJECT_IDENTIFIER, ObjectIdentifier(oid).encode_content())


def encode_sequence(*elements: bytes) -> bytes:
    """Encode a SEQUENCE from already-encoded element TLVs."""
    return encode_tlv(tags.SEQUENCE, b"".join(elements))


def encode_set(elements: Iterable[bytes]) -> bytes:
    """Encode a SET OF; DER requires elements sorted by encoding."""
    return encode_tlv(tags.SET, b"".join(sorted(elements)))


def encode_utf8_string(value: str) -> bytes:
    """Encode a UTF8String."""
    return encode_tlv(tags.UTF8_STRING, value.encode("utf-8"))


def encode_printable_string(value: str) -> bytes:
    """Encode a PrintableString, rejecting characters outside its alphabet."""
    allowed = set(
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789 '()+,-./:=?"
    )
    if not set(value) <= allowed:
        raise EncodeError(f"not printable-string safe: {value!r}")
    return encode_tlv(tags.PRINTABLE_STRING, value.encode("ascii"))


def encode_ia5_string(value: str) -> bytes:
    """Encode an IA5String (ASCII); URLs in AIA/CRLDP use this."""
    try:
        content = value.encode("ascii")
    except UnicodeEncodeError as exc:
        raise EncodeError(f"not IA5-safe: {value!r}") from exc
    return encode_tlv(tags.IA5_STRING, content)


def encode_x509_time(timestamp: int) -> bytes:
    """Encode a time with the RFC 5280 UTCTime/GeneralizedTime choice."""
    tag, content = choose_time_encoding(timestamp)
    return encode_tlv(tag, content)


def encode_ocsp_time(timestamp: int) -> bytes:
    """Encode a time as GeneralizedTime, as OCSP always does."""
    return encode_tlv(tags.GENERALIZED_TIME, encode_generalized_time(timestamp))


def encode_explicit(number: int, inner: bytes) -> bytes:
    """Wrap already-encoded TLV bytes in an EXPLICIT [number] tag."""
    return encode_tlv(tags.context(number, constructed=True), inner)


def encode_implicit(number: int, content: bytes, constructed: bool = False) -> bytes:
    """Encode content octets under an IMPLICIT [number] tag."""
    return encode_tlv(tags.context(number, constructed=constructed), content)
