"""An ``openssl asn1parse``-style pretty printer for DER.

Used by the CLI's ``inspect`` command and handy in tests when a
structure disagrees with expectations.  Output is one line per TLV::

      0:d=0  hl=4 l= 414 cons: SEQUENCE
      4:d=1  hl=4 l= 263 cons: SEQUENCE
      8:d=2  hl=2 l=   3 cons: cont [ 0 ]
     10:d=3  hl=2 l=   1 prim: INTEGER           :02
"""

from __future__ import annotations

import binascii
from typing import List

from . import tags
from .errors import ASN1Error
from .oid import OID_NAMES, ObjectIdentifier
from .timecodec import decode_time

_UNIVERSAL_NAMES = {
    tags.BOOLEAN: "BOOLEAN",
    tags.INTEGER: "INTEGER",
    tags.BIT_STRING: "BIT STRING",
    tags.OCTET_STRING: "OCTET STRING",
    tags.NULL: "NULL",
    tags.OBJECT_IDENTIFIER: "OBJECT",
    tags.ENUMERATED: "ENUMERATED",
    tags.UTF8_STRING: "UTF8STRING",
    tags.SEQUENCE: "SEQUENCE",
    tags.SET: "SET",
    tags.PRINTABLE_STRING: "PRINTABLESTRING",
    tags.IA5_STRING: "IA5STRING",
    tags.UTC_TIME: "UTCTIME",
    tags.GENERALIZED_TIME: "GENERALIZEDTIME",
}

#: Nested OCTET STRING / BIT STRING payloads that are themselves DER
#: (extension values, responseBytes) are descended into when they parse.
_DESCEND_INTO_STRINGS = True

#: The walker recurses one Python frame per nesting level, so hostile
#: depth bombs must be cut off well before the interpreter's stack is.
_MAX_DUMP_DEPTH = 64


def _header_length(data: bytes, offset: int) -> "tuple[int, int]":
    """Return (header_len, content_len) for the TLV at *offset*."""
    first_len = data[offset + 1]
    if first_len < 0x80:
        return 2, first_len
    n = first_len & 0x7F
    return 2 + n, int.from_bytes(data[offset + 2:offset + 2 + n], "big")


def _render_value(tag: int, content: bytes) -> str:
    try:
        if tag == tags.OBJECT_IDENTIFIER:
            oid = ObjectIdentifier.decode_content(content)
            name = OID_NAMES.get(oid)
            return f":{oid.dotted}" + (f" ({name})" if name else "")
        if tag == tags.INTEGER or tag == tags.ENUMERATED:
            return f":{int.from_bytes(content, 'big', signed=True)}"
        if tag == tags.BOOLEAN:
            return ":TRUE" if content and content[0] else ":FALSE"
        if tag in (tags.UTF8_STRING, tags.PRINTABLE_STRING, tags.IA5_STRING):
            return ":" + content.decode("utf-8", "replace")
        if tag in (tags.UTC_TIME, tags.GENERALIZED_TIME):
            return f":{content.decode('ascii', 'replace')} ({decode_time(tag, content)})"
        if tag in (tags.OCTET_STRING, tags.BIT_STRING):
            shown = binascii.hexlify(content[:16]).decode()
            suffix = "..." if len(content) > 16 else ""
            return f":[HEX DUMP]:{shown}{suffix}"
    except (ASN1Error, ValueError):
        pass
    return ""


def dump_der(data: bytes, max_lines: int = 500) -> str:
    """Render DER bytes as an indented TLV listing."""
    lines: List[str] = []
    _walk(bytes(data), 0, len(data), 0, lines, max_lines)
    if len(lines) >= max_lines:
        lines.append("... (truncated)")
    return "\n".join(lines)


def _walk(data: bytes, start: int, end: int, depth: int,
          lines: List[str], max_lines: int) -> None:
    if depth > _MAX_DUMP_DEPTH:
        lines.append(f"{start:5d}:d={depth}  <nesting deeper than "
                     f"{_MAX_DUMP_DEPTH}; not descending>")
        return
    offset = start
    while offset < end and len(lines) < max_lines:
        if offset + 2 > end:
            lines.append(f"{offset:5d}:d={depth}  <truncated tag/length>")
            return
        tag = data[offset]
        try:
            header_len, content_len = _header_length(data, offset)
        except IndexError:
            lines.append(f"{offset:5d}:d={depth}  <truncated length>")
            return
        content_start = offset + header_len
        content_end = content_start + content_len
        if content_end > end:
            lines.append(f"{offset:5d}:d={depth}  <content overruns buffer>")
            return
        content = data[content_start:content_end]

        constructed = tags.is_constructed(tag)
        if tags.is_context(tag):
            name = f"cont [ {tags.tag_number(tag)} ]"
        else:
            name = _UNIVERSAL_NAMES.get(tag, f"tag 0x{tag:02x}")
        kind = "cons" if constructed else "prim"
        value = "" if constructed else _render_value(tag, content)
        lines.append(
            f"{offset:5d}:d={depth}  hl={header_len} l={content_len:4d} "
            f"{kind}: {name:18s}{value}"
        )

        if constructed:
            _walk(data, content_start, content_end, depth + 1, lines, max_lines)
        elif (_DESCEND_INTO_STRINGS and tag == tags.OCTET_STRING and content
              and content[0] in (tags.SEQUENCE,)):
            # Heuristic: extension values and responseBytes nest DER.
            try:
                header_len2, content_len2 = _header_length(content, 0)
                if header_len2 + content_len2 == len(content):
                    _walk(data, content_start, content_end, depth + 1,
                          lines, max_lines)
            except IndexError:
                pass
        offset = content_end


def describe_certificate(der: bytes) -> str:
    """A short human summary of a certificate's interesting fields."""
    from ..x509 import Certificate
    certificate = Certificate.from_der(der)
    lines = [
        f"subject:     {certificate.subject.rfc4514()}",
        f"issuer:      {certificate.issuer.rfc4514()}",
        f"serial:      {certificate.serial_number:#x}",
        f"validity:    {certificate.validity.not_before} .. "
        f"{certificate.validity.not_after}",
        f"CA:          {'yes' if certificate.is_ca else 'no'}",
        f"must-staple: {'yes' if certificate.must_staple else 'no'}",
    ]
    if certificate.ocsp_urls:
        lines.append(f"OCSP:        {', '.join(certificate.ocsp_urls)}")
    if certificate.crl_urls:
        lines.append(f"CRL:         {', '.join(certificate.crl_urls)}")
    if certificate.dns_names:
        lines.append(f"DNS names:   {', '.join(certificate.dns_names)}")
    return "\n".join(lines)
