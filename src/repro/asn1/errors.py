"""Exceptions raised by the ASN.1/DER codec.

The decoder distinguishes *structural* problems (truncated data, bad
length octets) from *strictness* problems (BER constructs that are legal
in BER but forbidden in DER).  Measurement code in :mod:`repro.scanner`
catches :class:`ASN1Error` to classify a response as "malformed", which
is the first error class of Figure 5 in the paper.
"""

from __future__ import annotations


class ASN1Error(ValueError):
    """Base class for every ASN.1 encoding or decoding failure."""


class DecodeError(ASN1Error):
    """The input bytes are not a well-formed DER structure."""


class TruncatedError(DecodeError):
    """The input ended before the announced length was satisfied."""


class StrictDERError(DecodeError):
    """The input is valid BER but violates DER's canonical-form rules.

    Examples: non-minimal length octets, indefinite lengths, an
    INTEGER with redundant leading zero octets.
    """


class EncodeError(ASN1Error):
    """A Python value cannot be represented in the requested ASN.1 type."""


class TagMismatchError(DecodeError):
    """A decoded element carried a different tag than the caller expected."""

    def __init__(self, expected: int, actual: int) -> None:
        super().__init__(f"expected tag 0x{expected:02x}, got 0x{actual:02x}")
        self.expected = expected
        self.actual = actual
