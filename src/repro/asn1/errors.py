"""Exceptions raised by the ASN.1/DER codec.

The decoder distinguishes *structural* problems (truncated data, bad
length octets) from *strictness* problems (BER constructs that are legal
in BER but forbidden in DER).  Measurement code in :mod:`repro.scanner`
catches :class:`ASN1Error` to classify a response as "malformed", which
is the first error class of Figure 5 in the paper.
"""

from __future__ import annotations

from typing import Optional


class ASN1Error(ValueError):
    """Base class for every ASN.1 encoding or decoding failure."""


class DecodeError(ASN1Error):
    """The input bytes are not a well-formed DER structure.

    ``offset`` — when known — is the absolute byte position in the
    outermost buffer where decoding failed, matching the spans used by
    the lint engine's provenance output.
    """

    def __init__(self, message: str, *, offset: Optional[int] = None) -> None:
        if offset is not None:
            message = f"{message} (at offset {offset})"
        super().__init__(message)
        self.offset = offset


class TruncatedError(DecodeError):
    """The input ended before the announced length was satisfied."""


class StrictDERError(DecodeError):
    """The input is valid BER but violates DER's canonical-form rules.

    Examples: non-minimal length octets, indefinite lengths, an
    INTEGER with redundant leading zero octets.
    """


class LimitExceededError(DecodeError):
    """A structural resource cap was hit while decoding.

    Raised instead of letting pathological inputs exhaust the Python
    stack (deep nesting → ``RecursionError``) or memory (absurd element
    counts / length octets → ``MemoryError``).  Hostile-corpus runs rely
    on this staying inside the :class:`ASN1Error` hierarchy.
    """


class UnsupportedAlgorithmError(DecodeError):
    """A parsed structure names an algorithm the codec does not support.

    Still a *parse*-level failure (the document cannot be decoded into
    the reproduction's object model), so scanners classify it as
    malformed rather than as a semantic validation failure.
    """


class EncodeError(ASN1Error):
    """A Python value cannot be represented in the requested ASN.1 type."""


class TagMismatchError(DecodeError):
    """A decoded element carried a different tag than the caller expected."""

    def __init__(self, expected: int, actual: int,
                 *, offset: Optional[int] = None) -> None:
        super().__init__(f"expected tag 0x{expected:02x}, got 0x{actual:02x}",
                         offset=offset)
        self.expected = expected
        self.actual = actual
