"""UTCTime / GeneralizedTime codecs.

X.509 (RFC 5280) requires UTCTime for dates up to 2049 and
GeneralizedTime from 2050 on, both in Zulu (GMT) form — the paper notes
"all time values in OCSP responses must be represented as Greenwich
Mean Time (Zulu)" (footnote 15).  OCSP (RFC 6960) always uses
GeneralizedTime.  Internally the library represents instants as POSIX
timestamps (integer seconds) on a simulated clock.
"""

from __future__ import annotations

import calendar
import time as _time
from typing import Tuple

from . import tags
from .errors import DecodeError, EncodeError

#: Boundary above which RFC 5280 switches from UTCTime to GeneralizedTime.
_UTCTIME_MAX = calendar.timegm((2049, 12, 31, 23, 59, 59, 0, 0, 0))
_UTCTIME_MIN = calendar.timegm((1950, 1, 1, 0, 0, 0, 0, 0, 0))


def encode_utc_time(timestamp: int) -> bytes:
    """Encode a POSIX timestamp as UTCTime content octets (YYMMDDHHMMSSZ)."""
    if not _UTCTIME_MIN <= timestamp <= _UTCTIME_MAX:
        raise EncodeError(f"timestamp {timestamp} outside UTCTime range")
    parts = _time.gmtime(timestamp)
    return (
        f"{parts.tm_year % 100:02d}{parts.tm_mon:02d}{parts.tm_mday:02d}"
        f"{parts.tm_hour:02d}{parts.tm_min:02d}{parts.tm_sec:02d}Z"
    ).encode("ascii")


def encode_generalized_time(timestamp: int) -> bytes:
    """Encode a POSIX timestamp as GeneralizedTime content (YYYYMMDDHHMMSSZ)."""
    parts = _time.gmtime(timestamp)
    return (
        f"{parts.tm_year:04d}{parts.tm_mon:02d}{parts.tm_mday:02d}"
        f"{parts.tm_hour:02d}{parts.tm_min:02d}{parts.tm_sec:02d}Z"
    ).encode("ascii")


def choose_time_encoding(timestamp: int) -> Tuple[int, bytes]:
    """Return ``(tag, content)`` per the RFC 5280 UTCTime/GeneralizedTime rule."""
    if _UTCTIME_MIN <= timestamp <= _UTCTIME_MAX:
        return tags.UTC_TIME, encode_utc_time(timestamp)
    return tags.GENERALIZED_TIME, encode_generalized_time(timestamp)


def decode_utc_time(content: bytes) -> int:
    """Decode UTCTime content octets to a POSIX timestamp.

    DER requires the seconds field and the trailing ``Z``; two-digit
    years map 00-49 to 20xx and 50-99 to 19xx per RFC 5280.
    """
    text = _ascii(content)
    if len(text) != 13 or not text.endswith("Z"):
        raise DecodeError(f"UTCTime not in DER YYMMDDHHMMSSZ form: {text!r}")
    digits = text[:-1]
    if not digits.isdigit():
        raise DecodeError(f"UTCTime contains non-digits: {text!r}")
    year2 = int(digits[0:2])
    year = 2000 + year2 if year2 < 50 else 1900 + year2
    return _to_timestamp(year, digits[2:], text)


def decode_generalized_time(content: bytes) -> int:
    """Decode GeneralizedTime content octets to a POSIX timestamp."""
    text = _ascii(content)
    if len(text) != 15 or not text.endswith("Z"):
        raise DecodeError(f"GeneralizedTime not in DER YYYYMMDDHHMMSSZ form: {text!r}")
    digits = text[:-1]
    if not digits.isdigit():
        raise DecodeError(f"GeneralizedTime contains non-digits: {text!r}")
    return _to_timestamp(int(digits[0:4]), digits[4:], text)


def decode_time(tag: int, content: bytes) -> int:
    """Decode either time type based on *tag*."""
    if tag == tags.UTC_TIME:
        return decode_utc_time(content)
    if tag == tags.GENERALIZED_TIME:
        return decode_generalized_time(content)
    raise DecodeError(f"tag 0x{tag:02x} is not a time type")


def _ascii(content: bytes) -> str:
    try:
        return content.decode("ascii")
    except UnicodeDecodeError as exc:
        raise DecodeError("time value is not ASCII") from exc


def _to_timestamp(year: int, rest: str, original: str) -> int:
    month = int(rest[0:2])
    day = int(rest[2:4])
    hour = int(rest[4:6])
    minute = int(rest[6:8])
    second = int(rest[8:10])
    if not (1 <= month <= 12 and 1 <= day <= 31 and hour < 24 and minute < 60 and second < 61):
        raise DecodeError(f"time fields out of range: {original!r}")
    try:
        return calendar.timegm((year, month, day, hour, minute, second, 0, 0, 0))
    except (ValueError, OverflowError) as exc:
        raise DecodeError(f"invalid calendar date: {original!r}") from exc
