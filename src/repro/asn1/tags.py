"""ASN.1 tag constants and helpers.

Only the identifier octets needed by X.509, CRL, and OCSP structures are
defined; all of them fit in a single identifier octet (tag numbers below
31), which keeps the codec simple without losing any generality needed
by the paper's artefacts.
"""

from __future__ import annotations

# Universal class tags (primitive unless noted).
BOOLEAN = 0x01
INTEGER = 0x02
BIT_STRING = 0x03
OCTET_STRING = 0x04
NULL = 0x05
OBJECT_IDENTIFIER = 0x06
ENUMERATED = 0x0A
UTF8_STRING = 0x0C
SEQUENCE = 0x30  # constructed
SET = 0x31  # constructed
PRINTABLE_STRING = 0x13
IA5_STRING = 0x16
UTC_TIME = 0x17
GENERALIZED_TIME = 0x18

# Bit masks within the identifier octet.
CLASS_MASK = 0xC0
CLASS_UNIVERSAL = 0x00
CLASS_APPLICATION = 0x40
CLASS_CONTEXT = 0x80
CLASS_PRIVATE = 0xC0
CONSTRUCTED = 0x20
TAG_NUMBER_MASK = 0x1F


def context(number: int, constructed: bool = True) -> int:
    """Return the identifier octet for a context-specific tag.

    X.509 and OCSP use context tags [0]..[3] extensively (e.g. the
    EXPLICIT version field of TBSCertificate is ``[0]``).
    """
    if not 0 <= number < 31:
        raise ValueError(f"context tag number out of single-octet range: {number}")
    octet = CLASS_CONTEXT | number
    if constructed:
        octet |= CONSTRUCTED
    return octet


def is_context(tag: int) -> bool:
    """Return True when *tag* belongs to the context-specific class."""
    return (tag & CLASS_MASK) == CLASS_CONTEXT


def tag_number(tag: int) -> int:
    """Extract the tag number from a single identifier octet."""
    return tag & TAG_NUMBER_MASK


def is_constructed(tag: int) -> bool:
    """Return True when the identifier octet has the constructed bit set."""
    return bool(tag & CONSTRUCTED)
