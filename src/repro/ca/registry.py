"""Revocation bookkeeping for a CA.

A CA keeps *two* revocation databases — one feeding its CRLs and one
feeding its OCSP responder.  They are updated together by default, but
the coupling is configurable because the paper found exactly this
split in the wild: "Quovadis and Camerfirma responded that they
maintain two different databases for revocation status of CRL and OCSP
server, which might cause inconsistent revocation status" (Table 1),
and ocsp.msocsp.com's OCSP revocation times lagged its CRL "by between
7 hours and 9 days" (Figure 10).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional


@dataclass(frozen=True)
class RevocationRecord:
    """One revocation: when and (optionally) why.

    ``revoked_at`` is the *reported* revocation time (what CRL entries
    and OCSP RevokedInfo carry); ``visible_from`` is when the record
    entered the database and became answerable.  They differ exactly
    for the paper's discrepancy cases — msocsp reported times 7h-9d
    later than the CRL's, without the certificates ever reading as
    unrevoked.
    """

    serial_number: int
    revoked_at: int
    reason: Optional[int] = None
    visible_from: Optional[int] = None

    @property
    def effective_visible_from(self) -> int:
        """When this record starts answering (defaults to revoked_at)."""
        return self.revoked_at if self.visible_from is None else self.visible_from


class RevocationDatabase:
    """A map from serial number to revocation record."""

    def __init__(self) -> None:
        self._records: Dict[int, RevocationRecord] = {}

    def add(self, record: RevocationRecord) -> None:
        """Insert or overwrite a record."""
        self._records[record.serial_number] = record

    def remove(self, serial_number: int) -> None:
        """Drop a record (e.g. expired certificates pruned from CRLs)."""
        self._records.pop(serial_number, None)

    def lookup(self, serial_number: int) -> Optional[RevocationRecord]:
        """The record for a serial, or None."""
        return self._records.get(serial_number)

    def __contains__(self, serial_number: int) -> bool:
        return serial_number in self._records

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> List[RevocationRecord]:
        """All records, ordered by serial for determinism."""
        return [self._records[serial] for serial in sorted(self._records)]


@dataclass
class RevocationPolicy:
    """How a revocation propagates to the two databases.

    * ``ocsp_delay`` — seconds between the CRL learning of a revocation
      and the OCSP database recording it (0 = simultaneous, the 99.85%
      case the paper measured).  Negative values model OCSP-first.
    * ``ocsp_drops_entry`` — the OCSP database silently rejects the
      entry (the Quovadis max-character-size failure), so the responder
      will keep answering Good/Unknown for a revoked certificate.
    * ``ocsp_drops_reason`` — the OCSP side stores no reason code; the
      paper found 15% of reason codes differ and "the vast majority
      (99.99%) is due to cases where the CRL contains a reason code but
      the OCSP server does not".
    * ``ocsp_time_offset`` — constant difference applied to the OCSP
      revocation time (msocsp-style lateness when positive).
    """

    ocsp_delay: int = 0
    ocsp_drops_entry: bool = False
    ocsp_drops_reason: bool = True
    ocsp_time_offset: int = 0


class RevocationRegistry:
    """The CA-facing API tying both databases together."""

    def __init__(self, policy: Optional[RevocationPolicy] = None) -> None:
        self.policy = policy or RevocationPolicy()
        self.crl_db = RevocationDatabase()
        self.ocsp_db = RevocationDatabase()
        # Deliveries pending the ocsp_delay, as (visible_at, record).
        self._pending: List[tuple] = []

    def revoke(self, serial_number: int, revoked_at: int,
               reason: Optional[int] = None, *,
               ocsp_visible: Optional[bool] = None,
               ocsp_time_offset: Optional[int] = None,
               keep_reason: Optional[bool] = None) -> RevocationRecord:
        """Record a revocation, propagating per the policy.

        The keyword overrides replace the policy defaults for this one
        revocation — the Table-1 discrepancies affect only *some* of a
        CA's certificates (e.g. Quovadis dropped just the certificates
        whose SAN lists overflowed its OCSP database schema).
        """
        record = RevocationRecord(serial_number, revoked_at, reason)
        self.crl_db.add(record)
        drops = self.policy.ocsp_drops_entry if ocsp_visible is None else not ocsp_visible
        if drops:
            return record
        offset = self.policy.ocsp_time_offset if ocsp_time_offset is None else ocsp_time_offset
        drop_reason = self.policy.ocsp_drops_reason if keep_reason is None else not keep_reason
        ocsp_record = RevocationRecord(
            serial_number=serial_number,
            revoked_at=revoked_at + offset,
            reason=None if drop_reason else reason,
            # The record answers from the true revocation moment even
            # when the *reported* time is skewed.
            visible_from=revoked_at,
        )
        if self.policy.ocsp_delay > 0:
            self._pending.append((revoked_at + self.policy.ocsp_delay, ocsp_record))
        else:
            self.ocsp_db.add(ocsp_record)
        return record

    def settle(self, now: int) -> None:
        """Apply pending OCSP-database deliveries whose time has come."""
        still_pending = []
        for visible_at, record in self._pending:
            if visible_at <= now:
                self.ocsp_db.add(record)
            else:
                still_pending.append((visible_at, record))
        self._pending = still_pending

    def crl_entries(self, now: Optional[int] = None) -> Iterable[RevocationRecord]:
        """Records as the CRL would list them.

        With *now*, only revocations that have already happened are
        listed — a CRL published today cannot contain tomorrow's
        revocation.
        """
        records = self.crl_db.records()
        if now is None:
            return records
        return [record for record in records if record.revoked_at <= now]

    def ocsp_lookup(self, serial_number: int, now: int) -> Optional[RevocationRecord]:
        """What the OCSP responder believes at *now*.

        Revocations are invisible before their ``revoked_at`` time, so
        scans that replay history see statuses flip at the right
        moment.
        """
        self.settle(now)
        record = self.ocsp_db.lookup(serial_number)
        if record is not None and record.effective_visible_from > now:
            return None
        return record

    def visible_ocsp_count(self, now: int) -> int:
        """Number of OCSP-visible revocations at *now* (cache-key aid)."""
        self.settle(now)
        times = sorted(r.effective_visible_from for r in self.ocsp_db.records())
        return bisect.bisect_right(times, now)

    def crl_is_revoked(self, serial_number: int) -> bool:
        """True when the CRL database lists the serial."""
        return serial_number in self.crl_db
