"""The simulated OCSP responder core (RFC 6960), transport-neutral.

One :class:`OCSPResponder` serves one responder URL for one CA, with
its behaviour fully described by a
:class:`~repro.ca.profiles.ResponderProfile`.  Responses are generated
deterministically from the simulated time, so pre-generated responses
are modelled statelessly: two requests in the same update epoch see
byte-identical responses, exactly like a caching responder.

The core speaks DER, not HTTP: :meth:`OCSPResponder.handle` takes the
raw request bytes plus the simulated clock and returns a
:class:`~repro.ocsp.ResponseArtifact`.  HTTP framing (POST bodies, GET
base64 paths, method policing) lives in one shared adapter —
:func:`repro.simnet.ocsp_http_exchange` — so the in-process simnet
services and the ``repro.serve`` daemon drive the identical
signing/caching path and answer byte-identically for the same
(request, clock).
"""

from __future__ import annotations

import hashlib
import warnings
from typing import List, Optional

from ..asn1.errors import ASN1Error
from ..canon import stable_seed
from ..crypto import RSAPrivateKey, generate_keypair
from ..ocsp import (
    CertID,
    CertStatus,
    OCSPRequest,
    ResponseArtifact,
    ResponseStatus,
    RevokedInfo,
    SingleResponse,
    encode_error_response,
    encode_response,
)
from ..simnet.http import HTTPRequest, HTTPResponse
from ..x509 import Certificate
from .authority import CertificateAuthority
from .profiles import ResponderProfile

_RESPOND_DEPRECATION = (
    "OCSPResponder.respond(HTTPRequest, now) is deprecated; call "
    "handle(request_der, now) for the transport-neutral core, or bind "
    "repro.simnet.ocsp_service(responder) for HTTP traffic")

_JAVASCRIPT_BODY = (
    b"<html><head><script>window.location='https://example.test/';"
    b"</script></head><body>Please enable JavaScript.</body></html>"
)


class OCSPResponder:
    """Serves OCSP responses for a CA according to a behaviour profile."""

    def __init__(self, authority: CertificateAuthority, url: str,
                 profile: Optional[ResponderProfile] = None,
                 epoch_start: int = 0,
                 chain_to_root: Optional[List[Certificate]] = None) -> None:
        self.authority = authority
        self.url = url
        self.profile = profile or ResponderProfile()
        self.epoch_start = epoch_start
        self.request_count = 0
        self._chain_to_root = list(chain_to_root or [])
        # Generated responses are cached per (generation epoch, serials,
        # nonce, revocation generation) — both a fidelity point (a
        # pre-generating responder *serves the same bytes* all epoch)
        # and what makes replaying four months of scans fast.
        self._response_cache: dict = {}

        self._signer_key: RSAPrivateKey = authority.key
        self._signer_cert: Optional[Certificate] = None
        if self.profile.delegated_signing:
            seed = stable_seed(authority.name, url)
            self._signer_key = generate_keypair(512, rng=seed)
            self._signer_cert = authority.issue_ocsp_signer(
                self._signer_key,
                not_before=authority.certificate.validity.not_before,
            )
        if self.profile.wrong_key:
            seed = stable_seed("wrong", authority.name, url)
            self._signer_key = generate_keypair(512, rng=seed)

    # -- the transport-neutral core --------------------------------------------

    #: Process-wide "respond() shim already warned" latch.
    _respond_warned = False

    def handle(self, request_der: Optional[bytes], now: int) -> ResponseArtifact:
        """Answer one OCSP request given as DER bytes at simulated *now*.

        ``request_der=None`` is the transport's signal that it received
        an OCSP exchange but could not extract request bytes (e.g. a
        GET path whose base64 does not decode) — answered with a
        malformed-request error envelope, exactly like undecodable DER.
        Misbehaving profiles (``malformed_mode`` / windows) win over
        everything, matching real broken responders that emit the same
        junk regardless of input.
        """
        self.request_count += 1

        malformed = self._malformed_body(now)
        if malformed is not None:
            return ResponseArtifact(body=malformed, source="malformed")

        if request_der is None:
            return self._error_artifact(ResponseStatus.MALFORMED_REQUEST)
        if not isinstance(request_der, (bytes, bytearray, memoryview)):
            raise TypeError(
                "OCSPResponder.handle(request_der, now) takes DER request "
                "bytes; wrap HTTP traffic with "
                "repro.simnet.ocsp_service(responder) or the deprecated "
                "respond() shim")
        try:
            ocsp_request = OCSPRequest.from_der(bytes(request_der))
        except (ASN1Error, ValueError):
            return self._error_artifact(ResponseStatus.MALFORMED_REQUEST)

        if self.profile.always_try_later:
            return self._error_artifact(ResponseStatus.TRY_LATER)

        return self._build_response(ocsp_request, now)

    def respond(self, request: HTTPRequest, now: int) -> HTTPResponse:
        """Deprecated HTTP-shaped entrypoint (pre-PR7 ``handle``).

        Warns once per process, then delegates to the shared HTTP
        adapter so old callers still exercise the one true path.
        """
        if not OCSPResponder._respond_warned:
            OCSPResponder._respond_warned = True
            warnings.warn(_RESPOND_DEPRECATION, DeprecationWarning,
                          stacklevel=2)
        from ..simnet.http import ocsp_http_exchange
        return ocsp_http_exchange(self, request, now)

    @staticmethod
    def _error_artifact(status: ResponseStatus) -> ResponseArtifact:
        return ResponseArtifact(
            body=encode_error_response(status),
            source=f"error:{status.name.lower()}",
        )

    # -- generation --------------------------------------------------------------

    def generation_time(self, now: int) -> int:
        """When the response served at *now* was (notionally) generated.

        On-demand responders generate at *now*; pre-generating
        responders generate at epoch boundaries.  With multiple stale
        backends, successive requests rotate across backends whose
        generations lag each other, making producedAt regress between
        consecutive polls (paper footnote 17).
        """
        if self.profile.on_demand:
            return now
        interval = self.profile.update_interval
        start = self.epoch_start
        if self.profile.stale_backends > 1:
            # Each backend regenerates on its own grid, shifted by the
            # skew: responses stay within one interval of age (so never
            # self-expired) while producedAt regresses between
            # consecutive requests that land on different backends.
            # Which backend answers is a pure function of (url, now) —
            # the load balancer is unpredictable to the client, but the
            # probe stays order-independent, which lets shards replay
            # any slice of a scan and still see the serial bytes.
            digest = hashlib.blake2b(f"{self.url}|{now}".encode(),
                                     digest_size=4).digest()
            backend = int.from_bytes(digest, "big") % self.profile.stale_backends
            start = start - backend * self.profile.backend_skew
        elapsed = max(0, now - start)
        return start + (elapsed // interval) * interval

    def _build_response(self, ocsp_request: OCSPRequest,
                        now: int) -> ResponseArtifact:
        generated_at = self.generation_time(now)
        cache_key = (
            generated_at,
            tuple(ocsp_request.serial_numbers),
            ocsp_request.nonce,
            self.authority.registry.visible_ocsp_count(now),
        )
        cached = self._response_cache.get(cache_key)
        if cached is not None:
            return cached
        this_update = generated_at - self.profile.this_update_margin
        next_update = None
        if not self.profile.blank_next_update:
            next_update = this_update + self.profile.validity_period

        singles: List[SingleResponse] = []
        for cert_id in ocsp_request.cert_ids:
            singles.append(self._single_for(cert_id, this_update, next_update, now))
            # Unsolicited serial stuffing (Figure 7).
            for offset in range(1, self.profile.serials_per_response):
                stuffed = CertID(
                    hash_name=cert_id.hash_name,
                    issuer_name_hash=cert_id.issuer_name_hash,
                    issuer_key_hash=cert_id.issuer_key_hash,
                    serial_number=cert_id.serial_number + offset,
                )
                singles.append(self._single_for(stuffed, this_update, next_update, now))

        certificates: List[Certificate] = []
        if self._signer_cert is not None:
            certificates.append(self._signer_cert)
        if self.profile.extra_certs > 0 or self.profile.include_root_chain:
            chain = [self.authority.certificate, *self._chain_to_root]
            limit = len(chain) if self.profile.include_root_chain else self.profile.extra_certs
            certificates.extend(chain[:limit])

        if self._signer_cert is not None:
            responder_key_hash = self._signer_cert.key_hash_sha1()
        else:
            responder_key_hash = self.authority.certificate.key_hash_sha1()

        body = encode_response(
            single_responses=singles,
            produced_at=generated_at,
            signer_key=self._signer_key,
            responder_key_hash=responder_key_hash,
            certificates=certificates,
            nonce=ocsp_request.nonce,
        )
        artifact = ResponseArtifact(
            body=body,
            produced_at=generated_at,
            next_update=next_update,
            source="signed",
        )
        if len(self._response_cache) > 4096:
            self._response_cache.clear()
        self._response_cache[cache_key] = artifact
        return artifact

    def _single_for(self, cert_id: CertID, this_update: int,
                    next_update: Optional[int], now: int) -> SingleResponse:
        answered_id = cert_id
        if self.profile.serial_mismatch:
            answered_id = CertID(
                hash_name=cert_id.hash_name,
                issuer_name_hash=cert_id.issuer_name_hash,
                issuer_key_hash=cert_id.issuer_key_hash,
                serial_number=cert_id.serial_number + 1,
            )

        if self.profile.unknown_for_all:
            return SingleResponse(answered_id, CertStatus.UNKNOWN, this_update, next_update)
        if not cert_id.matches_issuer(self.authority.certificate):
            # "the certificate is not served by this responder"
            return SingleResponse(answered_id, CertStatus.UNKNOWN, this_update, next_update)

        record = self.authority.registry.ocsp_lookup(cert_id.serial_number, now)
        if record is not None and not self.profile.good_for_revoked:
            return SingleResponse(
                answered_id,
                CertStatus.REVOKED,
                this_update,
                next_update,
                revoked_info=RevokedInfo(record.revoked_at, record.reason),
            )
        return SingleResponse(answered_id, CertStatus.GOOD, this_update, next_update)

    def _malformed_body(self, now: int) -> Optional[bytes]:
        mode = self.profile.malformed_mode
        if mode is None:
            for window in self.profile.malformed_windows:
                if window.active(now):
                    mode = window.mode
                    break
        if mode is None:
            return None
        if mode == "empty":
            return b""
        if mode == "zero":
            return b"0"
        if mode == "javascript":
            return _JAVASCRIPT_BODY
        if mode == "truncated":
            # A structurally broken prefix of a plausible response.
            return bytes.fromhex("30820120" + "0a0100" + "a082")
        raise AssertionError(f"unhandled malformed mode {mode!r}")


class CRLService:
    """Serves the CA's current CRL over HTTP GET.

    The CRL is republished every *publication_interval* seconds with a
    *validity*-long window, regenerated deterministically per epoch.
    """

    def __init__(self, authority: CertificateAuthority, url: str,
                 publication_interval: int = 24 * 3600,
                 validity: int = 7 * 24 * 3600, epoch_start: int = 0) -> None:
        self.authority = authority
        self.url = url
        self.publication_interval = publication_interval
        self.validity = validity
        self.epoch_start = epoch_start

    def handle(self, request: HTTPRequest, now: int) -> HTTPResponse:
        """Return the current CRL DER."""
        if request.method != "GET":
            return HTTPResponse(405, b"method not allowed")
        elapsed = max(0, now - self.epoch_start)
        epoch = self.epoch_start + (elapsed // self.publication_interval) * self.publication_interval
        crl = self.authority.build_crl(epoch, validity=self.validity)
        return HTTPResponse(200, crl.der, {"Content-Type": "application/pkix-crl"})
