"""Certificate authorities for the simulated PKI.

A :class:`CertificateAuthority` owns a signing key and certificate,
issues leaf certificates (optionally with OCSP Must-Staple), revokes
them into a :class:`~repro.ca.registry.RevocationRegistry`, publishes
CRLs, and can mint delegated OCSP signing certificates.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..canon import stable_seed
from ..crypto import KeyPool, RSAPrivateKey
from ..simnet.clock import DAY, WEEK
from ..x509 import (
    CRLBuilder,
    Certificate,
    CertificateBuilder,
    CertificateList,
    Name,
    self_signed,
)
from .registry import RevocationPolicy, RevocationRegistry


class CertificateAuthority:
    """A CA with its key, certificate, and revocation state."""

    def __init__(self, name: str, key: RSAPrivateKey, certificate: Certificate,
                 ocsp_url: str, crl_url: Optional[str] = None,
                 revocation_policy: Optional[RevocationPolicy] = None,
                 serial_seed: int = 1) -> None:
        self.name = name
        self.key = key
        self.certificate = certificate
        self.ocsp_url = ocsp_url
        self.crl_url = crl_url
        self.registry = RevocationRegistry(revocation_policy)
        self._next_serial = serial_seed
        self._issued: List[Certificate] = []

    # -- construction helpers --------------------------------------------------

    @classmethod
    def create_root(cls, name: str, ocsp_url: str, crl_url: Optional[str] = None,
                    key_pool: Optional[KeyPool] = None, not_before: int = 0,
                    lifetime: int = 20 * 365 * DAY,
                    revocation_policy: Optional[RevocationPolicy] = None,
                    serial_seed: int = 1) -> "CertificateAuthority":
        """Create a self-signed root CA."""
        # "is not None", not "or": a fresh KeyPool has len() == 0 and
        # would be silently discarded by truthiness.
        pool = (key_pool if key_pool is not None
                else KeyPool(size=1, seed=stable_seed(name)))
        key = pool.fresh()
        certificate = self_signed(
            Name.build(name, organization=name),
            key,
            serial=1,
            not_before=not_before,
            not_after=not_before + lifetime,
        )
        return cls(name, key, certificate, ocsp_url, crl_url,
                   revocation_policy, serial_seed)

    def create_intermediate(self, name: str, ocsp_url: str,
                            crl_url: Optional[str] = None,
                            key_pool: Optional[KeyPool] = None,
                            not_before: Optional[int] = None,
                            lifetime: int = 10 * 365 * DAY,
                            revocation_policy: Optional[RevocationPolicy] = None,
                            ) -> "CertificateAuthority":
        """Issue an intermediate CA chained under this one."""
        pool = (key_pool if key_pool is not None
                else KeyPool(size=1, seed=stable_seed(name)))
        key = pool.fresh()
        start = self.certificate.validity.not_before if not_before is None else not_before
        certificate = (
            CertificateBuilder()
            .serial_number(self.allocate_serial())
            .issuer(self.certificate.subject)
            .subject(Name.build(name, organization=self.name))
            .public_key(key.public_key)
            .validity(start, start + lifetime)
            .ca(path_length=0)
            # The intermediate's own revocation status is served by the
            # parent's responder — needed for RFC 6961 multi-stapling.
            .ocsp_url(self.ocsp_url)
            .sign(self.key)
        )
        return CertificateAuthority(name, key, certificate, ocsp_url, crl_url,
                                    revocation_policy)

    # -- issuance ---------------------------------------------------------------

    def allocate_serial(self) -> int:
        """Hand out the next serial number."""
        serial = self._next_serial
        self._next_serial += 1
        return serial

    def issue_leaf(self, domain: str, key: RSAPrivateKey, not_before: int,
                   lifetime: int = 90 * DAY, must_staple: bool = False,
                   extra_domains: Sequence[str] = (),
                   include_crl_url: bool = True,
                   ocsp_url: Optional[str] = None) -> Certificate:
        """Issue an end-entity certificate for *domain*.

        Must-Staple is opt-in, as it is with Let's Encrypt ("domain
        owners' consent", Section 2.4).  ``include_crl_url=False``
        models Let's Encrypt, which "only supports OCSP" (footnote 18).
        *ocsp_url* overrides the CA default — large CAs spread their
        certificates across many responder hostnames.
        """
        builder = (
            CertificateBuilder()
            .serial_number(self.allocate_serial())
            .issuer(self.certificate.subject)
            .subject(Name.build(domain))
            .public_key(key.public_key)
            .validity(not_before, not_before + lifetime)
            .leaf()
            .dns_names([domain, *extra_domains])
            .server_auth()
            .ocsp_url(ocsp_url or self.ocsp_url)
        )
        if include_crl_url and self.crl_url:
            builder.crl_url(self.crl_url)
        if must_staple:
            builder.must_staple()
        certificate = builder.sign(self.key)
        self._issued.append(certificate)
        return certificate

    def issue_ocsp_signer(self, key: RSAPrivateKey, not_before: int,
                          lifetime: int = 365 * DAY) -> Certificate:
        """Issue a delegated OCSP signing certificate (RFC 6960 4.2.2.2)."""
        return (
            CertificateBuilder()
            .serial_number(self.allocate_serial())
            .issuer(self.certificate.subject)
            .subject(Name.build(f"{self.name} OCSP Signer"))
            .public_key(key.public_key)
            .validity(not_before, not_before + lifetime)
            .leaf()
            .ocsp_signing()
            .sign(self.key)
        )

    @property
    def issued(self) -> List[Certificate]:
        """Certificates issued by this CA, in order."""
        return list(self._issued)

    # -- revocation --------------------------------------------------------------

    def revoke(self, certificate: "Certificate | int", revoked_at: int,
               reason: Optional[int] = None) -> None:
        """Revoke a certificate (or raw serial) at *revoked_at*."""
        serial = certificate if isinstance(certificate, int) else certificate.serial_number
        self.registry.revoke(serial, revoked_at, reason)

    def build_crl(self, now: int, validity: int = WEEK,
                  prune_expired_before: Optional[int] = None) -> CertificateList:
        """Publish a CRL as of *now*.

        *prune_expired_before* models CAs removing expired certificates
        from CRLs (paper footnote 3): entries for serials revoked before
        the cutoff are dropped.
        """
        builder = CRLBuilder(self.certificate.subject).update_window(now, now + validity)
        for record in self.registry.crl_entries(now):
            if prune_expired_before is not None and record.revoked_at < prune_expired_before:
                continue
            builder.add_entry(record.serial_number, record.revoked_at, record.reason)
        return builder.sign(self.key)

    def __repr__(self) -> str:
        return f"CertificateAuthority({self.name!r}, issued={len(self._issued)})"
