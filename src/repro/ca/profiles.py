"""Responder behaviour profiles.

Every quirk the paper measured in real OCSP responders is a knob on
:class:`ResponderProfile`; the corpus builder draws profile populations
matching the measured proportions so the reproduced figures take their
shapes from the same mixtures.

Paper anchors for each knob:

* ``validity_period`` / ``blank_next_update`` — Figure 8: median about a
  week; 9.1% of responders always blank nextUpdate; 2% exceed a month;
  the extreme reaches 108,130,800 s (1,251 days).
* ``this_update_margin`` — Figure 9: 17.2% of responders return
  responses with *zero* margin; 3% even return future thisUpdate.
* ``extra_certs`` — Figure 6: 14.5-15% of responders include more than
  one certificate; ocsp.cpc.gov.ae always includes four chains.
* ``serials_per_response`` — Figure 7: 96.2% return one serial; 3.3%
  always return 20.
* ``malformed_mode`` — Figure 5: eight responders persistently send
  malformed bodies "including empty responses, the value '0', or even
  JavaScript pages"; sheca and postsignum episodes sent "0".
* ``update_interval`` / ``on_demand`` — Section 5.4: 51.7% do not
  generate on demand; some (hinet, cnnic) set validity equal to the
  update interval, risking stale caches.
* ``stale_backends`` — footnote 17: multiple responders behind one IP
  with unsynchronized producedAt.
* ``unknown_for_revoked`` / ``good_for_revoked`` — Table 1 discrepancy
  modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..simnet.clock import DAY, HOUR, WEEK


@dataclass
class MalformedWindow:
    """A period during which a responder emits a malformed payload."""

    start: int
    end: int
    mode: str  # one of MALFORMED_MODES

    def active(self, now: int) -> bool:
        """True when *now* falls inside the window."""
        return self.start <= now < self.end


#: Malformed payloads the paper saw in the wild.
MALFORMED_MODES = ("empty", "zero", "javascript", "truncated")


@dataclass
class ResponderProfile:
    """Complete behavioural description of one OCSP responder."""

    #: Validity period (nextUpdate - thisUpdate); ignored when blank.
    validity_period: int = WEEK
    #: Blank nextUpdate: "newer revocation information is always available".
    blank_next_update: bool = False
    #: Margin subtracted from generation time to form thisUpdate.  Zero
    #: reproduces the no-margin responders; negative pushes thisUpdate
    #: into the future.
    this_update_margin: int = HOUR
    #: Pre-generation cadence; None means strictly on-demand.
    update_interval: Optional[int] = DAY
    #: Number of certificates embedded in responses beyond the delegate
    #: needed for verification (0 for most responders).
    extra_certs: int = 0
    #: Include the full chain up to the root (the cpc.gov.ae behaviour).
    include_root_chain: bool = False
    #: Serial numbers stuffed into every response (1 = just the asked one).
    serials_per_response: int = 1
    #: Sign with a delegated responder certificate instead of the CA key.
    delegated_signing: bool = False
    #: Persistent malformed payload mode, or None.
    malformed_mode: Optional[str] = None
    #: Transient malformed episodes (sheca / postsignum events).
    malformed_windows: Tuple[MalformedWindow, ...] = ()
    #: Sign responses with an unrelated key (signature never verifies).
    wrong_key: bool = False
    #: Answer with a different serial number than requested.
    serial_mismatch: bool = False
    #: Return Unknown for every certificate (one Table-1 responder did
    #: this for all 5,375 revoked certificates on its CRL).
    unknown_for_all: bool = False
    #: Ignore the OCSP revocation database and say Good regardless.
    good_for_revoked: bool = False
    #: Number of unsynchronized backends sharing the responder's name;
    #: >1 makes producedAt regress between consecutive polls.
    stale_backends: int = 1
    #: Lag between backend generations in seconds (only with stale_backends>1).
    backend_skew: int = 10 * 60
    #: Respond with an OCSP error status (e.g. tryLater) always.
    always_try_later: bool = False

    def __post_init__(self) -> None:
        if self.malformed_mode is not None and self.malformed_mode not in MALFORMED_MODES:
            raise ValueError(f"unknown malformed mode: {self.malformed_mode}")
        if self.serials_per_response < 1:
            raise ValueError("serials_per_response must be >= 1")
        if self.stale_backends < 1:
            raise ValueError("stale_backends must be >= 1")
        if self.validity_period <= 0:
            raise ValueError("validity_period must be positive")

    @property
    def on_demand(self) -> bool:
        """True when responses are generated per request."""
        return self.update_interval is None

    @property
    def effective_validity(self) -> Optional[int]:
        """The validity period, or None when nextUpdate is blank."""
        return None if self.blank_next_update else self.validity_period


def well_behaved_profile() -> ResponderProfile:
    """The baseline: weekly validity, hourly-safe margin, one serial."""
    return ResponderProfile()


def zero_margin_profile() -> ResponderProfile:
    """A responder that gives clients no clock-skew margin (Figure 9)."""
    return ResponderProfile(this_update_margin=0, update_interval=None)


def future_this_update_profile(seconds_ahead: int = 300) -> ResponderProfile:
    """A responder whose thisUpdate sits in the future (Figure 9's 3%)."""
    return ResponderProfile(this_update_margin=-seconds_ahead, update_interval=None)


def blank_next_update_profile() -> ResponderProfile:
    """A responder that never sets nextUpdate (Figure 8's 9.1%)."""
    return ResponderProfile(blank_next_update=True)


def long_validity_profile(days: int = 1251) -> ResponderProfile:
    """A responder with a dangerously long validity period (Figure 8's 2%)."""
    return ResponderProfile(validity_period=days * DAY)


def serial_stuffing_profile(count: int = 20) -> ResponderProfile:
    """A responder that answers for *count* serials at once (Figure 7)."""
    return ResponderProfile(serials_per_response=count)


def superfluous_certs_profile(extra: int = 3, include_root: bool = True) -> ResponderProfile:
    """A responder shipping whole chains in responses (Figure 6)."""
    return ResponderProfile(extra_certs=extra, include_root_chain=include_root,
                            delegated_signing=True)


def persistent_malformed_profile(mode: str = "zero") -> ResponderProfile:
    """A responder that always sends garbage (Figure 5's 1.6%)."""
    return ResponderProfile(malformed_mode=mode)


def non_overlapping_profile(period: int = 2 * HOUR) -> ResponderProfile:
    """validityPeriod == update interval (hinet/cnnic, Section 5.4)."""
    return ResponderProfile(validity_period=period, update_interval=period,
                            this_update_margin=0)
