"""Simulated certificate authorities, OCSP responders, and CRL services.

This package models the first principal the paper studies: CAs must
"run highly available, correct OCSP responders" (Section 2.4).  Every
misbehaviour the paper measured is available as a knob on
:class:`ResponderProfile`.
"""

from .authority import CertificateAuthority
from .profiles import (
    MALFORMED_MODES,
    MalformedWindow,
    ResponderProfile,
    blank_next_update_profile,
    future_this_update_profile,
    long_validity_profile,
    non_overlapping_profile,
    persistent_malformed_profile,
    serial_stuffing_profile,
    superfluous_certs_profile,
    well_behaved_profile,
    zero_margin_profile,
)
from .registry import (
    RevocationDatabase,
    RevocationPolicy,
    RevocationRecord,
    RevocationRegistry,
)
from .responder import CRLService, OCSPResponder

__all__ = [
    "CRLService",
    "CertificateAuthority",
    "MALFORMED_MODES",
    "MalformedWindow",
    "OCSPResponder",
    "ResponderProfile",
    "RevocationDatabase",
    "RevocationPolicy",
    "RevocationRecord",
    "RevocationRegistry",
    "blank_next_update_profile",
    "future_this_update_profile",
    "long_validity_profile",
    "non_overlapping_profile",
    "persistent_malformed_profile",
    "serial_stuffing_profile",
    "superfluous_certs_profile",
    "well_behaved_profile",
    "zero_margin_profile",
]
