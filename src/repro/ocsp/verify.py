"""Client-side OCSP response verification.

Implements the checks the paper's measurement client performs (Section
5.3), producing exactly its error taxonomy:

* **malformed** — the bytes do not parse as a DER OCSPResponse
  ("Malformed structure ... does not follow the ASN.1 specification"),
* **serial mismatch** — "the serial number of the certificate in the
  OCSP response does not match the serial number that our client
  requested",
* **incorrect signature** — "the signature in the OCSP response is
  unable to be verified using (1) certificates in the OCSP response or
  (2) the issuer's certificate",

plus the time-validity outcomes of Section 5.4 (premature thisUpdate,
expired nextUpdate) and the delegated-signer path (OCSP Signature
Authority Delegation).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..asn1 import Reader
from ..asn1.errors import ASN1Error
from ..x509 import Certificate
from ..asn1 import oid as _oid
from .certid import CertID
from .response import (
    BasicOCSPResponse,
    CertStatus,
    OCSPResponse,
    ResponseStatus,
    SingleResponse,
)


class OCSPError(Enum):
    """Why an OCSP response was unusable (paper Figure 5 + Section 5.4)."""

    MALFORMED = "ASN.1 structure error"
    ERROR_STATUS = "responder returned an error status"
    SERIAL_MISMATCH = "serial number does not match request"
    BAD_SIGNATURE = "signature validation failed"
    NOT_YET_VALID = "thisUpdate is in the future"
    EXPIRED = "nextUpdate has passed"
    NONCE_MISMATCH = "nonce does not match request"


@dataclass
class OCSPCheckResult:
    """The outcome of verifying one OCSP response for one certificate.

    For MALFORMED outcomes the ``error_class`` / ``error_detail`` /
    ``error_offset`` fields attribute the failure: the exception class
    name, its message, and (when the decoder knew it) the absolute byte
    offset where parsing failed — the same provenance style
    ``repro.lint`` uses.
    """

    ok: bool
    error: Optional[OCSPError] = None
    cert_status: Optional[CertStatus] = None
    response: Optional[OCSPResponse] = None
    single: Optional[SingleResponse] = None
    response_status: Optional[ResponseStatus] = None
    delegated: bool = False
    error_class: Optional[str] = None
    error_detail: Optional[str] = None
    error_offset: Optional[int] = None

    def __bool__(self) -> bool:
        return self.ok

    @property
    def revoked(self) -> bool:
        """True when the verified status is REVOKED."""
        return self.cert_status is CertStatus.REVOKED

    @property
    def good(self) -> bool:
        """True when the verified status is GOOD."""
        return self.cert_status is CertStatus.GOOD


def verify_response(response_der: bytes, cert_id: CertID, issuer: Certificate,
                    now: int, max_clock_skew: int = 0,
                    lenient: bool = False,
                    expected_nonce: Optional[bytes] = None) -> OCSPCheckResult:
    """Fully verify raw OCSP response bytes against the request context.

    *max_clock_skew* models how tolerant the client's clock comparison
    is; the paper notes responders "whose 'close' validity time may
    cause clients with slightly slow clocks to consider the response
    invalid", which a skew of 0 makes observable.

    *expected_nonce* enables RFC 6960 4.4.1 replay protection: when
    set, the (signed) nonce echoed in the response must match, which
    defeats the staple-replay attack analysed in
    :mod:`repro.core.attacks` — note that *stapled* responses cannot
    use nonces, which is exactly why their validity period bounds the
    replay window.
    """
    try:
        response = OCSPResponse.from_der(response_der, lenient=lenient)
    except (ASN1Error, ValueError) as exc:
        return OCSPCheckResult(
            ok=False,
            error=OCSPError.MALFORMED,
            error_class=type(exc).__name__,
            error_detail=str(exc),
            error_offset=getattr(exc, "offset", None),
        )

    if not response.is_successful or response.basic is None:
        return OCSPCheckResult(
            ok=False,
            error=OCSPError.ERROR_STATUS,
            response=response,
            response_status=response.response_status,
        )

    basic = response.basic
    single = basic.find_single(cert_id.serial_number)
    if single is None or not _certid_matches(single.cert_id, cert_id):
        return OCSPCheckResult(
            ok=False,
            error=OCSPError.SERIAL_MISMATCH,
            response=response,
            response_status=response.response_status,
        )

    delegated = False
    if basic.verify_signature(issuer.public_key):
        pass
    else:
        delegate = _find_delegate(basic, issuer)
        if delegate is not None and basic.verify_signature(delegate.public_key):
            delegated = True
        else:
            return OCSPCheckResult(
                ok=False,
                error=OCSPError.BAD_SIGNATURE,
                response=response,
                single=single,
                response_status=response.response_status,
            )

    if expected_nonce is not None and basic.nonce != expected_nonce:
        return OCSPCheckResult(
            ok=False,
            error=OCSPError.NONCE_MISMATCH,
            response=response,
            single=single,
            response_status=response.response_status,
            delegated=delegated,
        )

    if single.this_update > now + max_clock_skew:
        return OCSPCheckResult(
            ok=False,
            error=OCSPError.NOT_YET_VALID,
            response=response,
            single=single,
            response_status=response.response_status,
            delegated=delegated,
        )
    if single.next_update is not None and single.next_update < now - max_clock_skew:
        return OCSPCheckResult(
            ok=False,
            error=OCSPError.EXPIRED,
            response=response,
            single=single,
            response_status=response.response_status,
            delegated=delegated,
        )

    return OCSPCheckResult(
        ok=True,
        cert_status=single.cert_status,
        response=response,
        single=single,
        response_status=response.response_status,
        delegated=delegated,
    )


def _certid_matches(answered: CertID, requested: CertID) -> bool:
    """Serial must match; hashes must match when the algorithms agree."""
    if answered.serial_number != requested.serial_number:
        return False
    if answered.hash_name == requested.hash_name:
        return (
            answered.issuer_name_hash == requested.issuer_name_hash
            and answered.issuer_key_hash == requested.issuer_key_hash
        )
    return True


def _find_delegate(basic: BasicOCSPResponse, issuer: Certificate) -> Optional[Certificate]:
    """Find a valid delegated OCSP signing certificate in the response.

    The delegate must be signed by the same issuer as the certificate in
    question and carry the OCSPSigning EKU (RFC 6960 section 4.2.2.2).
    """
    for candidate in basic.certificates:
        if candidate.issuer != issuer.subject:
            continue
        if _oid.EKU_OCSP_SIGNING not in candidate.extensions.extended_key_usages:
            continue
        if not candidate.verify_signature(issuer.public_key):
            continue
        if basic.responder_key_hash is not None:
            key_bits = _public_key_bits(candidate)
            if hashlib.sha1(key_bits).digest() != basic.responder_key_hash:
                continue
        return candidate
    return None


def _public_key_bits(certificate: Certificate) -> bytes:
    spki = Reader(certificate.spki_der).read_sequence()
    spki.read_sequence()
    return spki.read_bit_string()
