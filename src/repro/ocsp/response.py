"""OCSP responses (RFC 6960 section 4.2): model, encode, parse.

The response model captures everything the paper measures about
response *quality*:

* ``thisUpdate`` / ``nextUpdate`` per SingleResponse — validity period
  analysis (Figures 8 and 9); ``nextUpdate`` may be None ("blank"),
  which 9.1% of responders in the paper always do,
* ``producedAt`` — on-demand vs pre-generated detection (Section 5.4),
* multiple SingleResponses — unsolicited serial stuffing (Figure 7),
* embedded certificates — superfluous-certificate analysis (Figure 6),
* delegated signing — OCSP Signature Authority Delegation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, IntEnum
from typing import List, Optional, Sequence

from ..asn1 import ObjectIdentifier, Reader, encoder, oid, tags
from ..asn1.errors import DecodeError
from ..crypto import RSAPrivateKey, RSAPublicKey, is_valid, sign
from ..x509 import Certificate
from .certid import CertID

_HASH_TO_ALGORITHM = {
    "sha256": oid.SHA256_WITH_RSA,
    "sha1": oid.SHA1_WITH_RSA,
}
_ALGORITHM_TO_HASH = {v: k for k, v in _HASH_TO_ALGORITHM.items()}


class ResponseStatus(IntEnum):
    """OCSPResponseStatus (RFC 6960 section 4.2.1)."""

    SUCCESSFUL = 0
    MALFORMED_REQUEST = 1
    INTERNAL_ERROR = 2
    TRY_LATER = 3
    SIG_REQUIRED = 5
    UNAUTHORIZED = 6


class CertStatus(Enum):
    """Per-certificate status inside a SingleResponse."""

    GOOD = "good"
    REVOKED = "revoked"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class RevokedInfo:
    """Revocation time and optional reason carried with a REVOKED status."""

    revocation_time: int
    reason: Optional[int] = None


@dataclass
class SingleResponse:
    """One (CertID, status, validity window) element."""

    cert_id: CertID
    cert_status: CertStatus
    this_update: int
    next_update: Optional[int] = None
    revoked_info: Optional[RevokedInfo] = None

    def encode(self) -> bytes:
        if self.cert_status is CertStatus.GOOD:
            status = encoder.encode_implicit(0, b"")
        elif self.cert_status is CertStatus.REVOKED:
            info = self.revoked_info or RevokedInfo(self.this_update)
            parts = [encoder.encode_ocsp_time(info.revocation_time)]
            if info.reason is not None:
                parts.append(encoder.encode_explicit(0, encoder.encode_enumerated(info.reason)))
            status = encoder.encode_implicit(1, b"".join(parts), constructed=True)
        else:
            status = encoder.encode_implicit(2, b"")
        parts = [self.cert_id.encode(), status, encoder.encode_ocsp_time(self.this_update)]
        if self.next_update is not None:
            parts.append(encoder.encode_explicit(0, encoder.encode_ocsp_time(self.next_update)))
        return encoder.encode_sequence(*parts)

    @classmethod
    def decode(cls, reader: Reader) -> "SingleResponse":
        sequence = reader.read_sequence()
        cert_id = CertID.decode(sequence)
        status_tag = sequence.peek_tag()
        revoked_info = None
        if status_tag == tags.context(0, constructed=False):
            sequence.read_tlv()
            cert_status = CertStatus.GOOD
        elif status_tag == tags.context(1, constructed=True):
            info = sequence.read_context(1)
            revocation_tag, revocation_content = info.read_tlv()
            if revocation_tag != tags.GENERALIZED_TIME:
                raise DecodeError("revocationTime must be GeneralizedTime")
            from ..asn1.timecodec import decode_generalized_time
            revocation_time = decode_generalized_time(revocation_content)
            reason = None
            reason_field = info.maybe_context(0)
            if reason_field is not None:
                reason = reason_field.read_enumerated()
            revoked_info = RevokedInfo(revocation_time, reason)
            cert_status = CertStatus.REVOKED
        elif status_tag == tags.context(2, constructed=False):
            sequence.read_tlv()
            cert_status = CertStatus.UNKNOWN
        else:
            raise DecodeError(f"unknown CertStatus tag 0x{status_tag:02x}")
        this_update = sequence.read_time()
        next_update = None
        next_update_field = sequence.maybe_context(0)
        if next_update_field is not None:
            next_update = next_update_field.read_time()
        sequence.maybe_context(1)  # singleExtensions, ignored
        return cls(cert_id, cert_status, this_update, next_update, revoked_info)

    @property
    def validity_period(self) -> Optional[int]:
        """nextUpdate - thisUpdate in seconds, or None for blank nextUpdate."""
        if self.next_update is None:
            return None
        return self.next_update - self.this_update


@dataclass
class BasicOCSPResponse:
    """The parsed BasicOCSPResponse with its raw signed bytes."""

    tbs_der: bytes
    responder_key_hash: Optional[bytes]
    responder_name_der: Optional[bytes]
    produced_at: int
    single_responses: List[SingleResponse]
    signature_algorithm: ObjectIdentifier
    signature: bytes
    certificates: List[Certificate] = field(default_factory=list)
    #: The echoed nonce extension, when present (RFC 6960 4.4.1).
    nonce: Optional[bytes] = None

    def verify_signature(self, key: RSAPublicKey) -> bool:
        """Verify over the original tbsResponseData bytes."""
        hash_name = _ALGORITHM_TO_HASH.get(self.signature_algorithm)
        if hash_name is None:
            return False
        return is_valid(key, self.tbs_der, self.signature, hash_name)

    @property
    def serial_numbers(self) -> List[int]:
        """Serials covered by this response (Figure 7 counts these)."""
        return [single.cert_id.serial_number for single in self.single_responses]

    def find_single(self, serial_number: int) -> Optional[SingleResponse]:
        """The SingleResponse for *serial_number*, or None."""
        for single in self.single_responses:
            if single.cert_id.serial_number == serial_number:
                return single
        return None


@dataclass
class OCSPResponse:
    """The outer OCSPResponse: status plus optional BasicOCSPResponse."""

    response_status: ResponseStatus
    basic: Optional[BasicOCSPResponse] = None
    der: bytes = b""

    @property
    def is_successful(self) -> bool:
        """True for responseStatus == successful."""
        return self.response_status is ResponseStatus.SUCCESSFUL

    @classmethod
    def from_der(cls, der: bytes, lenient: bool = False) -> "OCSPResponse":
        """Parse an OCSPResponse from DER bytes.

        Raises :class:`repro.asn1.ASN1Error` subtypes on malformed
        input — the scanner maps those to the "malformed" class of
        Figure 5.
        """
        reader = Reader(der, lenient=lenient)
        outer = reader.read_sequence()
        status_value = outer.read_enumerated()
        try:
            response_status = ResponseStatus(status_value)
        except ValueError as exc:
            raise DecodeError(f"unknown responseStatus {status_value}") from exc
        basic = None
        response_bytes_field = outer.maybe_context(0)
        if response_bytes_field is not None:
            response_bytes = response_bytes_field.read_sequence()
            response_type = response_bytes.read_oid()
            if response_type != oid.OCSP_BASIC:
                raise DecodeError(f"unsupported responseType: {response_type}")
            basic_der = response_bytes.read_octet_string()
            basic = _decode_basic(basic_der, lenient=lenient)
        outer.expect_end()
        return cls(response_status=response_status, basic=basic, der=der)


def _decode_basic(der: bytes, lenient: bool = False) -> BasicOCSPResponse:
    reader = Reader(der, lenient=lenient)
    outer = reader.read_sequence()
    tbs_der = outer.read_raw_element()
    algorithm_seq = outer.read_sequence()
    signature_algorithm = algorithm_seq.read_oid()
    if not algorithm_seq.at_end():
        algorithm_seq.read_tlv()
    signature = outer.read_bit_string()
    certificates: List[Certificate] = []
    certs_field = outer.maybe_context(0)
    if certs_field is not None:
        certs_seq = certs_field.read_sequence()
        while not certs_seq.at_end():
            certificates.append(Certificate.from_der(certs_seq.read_raw_element()))

    tbs = Reader(tbs_der, lenient=lenient).read_sequence()
    version_field = tbs.maybe_context(0)
    if version_field is not None:
        version_field.read_integer()
    responder_name_der = None
    responder_key_hash = None
    by_name = tbs.maybe_context(1)
    if by_name is not None:
        responder_name_der = by_name.read_raw_element()
    else:
        by_key = tbs.maybe_context(2)
        if by_key is None:
            raise DecodeError("missing ResponderID")
        responder_key_hash = by_key.read_octet_string()
    produced_at = tbs.read_time()
    responses_seq = tbs.read_sequence()
    single_responses = []
    while not responses_seq.at_end():
        single_responses.append(SingleResponse.decode(responses_seq))
    nonce = None
    extensions_field = tbs.maybe_context(1)
    if extensions_field is not None:
        from ..x509.extensions import Extensions
        extensions = Extensions.decode(extensions_field)
        nonce_extension = extensions.get(oid.OCSP_NONCE)
        if nonce_extension is not None:
            nonce_reader = Reader(nonce_extension.value)
            if not nonce_reader.at_end() and nonce_reader.peek_tag() == tags.OCTET_STRING:
                nonce = nonce_reader.read_octet_string()
            else:
                nonce = nonce_extension.value

    return BasicOCSPResponse(
        tbs_der=tbs_der,
        responder_key_hash=responder_key_hash,
        responder_name_der=responder_name_der,
        produced_at=produced_at,
        single_responses=single_responses,
        signature_algorithm=signature_algorithm,
        signature=signature,
        certificates=certificates,
        nonce=nonce,
    )


def encode_error_response(status: ResponseStatus) -> bytes:
    """Encode an error OCSPResponse (tryLater, unauthorized, ...)."""
    if status is ResponseStatus.SUCCESSFUL:
        raise ValueError("successful responses need response bytes")
    return encoder.encode_sequence(encoder.encode_enumerated(int(status)))


def encode_response(single_responses: Sequence[SingleResponse], produced_at: int,
                    signer_key: RSAPrivateKey, responder_key_hash: bytes,
                    certificates: Sequence[Certificate] = (),
                    hash_name: str = "sha256",
                    nonce: Optional[bytes] = None) -> bytes:
    """Encode a successful OCSPResponse signed by *signer_key*.

    ResponderID is always byKey (the common modern form).  Certificates
    for Signature Authority Delegation — or the superfluous chains some
    responders send — go in *certificates*.
    """
    if not single_responses:
        raise ValueError("a successful response needs at least one SingleResponse")
    responder_id = encoder.encode_explicit(
        2, encoder.encode_octet_string(responder_key_hash)
    )
    tbs_parts = [
        responder_id,
        encoder.encode_ocsp_time(produced_at),
        encoder.encode_sequence(*(single.encode() for single in single_responses)),
    ]
    if nonce is not None:
        from ..x509.extensions import Extension
        nonce_extension = Extension(
            oid.OCSP_NONCE, critical=False,
            value=encoder.encode_octet_string(nonce),
        )
        tbs_parts.append(encoder.encode_explicit(
            1, encoder.encode_sequence(nonce_extension.encode())
        ))
    tbs = encoder.encode_sequence(*tbs_parts)
    signature = sign(signer_key, tbs, hash_name)
    basic_parts = [
        tbs,
        encoder.encode_sequence(
            encoder.encode_oid(_HASH_TO_ALGORITHM[hash_name]),
            encoder.encode_null(),
        ),
        encoder.encode_bit_string(signature),
    ]
    if certificates:
        certs_der = encoder.encode_sequence(*(cert.der for cert in certificates))
        basic_parts.append(encoder.encode_explicit(0, certs_der))
    basic = encoder.encode_sequence(*basic_parts)
    response_bytes = encoder.encode_sequence(
        encoder.encode_oid(oid.OCSP_BASIC),
        encoder.encode_octet_string(basic),
    )
    return encoder.encode_sequence(
        encoder.encode_enumerated(int(ResponseStatus.SUCCESSFUL)),
        encoder.encode_explicit(0, response_bytes),
    )
