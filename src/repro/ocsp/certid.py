"""The OCSP CertID structure (RFC 6960 section 4.1.1).

A CertID identifies the certificate being asked about: a hash of the
issuer's name, a hash of the issuer's public key, and the serial
number — "Each OCSP request must contain a given certificate's serial
number along with a hash of the issuer's name and public key" (paper
Section 2.2).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..asn1 import (
    ObjectIdentifier, Reader, UnsupportedAlgorithmError, encoder, oid,
)
from ..x509 import Certificate

_HASH_OIDS = {
    "sha1": oid.SHA1,
    "sha256": oid.SHA256,
}
_OID_TO_HASH = {v: k for k, v in _HASH_OIDS.items()}


@dataclass(frozen=True)
class CertID:
    """The (hash algorithm, issuerNameHash, issuerKeyHash, serial) tuple."""

    hash_name: str
    issuer_name_hash: bytes
    issuer_key_hash: bytes
    serial_number: int

    @classmethod
    def for_certificate(cls, certificate: Certificate, issuer: Certificate,
                        hash_name: str = "sha1") -> "CertID":
        """Build the CertID a client would compute for *certificate*."""
        if hash_name not in _HASH_OIDS:
            raise ValueError(f"unsupported CertID hash: {hash_name}")
        name_hash = hashlib.new(hash_name, issuer.subject.encode()).digest()
        key_hash = _key_hash(issuer, hash_name)
        return cls(
            hash_name=hash_name,
            issuer_name_hash=name_hash,
            issuer_key_hash=key_hash,
            serial_number=certificate.serial_number,
        )

    def encode(self) -> bytes:
        """Encode the CertID SEQUENCE."""
        algorithm = encoder.encode_sequence(
            encoder.encode_oid(_HASH_OIDS[self.hash_name]),
            encoder.encode_null(),
        )
        return encoder.encode_sequence(
            algorithm,
            encoder.encode_octet_string(self.issuer_name_hash),
            encoder.encode_octet_string(self.issuer_key_hash),
            encoder.encode_integer(self.serial_number),
        )

    @classmethod
    def decode(cls, reader: Reader) -> "CertID":
        """Parse a CertID SEQUENCE from *reader*."""
        sequence = reader.read_sequence()
        algorithm = sequence.read_sequence()
        hash_oid = algorithm.read_oid()
        if not algorithm.at_end():
            algorithm.read_tlv()
        hash_name = _OID_TO_HASH.get(hash_oid)
        if hash_name is None:
            raise UnsupportedAlgorithmError(
                f"unsupported CertID hash algorithm: {hash_oid}")
        issuer_name_hash = sequence.read_octet_string()
        issuer_key_hash = sequence.read_octet_string()
        serial_number = sequence.read_integer()
        sequence.expect_end()
        return cls(hash_name, issuer_name_hash, issuer_key_hash, serial_number)

    def matches_issuer(self, issuer: Certificate) -> bool:
        """True when the hashes match *issuer* (responder-side lookup)."""
        name_hash = hashlib.new(self.hash_name, issuer.subject.encode()).digest()
        if name_hash != self.issuer_name_hash:
            return False
        return _key_hash(issuer, self.hash_name) == self.issuer_key_hash


def _key_hash(issuer: Certificate, hash_name: str) -> bytes:
    """Hash of the issuer's public key BIT STRING content."""
    spki = Reader(issuer.spki_der).read_sequence()
    spki.read_sequence()
    key_bits = spki.read_bit_string()
    return hashlib.new(hash_name, key_bits).digest()
