"""OCSP requests (RFC 6960 section 4.1).

Requests are unsigned (the common case; the optionalSignature field is
not produced and is rejected on parse if present).  The nonce extension
is supported because responder freshness testing uses it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional

from ..asn1 import Reader, encoder, oid, tags
from ..asn1.errors import DecodeError
from ..x509.extensions import Extension, Extensions
from .certid import CertID


@dataclass
class OCSPRequest:
    """An OCSP request for one or more CertIDs, with an optional nonce."""

    cert_ids: List[CertID]
    nonce: Optional[bytes] = None

    def __post_init__(self) -> None:
        if not self.cert_ids:
            raise ValueError("an OCSP request needs at least one CertID")

    @classmethod
    def for_single(cls, cert_id: CertID, nonce: Optional[bytes] = None) -> "OCSPRequest":
        """The typical single-certificate request."""
        return cls(cert_ids=[cert_id], nonce=nonce)

    def encode(self) -> bytes:
        """Encode the OCSPRequest DER (as sent in an HTTP POST body)."""
        request_list = encoder.encode_sequence(
            *(encoder.encode_sequence(cert_id.encode()) for cert_id in self.cert_ids)
        )
        tbs_parts = [request_list]
        if self.nonce is not None:
            nonce_extension = Extension(
                oid.OCSP_NONCE,
                critical=False,
                value=encoder.encode_octet_string(self.nonce),
            )
            extensions = encoder.encode_sequence(nonce_extension.encode())
            tbs_parts.append(encoder.encode_explicit(2, extensions))
        tbs_request = encoder.encode_sequence(*tbs_parts)
        return encoder.encode_sequence(tbs_request)

    @classmethod
    def from_der(cls, der: bytes) -> "OCSPRequest":
        """Parse an OCSPRequest."""
        reader = Reader(der)
        outer = reader.read_sequence()
        tbs = outer.read_sequence()
        if not outer.at_end():
            raise DecodeError("signed OCSP requests are not supported")
        version_field = tbs.maybe_context(0)
        if version_field is not None:
            version = version_field.read_integer()
            if version != 0:
                raise DecodeError(f"unsupported OCSP request version: {version}")
        requestor = tbs.maybe_context(1)
        if requestor is not None:
            pass  # requestorName carried but unused
        request_list = tbs.read_sequence()
        cert_ids = []
        while not request_list.at_end():
            request = request_list.read_sequence()
            cert_ids.append(CertID.decode(request))
            request.maybe_context(0)  # singleRequestExtensions, ignored
        nonce = None
        extension_wrapper = tbs.maybe_context(2)
        if extension_wrapper is not None:
            extensions = Extensions.decode(extension_wrapper)
            nonce_extension = extensions.get(oid.OCSP_NONCE)
            if nonce_extension is not None:
                nonce_reader = Reader(nonce_extension.value)
                if nonce_reader.peek_tag() == tags.OCTET_STRING:
                    nonce = nonce_reader.read_octet_string()
                else:  # some implementations put raw bytes here
                    nonce = nonce_extension.value
        return cls(cert_ids=cert_ids, nonce=nonce)

    @property
    def serial_numbers(self) -> List[int]:
        """The serial numbers being queried."""
        return [cert_id.serial_number for cert_id in self.cert_ids]

    def cache_key(self) -> bytes:
        """Stable digest identifying what this request *asks* (CertID hash).

        Two requests with the same CertIDs (in order) and the same
        nonce get the same key, however their DER was framed — the
        pre-signed cache in ``repro.serve`` keys entries on this, so a
        re-encoded request still hits the entry signed for the
        canonical encoding.  The nonce participates because a nonced
        response echoes it and is only reusable for the same nonce.
        """
        digest = hashlib.sha256()
        for cert_id in self.cert_ids:
            digest.update(cert_id.encode())
        digest.update(b"|nonce|")
        digest.update(self.nonce or b"")
        return digest.digest()
