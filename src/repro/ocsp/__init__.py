"""OCSP (RFC 6960) from scratch: requests, responses, verification.

This package produces and consumes the actual DER bytes exchanged
between the simulation's measurement clients, web servers, and CA
responders, so every "malformed / serial mismatch / bad signature"
classification in the reproduced figures is the verdict of a real
parser and verifier.
"""

from .artifact import ResponseArtifact
from .certid import CertID
from .request import OCSPRequest
from .response import (
    BasicOCSPResponse,
    CertStatus,
    OCSPResponse,
    ResponseStatus,
    RevokedInfo,
    SingleResponse,
    encode_error_response,
    encode_response,
)
from .verify import OCSPCheckResult, OCSPError, verify_response
from .client import OCSPClient, OCSPLookupResult

__all__ = [
    "BasicOCSPResponse",
    "CertID",
    "CertStatus",
    "OCSPCheckResult",
    "OCSPClient",
    "OCSPLookupResult",
    "OCSPError",
    "OCSPRequest",
    "OCSPResponse",
    "ResponseArtifact",
    "ResponseStatus",
    "RevokedInfo",
    "SingleResponse",
    "encode_error_response",
    "encode_response",
    "verify_response",
]
