"""Transport-neutral OCSP response artifacts.

A :class:`ResponseArtifact` is what a responder core *produces*: the
exact DER (or deliberately-broken) body it would serve, plus enough
metadata — producedAt, the earliest nextUpdate, a provenance tag — for
callers to reason about freshness without re-parsing.  It is the single
currency shared by the in-process simnet responder, the ``repro.serve``
daemon, the OCSP client, and the TLS scanner's staple handling, which
is what makes "daemon responses are byte-identical to simnet answers"
checkable: both transports return the same artifact for the same
(request bytes, simulated clock).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..asn1.errors import ASN1Error
from ..simnet.http import OCSP_RESPONSE_CONTENT_TYPE, HTTPResponse


@dataclass(frozen=True)
class ResponseArtifact:
    """One response as bytes plus transport-independent metadata.

    ``source`` tags provenance: ``signed`` (a real BasicOCSPResponse
    built by a responder core), ``error:<status>`` (an OCSPResponse
    error envelope such as ``error:malformed_request``), ``malformed``
    (a deliberately-broken body from a misbehaving profile), or —
    for artifacts recovered from the wire via :meth:`from_body` —
    ``fetched`` / ``undecodable``.
    """

    body: bytes
    status_code: int = 200
    content_type: str = OCSP_RESPONSE_CONTENT_TYPE
    produced_at: Optional[int] = None
    next_update: Optional[int] = None
    source: str = "signed"

    def fresh(self, now: int) -> bool:
        """Whether this artifact may still be served at *now*.

        Strict ``now < next_update``: a response whose nextUpdate equals
        the current instant is already expired-on-arrival (the refresh
        fencepost — RFC 6960 says nextUpdate is the time "at or before
        which newer information will be available").  A blank nextUpdate
        never expires.
        """
        return self.next_update is None or now < self.next_update

    def to_http(self) -> HTTPResponse:
        """Render as a simnet HTTP response."""
        return HTTPResponse(self.status_code, self.body,
                            {"Content-Type": self.content_type})

    @classmethod
    def from_body(cls, body: bytes, source: str = "fetched") -> "ResponseArtifact":
        """Recover an artifact from wire bytes, tolerantly.

        Parses the body as an OCSPResponse to populate ``produced_at``
        and the *earliest* nextUpdate across its SingleResponses (the
        instant the whole response goes stale).  Bodies that do not
        parse yield ``source="undecodable"`` with no metadata — never
        an exception, because the scanner feeds this real-world staples.
        """
        from .response import OCSPResponse, ResponseStatus

        try:
            response = OCSPResponse.from_der(body, lenient=True)
        except (ASN1Error, ValueError):
            return cls(body=body, source="undecodable")
        if response.basic is None:
            status = ResponseStatus(response.response_status).name.lower()
            return cls(body=body, source=f"error:{status}")
        next_updates = [single.next_update
                        for single in response.basic.single_responses]
        next_update = None
        if next_updates and all(value is not None for value in next_updates):
            next_update = min(next_updates)
        return cls(
            body=body,
            produced_at=response.basic.produced_at,
            next_update=next_update,
            source=source,
        )

    @classmethod
    def from_http(cls, response: HTTPResponse,
                  source: str = "fetched") -> "ResponseArtifact":
        """Recover an artifact from an HTTP exchange's response."""
        if response.status_code != 200:
            return cls(
                body=response.body,
                status_code=response.status_code,
                content_type=response.headers.get("Content-Type", ""),
                source=f"http:{response.status_code}",
            )
        return cls.from_body(response.body, source=source)
