"""A high-level OCSP client: fetch + verify + cache in one call.

Ties together the pieces a real relying party needs — request
construction, GET/POST transport over the simulated network, response
verification, optional nonce enforcement, and optional client-side
caching — behind one method:

    client = OCSPClient(network, vantage="Paris")
    status = client.check(leaf, issuer, now)

Resilience is policy-driven (:mod:`repro.faults.policy`): the client
fails over across every URL in ``certificate.ocsp_urls``, optionally
retries with deterministic backoff (each retry advances the simulated
clock — the network is a pure function of ``(request, vantage, now)``,
so re-asking at the same instant would answer identically), enforces
per-attempt and total time budgets against ``FetchResult.elapsed_ms``,
and can fall back to the certificate's CRL distribution points.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional

from ..asn1.errors import ASN1Error
from ..simnet import FetchResult, HTTPRequest, Network, ocsp_request
from ..x509 import Certificate, CertificateList
from .artifact import ResponseArtifact
from .certid import CertID
from .request import OCSPRequest
from .response import CertStatus
from .verify import OCSPCheckResult, OCSPError, verify_response


@dataclass
class OCSPLookupResult:
    """Everything one lookup produced."""

    check: Optional[OCSPCheckResult]
    fetch: Optional[FetchResult]
    #: The last OCSP body that came back, as a transport-neutral
    #: artifact (metadata without re-parsing); None when nothing did.
    artifact: Optional[ResponseArtifact] = None
    from_cache: bool = False
    #: Every transport attempt, in order (OCSP URLs, then CRL URLs).
    attempts: List[FetchResult] = field(default_factory=list)
    #: Attempts whose elapsed time blew the policy's per-attempt budget.
    timeouts: int = 0
    #: Status obtained from the CRL fallback path, when OCSP failed.
    crl_status: Optional[CertStatus] = None
    via_crl: bool = False
    #: True when the policy never checks revocation (CRLSet-style).
    skipped: bool = False
    #: CRL bodies fetched during fallback that failed to parse, as
    #: ``"url: ExcClass: message"`` strings (hostile-corpus attribution).
    crl_parse_errors: List[str] = field(default_factory=list)

    @property
    def status(self) -> Optional[CertStatus]:
        """The verified certificate status, when one was obtained."""
        if self.via_crl:
            return self.crl_status
        return self.check.cert_status if self.check is not None else None

    @property
    def ok(self) -> bool:
        """True when a verified, in-window status was obtained (from
        OCSP or the CRL fallback)."""
        return (self.check is not None and self.check.ok) or self.via_crl

    @property
    def total_elapsed_ms(self) -> float:
        """Transport time summed over every attempt."""
        return round(sum(attempt.elapsed_ms for attempt in self.attempts), 3)


class OCSPClient:
    """A relying-party OCSP client over the simulated network."""

    def __init__(self, network: Network, vantage: str = "Virginia",
                 use_get: bool = False, use_nonce: bool = False,
                 cache=None, max_clock_skew: int = 0,
                 nonce_source=None, policy=None) -> None:
        self.network = network
        self.vantage = vantage
        self.use_get = use_get
        self.use_nonce = use_nonce
        self.cache = cache  # a repro.browser.ClientOCSPCache, or None
        self.max_clock_skew = max_clock_skew
        self._nonce_source = nonce_source or _default_nonce_source()
        if policy is None:
            from ..faults.policy import DEFAULT_POLICY
            policy = DEFAULT_POLICY
        self.policy = policy
        self.requests_sent = 0

    def check(self, certificate: Certificate, issuer: Certificate,
              now: int, url: Optional[str] = None) -> OCSPLookupResult:
        """Look up *certificate*'s revocation status under the policy."""
        policy = self.policy
        if not policy.check_revocation:
            return OCSPLookupResult(check=None, fetch=None, skipped=True)

        cert_id = CertID.for_certificate(certificate, issuer)
        if self.cache is not None:
            cached = self.cache.lookup(cert_id, now)
            if cached is not None:
                synthetic = OCSPCheckResult(ok=True, cert_status=cached.cert_status)
                return OCSPLookupResult(check=synthetic, fetch=None, from_cache=True)

        urls = [url] if url else list(certificate.ocsp_urls)
        if not policy.failover:
            urls = urls[:1]

        nonce = self._nonce_source(cert_id) if self.use_nonce else None
        request_der = OCSPRequest.for_single(cert_id, nonce=nonce).encode()

        attempts: List[FetchResult] = []
        timeouts = 0
        spent_ms = 0.0
        last_fetch: Optional[FetchResult] = None
        last_check: Optional[OCSPCheckResult] = None
        last_artifact: Optional[ResponseArtifact] = None
        exhausted = False

        # Round-robin failover: each round tries every URL once, and
        # the backoff schedule advances the clock between rounds.
        for wait in policy.backoff_schedule(policy.retries_per_url + 1):
            attempt_now = now + wait
            for responder_url in urls:
                if policy.total_timeout_ms is not None and \
                        spent_ms >= policy.total_timeout_ms:
                    exhausted = True
                    break
                fetch = self._attempt(responder_url, request_der, nonce,
                                      attempt_now)
                attempts.append(fetch)
                spent_ms += fetch.elapsed_ms
                last_fetch = fetch
                if policy.attempt_timeout_ms is not None and \
                        fetch.elapsed_ms > policy.attempt_timeout_ms:
                    timeouts += 1
                    continue
                if not fetch.ok:
                    continue
                last_artifact = ResponseArtifact.from_http(fetch.response)
                check = verify_response(
                    fetch.response.body, cert_id, issuer, attempt_now,
                    max_clock_skew=self.max_clock_skew,
                    expected_nonce=nonce,
                )
                last_check = check
                if check.ok:
                    if self.cache is not None:
                        self.cache.store(cert_id, check, attempt_now)
                    return OCSPLookupResult(check=check, fetch=fetch,
                                            artifact=last_artifact,
                                            attempts=attempts,
                                            timeouts=timeouts)
            if exhausted:
                break

        crl_parse_errors: List[str] = []
        if policy.crl_fallback:
            crl_status = self._crl_fallback(certificate, issuer, cert_id,
                                            now, attempts, crl_parse_errors)
            if crl_status is not None:
                return OCSPLookupResult(check=last_check, fetch=last_fetch,
                                        artifact=last_artifact,
                                        attempts=attempts, timeouts=timeouts,
                                        crl_status=crl_status, via_crl=True,
                                        crl_parse_errors=crl_parse_errors)

        return OCSPLookupResult(check=last_check, fetch=last_fetch,
                                artifact=last_artifact,
                                attempts=attempts, timeouts=timeouts,
                                crl_parse_errors=crl_parse_errors)

    def _attempt(self, responder_url: str, request_der: bytes,
                 nonce: Optional[bytes], now: int) -> FetchResult:
        """One transport attempt against one responder URL (verbatim —
        responders are hit at the URL the certificate advertises).

        The GET/POST choice is the shared RFC 6960 A.1 chooser every
        transport uses; nonced requests always POST (a nonce defeats
        URL-level caching, GET's only advantage)."""
        http_request = ocsp_request(responder_url, request_der,
                                    prefer_get=self.use_get and nonce is None)
        self.requests_sent += 1
        return self.network.fetch(self.vantage, http_request, now)

    def _crl_fallback(self, certificate: Certificate, issuer: Certificate,
                      cert_id: CertID, now: int,
                      attempts: List[FetchResult],
                      parse_errors: Optional[List[str]] = None,
                      ) -> Optional[CertStatus]:
        """Fetch, verify, and consult the certificate's CRLs."""
        for crl_url in certificate.crl_urls:
            self.requests_sent += 1
            fetch = self.network.fetch(
                self.vantage, HTTPRequest(method="GET", url=crl_url), now)
            attempts.append(fetch)
            if not fetch.ok:
                continue
            try:
                crl = CertificateList.from_der(fetch.response.body)
            except (ASN1Error, ValueError) as exc:
                if parse_errors is not None:
                    parse_errors.append(
                        f"{crl_url}: {type(exc).__name__}: {exc}")
                continue
            if not crl.verify_signature(issuer.public_key):
                continue
            if not crl.is_fresh(now):
                continue
            revoked = crl.is_revoked(cert_id.serial_number)
            return CertStatus.REVOKED if revoked else CertStatus.GOOD
        return None


def _default_nonce_source():
    """Deterministic per-CertID nonces (the simulation avoids global RNG)."""
    def source(cert_id: CertID) -> bytes:
        material = cert_id.encode() + b"repro-nonce"
        return hashlib.sha256(material).digest()[:16]
    return source
