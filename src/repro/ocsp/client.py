"""A high-level OCSP client: fetch + verify + cache in one call.

Ties together the pieces a real relying party needs — request
construction, GET/POST transport over the simulated network, response
verification, optional nonce enforcement, and optional client-side
caching — behind one method:

    client = OCSPClient(network, vantage="Paris")
    status = client.check(leaf, issuer, now)
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from ..simnet import FetchResult, Network, ocsp_get, ocsp_post
from ..x509 import Certificate
from .certid import CertID
from .request import OCSPRequest
from .response import CertStatus
from .verify import OCSPCheckResult, OCSPError, verify_response

#: RFC 6960 appendix A.1: GET is only for requests that URL-encode
#: under 255 bytes.
_GET_LIMIT = 255


@dataclass
class OCSPLookupResult:
    """Everything one lookup produced."""

    check: Optional[OCSPCheckResult]
    fetch: Optional[FetchResult]
    from_cache: bool = False

    @property
    def status(self) -> Optional[CertStatus]:
        """The verified certificate status, when one was obtained."""
        return self.check.cert_status if self.check is not None else None

    @property
    def ok(self) -> bool:
        """True when a verified, in-window response was obtained."""
        return self.check is not None and self.check.ok


class OCSPClient:
    """A relying-party OCSP client over the simulated network."""

    def __init__(self, network: Network, vantage: str = "Virginia",
                 use_get: bool = False, use_nonce: bool = False,
                 cache=None, max_clock_skew: int = 0,
                 nonce_source=None) -> None:
        self.network = network
        self.vantage = vantage
        self.use_get = use_get
        self.use_nonce = use_nonce
        self.cache = cache  # a repro.browser.ClientOCSPCache, or None
        self.max_clock_skew = max_clock_skew
        self._nonce_source = nonce_source or _default_nonce_source()
        self.requests_sent = 0

    def check(self, certificate: Certificate, issuer: Certificate,
              now: int, url: Optional[str] = None) -> OCSPLookupResult:
        """Look up *certificate*'s revocation status."""
        cert_id = CertID.for_certificate(certificate, issuer)

        if self.cache is not None:
            cached = self.cache.lookup(cert_id, now)
            if cached is not None:
                synthetic = OCSPCheckResult(ok=True, cert_status=cached.cert_status)
                return OCSPLookupResult(check=synthetic, fetch=None, from_cache=True)

        urls = [url] if url else certificate.ocsp_urls
        if not urls:
            return OCSPLookupResult(check=None, fetch=None)

        nonce = self._nonce_source(cert_id) if self.use_nonce else None
        request = OCSPRequest.for_single(cert_id, nonce=nonce)
        request_der = request.encode()

        if self.use_get and len(request_der) * 4 // 3 < _GET_LIMIT and nonce is None:
            http_request = ocsp_get(urls[0], request_der)
        else:
            http_request = ocsp_post(urls[0] + ("" if urls[0].endswith("/") else "/"),
                                     request_der)
        self.requests_sent += 1
        fetch = self.network.fetch(self.vantage, http_request, now)
        if not fetch.ok:
            return OCSPLookupResult(check=None, fetch=fetch)

        check = verify_response(
            fetch.response.body, cert_id, issuer, now,
            max_clock_skew=self.max_clock_skew,
            expected_nonce=nonce,
        )
        if check.ok and self.cache is not None:
            self.cache.store(cert_id, check, now)
        return OCSPLookupResult(check=check, fetch=fetch)


def _default_nonce_source():
    """Deterministic per-CertID nonces (the simulation avoids global RNG)."""
    def source(cert_id: CertID) -> bytes:
        material = cert_id.encode() + b"repro-nonce"
        return hashlib.sha256(material).digest()[:16]
    return source
