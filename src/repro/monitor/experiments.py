"""The ``monitor-convergence`` experiment: shard-level reducer merges.

Two shard kinds over one scan campaign's event log:

* **reduce shards** (pure) — each takes a contiguous target range,
  regenerates that slice of the scan deterministically (the same
  worker the figure campaigns use), turns the rows into probe events
  with their global ``(ts, ti, vi)`` ordinals, and returns the
  *reducer states* — so what travels between workers and through the
  artifact cache is exactly the mergeable algebra, not raw rows;
* **one throughput shard** (WALL_CLOCK-pragma'd, like the other
  timing shards) — builds the full event log once and times a
  single-partition replay through every stock reducer, emitting
  events/sec.  Timing columns are measurements: cached rows keep the
  numbers of the run that produced them.

The runner merges the shard states **in both fold directions**,
finalizes, and compares digests against the batch pipeline
(:func:`~repro.core.availability.analyze_availability` over the
deterministically merged dataset).  ``summary["converged"]`` is the
acceptance bit CI gates on.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

from ..canon import split_ranges

_WORKERS = "repro.monitor.experiments"


def _campaign_rows(campaign: Dict[str, Any], lo: int,
                   hi: int) -> List[Dict[str, Any]]:
    """One target range's scan rows (the figure campaigns' worker)."""
    from ..runtime.runners import scan_shard
    return scan_shard({"campaign": campaign, "lo": lo, "hi": hi})


def monitor_reduce_shard(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Reduce one partition of the event log to its reducer states."""
    from .reducers import default_reducers
    from .replay import rows_to_events
    events = list(rows_to_events(_campaign_rows(
        payload["campaign"], payload["lo"], payload["hi"])))
    rows: List[Dict[str, Any]] = []
    for name, reducer in sorted(default_reducers().items()):
        rows.append({"kind": "state", "reducer": name,
                     "lo": payload["lo"], "hi": payload["hi"],
                     "events": len(events),
                     "state": reducer.reduce(events)})
    return rows


def monitor_throughput_shard(payload: Dict[str, Any]) -> List[Dict[str, Any]]:  # repro: allow-effect[WALL_CLOCK] -- replay throughput is a measurement, not deterministic content
    """Time one full-log replay through every stock reducer."""
    from .reducers import default_reducers
    from .replay import rows_to_events
    campaign = payload["campaign"]
    n_targets = (campaign["world"]["n_responders"]
                 * campaign["world"]["certs_per_responder"])
    events = list(rows_to_events(_campaign_rows(campaign, 0, n_targets)))
    reducers = default_reducers()
    started = time.perf_counter()
    states = {name: reducer.init() for name, reducer in reducers.items()}
    for event in events:
        for name, reducer in reducers.items():
            if event.kind in reducer.kinds:
                states[name] = reducer.step(states[name], event)
    duration = time.perf_counter() - started
    return [{
        "kind": "throughput",
        "events": len(events),
        "reducers": len(reducers),
        "duration_s": round(duration, 6),
        "events_per_s": round(len(events) / duration, 1)
        if duration else 0.0,
    }]


def monitor_shards(config) -> List:
    """Reduce shards over target ranges plus one throughput shard."""
    from ..runtime.executor import ShardSpec
    campaign = config.campaign.to_dict()
    n_targets = (config.campaign.world.n_responders
                 * config.campaign.world.certs_per_responder)
    shards = [
        ShardSpec(worker=f"{_WORKERS}:monitor_reduce_shard",
                  payload={"campaign": campaign, "lo": lo, "hi": hi},
                  label=f"monitor-reduce[{lo}:{hi}]")
        for lo, hi in split_ranges(n_targets, config.partitions)
    ]
    shards.append(
        ShardSpec(worker=f"{_WORKERS}:monitor_throughput_shard",
                  payload={"campaign": campaign},
                  label="monitor-throughput"))
    return shards


def run_monitor_convergence(ctx, config) -> Dict[str, Any]:
    """Fan out the reducer shards; prove stream == batch, both folds."""
    from ..canon import stable_digest
    from ..core.availability import analyze_availability
    from ..runtime.runners import merged_scan
    from .reducers import default_reducers
    from .replay import merge_states

    outputs = ctx.run_shards(monitor_shards(config))
    rows = [row for shard_rows in outputs for row in shard_rows]
    throughput = next(row for row in rows if row["kind"] == "throughput")
    states_by_reducer: Dict[str, List[Dict[str, Any]]] = {}
    for row in rows:
        if row["kind"] == "state":
            states_by_reducer.setdefault(row["reducer"], []).append(row)

    reducers = default_reducers()
    finals: Dict[str, Any] = {}
    fold_digests: Dict[str, Dict[str, str]] = {}
    for name, state_rows in sorted(states_by_reducer.items()):
        reducer = reducers[name]
        ordered = sorted(state_rows, key=lambda row: row["lo"])
        states = [row["state"] for row in ordered]
        forward = merge_states(reducer, states)
        backward = merge_states(reducer, list(reversed(states)))
        finals[name] = reducer.finalize(forward)
        fold_digests[name] = {
            "forward": stable_digest(reducer.finalize(forward)),
            "backward": stable_digest(reducer.finalize(backward)),
        }

    # The batch side: the deterministic dataset merge the figures use
    # (cache-shared with fig3 for the same campaign), analyzed by the
    # one-partition replay that core.availability now is.
    dataset = merged_scan(ctx, config.campaign)
    batch_report = analyze_availability(dataset)
    batch_digest = stable_digest(batch_report)
    stream_digest = fold_digests["availability"]["forward"]
    merge_commutes = all(d["forward"] == d["backward"]
                         for d in fold_digests.values())
    converged = stream_digest == batch_digest and merge_commutes

    availability = finals["availability"]
    response_stats = finals["response-stats"]
    events = sum(row["events"] for row in rows
                 if row["kind"] == "state"
                 and row["reducer"] == "availability")
    series = {
        "success_series": dict(availability.success_series),
        "events_by_partition": [
            (f"[{row['lo']}:{row['hi']})", row["events"])
            for row in sorted(states_by_reducer["availability"],
                              key=lambda row: row["lo"])],
    }
    return {
        "rows": rows,
        "series": series,
        "summary": {
            "events": events,
            "partitions": config.partitions,
            "converged": converged,
            "merge_commutes": merge_commutes,
            "batch_digest": batch_digest,
            "stream_digest": stream_digest,
            "events_per_s": throughput["events_per_s"],
            "replay_duration_s": throughput["duration_s"],
            "responders": availability.responder_count,
            "overall_failure_rate": availability.overall_failure_rate,
            "outage_fraction": availability.outage_fraction,
            "status_counts": response_stats["status_counts"],
            "latency_mean_ms": response_stats["latency_mean_ms"],
            "size_mean_bytes": response_stats["size_mean_bytes"],
        },
        "artifacts": {"dataset": dataset, "batch_report": batch_report,
                      "finals": finals},
    }
