"""Tumbling event-time windows with watermark-based closing.

The monitor's live view: events are assigned to fixed-width,
non-overlapping windows of **simulated** event time (``ts // width``),
each window folding through a reducer's ``init``/``step``.  A
*watermark* — the maximum event time observed so far — decides when a
window's answer is final: once the watermark passes a window's end
plus the allowed lateness, the window closes, its state is finalized,
and later events for it are counted as *late* rather than applied
(the classic tradeoff: bounded state and prompt answers in exchange
for an explicit late-drop counter).

There is no wall clock anywhere: ``repro monitor tail`` streams a log
through this class and windows close purely because event time
advances, so a replayed log produces bit-identical window results
every run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .events import MonitorEvent
from .reducers import Reducer


@dataclass
class ClosedWindow:
    """One finalized tumbling window."""

    start: int
    end: int
    events: int
    result: object


class WindowedAggregate:
    """Feed events in; collect closed windows and live counters out."""

    def __init__(self, reducer: Reducer, width: int,
                 allowed_lateness: int = 0) -> None:
        if width <= 0:
            raise ValueError("window width must be positive")
        if allowed_lateness < 0:
            raise ValueError("allowed lateness cannot be negative")
        self.reducer = reducer
        self.width = width
        self.allowed_lateness = allowed_lateness
        self.watermark: Optional[int] = None
        self.events = 0
        self.late_events = 0
        self.closed_windows = 0
        self._open: Dict[int, Dict[str, object]] = {}
        self._open_counts: Dict[int, int] = {}
        self._closed_below: Optional[int] = None

    def observe(self, event: MonitorEvent) -> List[ClosedWindow]:
        """Fold one event; returns windows the new watermark closed."""
        self.events += 1
        index = event.ts // self.width
        if self._closed_below is not None and index < self._closed_below:
            self.late_events += 1
        elif event.kind in self.reducer.kinds:
            state = self._open.get(index)
            if state is None:
                state = self.reducer.init()
                self._open[index] = state
                self._open_counts[index] = 0
            self._open[index] = self.reducer.step(state, event)
            self._open_counts[index] += 1
        elif index not in self._open:
            # Unconsumed kinds still open (and count toward) their
            # window so the stream's shape is visible in the output.
            self._open[index] = self.reducer.init()
            self._open_counts[index] = 0
        if self.watermark is None or event.ts > self.watermark:
            self.watermark = event.ts
        return self._close_ripe()

    def _close_ripe(self) -> List[ClosedWindow]:
        """Close every open window the watermark has passed."""
        if self.watermark is None:
            return []
        ripe = sorted(
            index for index in self._open
            if (index + 1) * self.width + self.allowed_lateness
            <= self.watermark)
        closed = [self._close(index) for index in ripe]
        if ripe:
            boundary = ripe[-1] + 1
            if self._closed_below is None or boundary > self._closed_below:
                self._closed_below = boundary
        return closed

    def _close(self, index: int) -> ClosedWindow:
        state = self._open.pop(index)
        count = self._open_counts.pop(index)
        self.closed_windows += 1
        return ClosedWindow(start=index * self.width,
                            end=(index + 1) * self.width,
                            events=count,
                            result=self.reducer.finalize(state))

    def flush(self) -> List[ClosedWindow]:
        """End of stream: close every remaining window, in time order."""
        return [self._close(index) for index in sorted(self._open)]

    def counters(self) -> Dict[str, object]:
        """The live-counter view a tail renders between closings."""
        return {
            "events": self.events,
            "late_events": self.late_events,
            "open_windows": len(self._open),
            "closed_windows": self.closed_windows,
            "watermark": self.watermark,
        }
