"""Event producers and the stream-vs-batch convergence harness.

Producers turn every existing batch artifact into the monitor's event
stream: scan datasets and shard rows become ``probe`` events, the
Alexa model becomes ``domain`` events, TLS handshake observations
become ``handshake`` events.  Each producer assigns ordinals
consistent with the artifact's own order, which is all the reducers
need (see :mod:`repro.monitor.reducers`).

The harness then proves the subsystem's central claim: partition a
log any way you like, reduce each partition independently, merge the
states in any order, and ``finalize`` emits *the same bytes* as the
batch pipeline.  :func:`convergence` checks one reducer over one
partitioning; :func:`fig3_convergence` is the acceptance check —
stream vs. :func:`repro.core.availability.analyze_availability` over
a full scan campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from .events import MonitorEvent
from .reducers import AvailabilityReducer, Reducer, default_reducers


# ---------------------------------------------------------------------------
# event producers
# ---------------------------------------------------------------------------

def probe_events(records: Sequence,
                 base: int = 0) -> Iterator[MonitorEvent]:
    """Scan records as ``probe`` events, ordinal = record index.

    The payload is the scan-file wire dict verbatim, so
    :func:`event_to_record` round-trips exactly.
    """
    from ..scanner.io import record_to_dict
    for index, record in enumerate(records, start=base):
        yield MonitorEvent(kind="probe", ts=record.timestamp,
                           seq=(index,), data=record_to_dict(record))


def dataset_to_events(dataset) -> Iterator[MonitorEvent]:
    """A whole :class:`~repro.scanner.ScanDataset` as its event log."""
    return probe_events(dataset.records)


def event_to_record(event: MonitorEvent):
    """The :class:`~repro.scanner.ProbeRecord` behind a probe event."""
    from ..scanner.io import record_from_dict
    if event.kind != "probe":
        raise ValueError(f"not a probe event: {event.kind}")
    return record_from_dict(event.data)


def rows_to_events(rows: Iterable[Dict[str, object]]
                   ) -> Iterator[MonitorEvent]:
    """Runtime scan-shard rows as probe events.

    Shard rows carry the global ``(ts, ti, vi)`` coordinates the
    deterministic merge sorts on — exactly an event ordinal: the
    dataset order *is* the sorted coordinate order, so shard-local
    ordinals agree with whole-log ordinals without any coordination
    between shards.
    """
    for row in rows:
        data = {key: value for key, value in row.items()
                if key not in ("ti", "vi")}
        yield MonitorEvent(kind="probe", ts=row["ts"],
                           seq=(row["ts"], row["ti"], row["vi"]),
                           data=data)


def domain_events(records: Sequence, ts: Optional[int] = None,
                  base: int = 0) -> Iterator[MonitorEvent]:
    """Alexa-model domain records as ``domain`` events."""
    if ts is None:
        from ..simnet.clock import ALEXA_SCAN_DATE
        ts = ALEXA_SCAN_DATE
    for index, record in enumerate(records, start=base):
        yield MonitorEvent(kind="domain", ts=ts, seq=(index,),
                           data=record.to_dict())


def handshake_events(observations: Sequence, ts: int,
                     base: int = 0) -> Iterator[MonitorEvent]:
    """TLS handshake observations as ``handshake`` events."""
    for index, observation in enumerate(observations, start=base):
        staple = observation.staple
        yield MonitorEvent(kind="handshake", ts=ts, seq=(index,), data={
            "hostname": observation.hostname,
            "software": observation.software,
            "stapled": observation.stapled,
            "must_staple": observation.must_staple,
            "staple_fresh": observation.staple_fresh,
            "handshake_delay_ms": round(
                observation.handshake_delay_ms, 3),
            "staple_produced_at": staple.produced_at if staple else None,
            "staple_next_update": staple.next_update if staple else None,
            "staple_size": len(staple.body) if staple else None,
        })


# ---------------------------------------------------------------------------
# replay + partitioning
# ---------------------------------------------------------------------------

def reduce_log(events: Iterable[MonitorEvent],
               reducers: Optional[Dict[str, Reducer]] = None
               ) -> Dict[str, Dict[str, object]]:
    """Single-partition replay through every reducer, one pass."""
    if reducers is None:
        reducers = default_reducers()
    states = {name: reducer.init() for name, reducer in reducers.items()}
    for event in events:
        for name, reducer in reducers.items():
            if event.kind in reducer.kinds:
                states[name] = reducer.step(states[name], event)
    return states


def partition_events(events: Iterable[MonitorEvent], partitions: int,
                     scheme: str = "round-robin"
                     ) -> List[List[MonitorEvent]]:
    """Split a log into *partitions* event lists.

    ``round-robin`` interleaves (the adversarial case for merge order);
    ``contiguous`` mirrors how the runtime's shards slice the stream.
    """
    if partitions < 1:
        raise ValueError("need at least one partition")
    events = list(events)
    if scheme == "round-robin":
        return [events[lane::partitions] for lane in range(partitions)]
    if scheme == "contiguous":
        from ..canon import split_ranges
        return [events[lo:hi]
                for lo, hi in split_ranges(len(events), partitions)]
    raise ValueError(f"unknown partition scheme: {scheme!r}")


def merge_states(reducer: Reducer,
                 states: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Fold partition states with ``merge`` (empty fold = ``init``)."""
    merged = reducer.init()
    for state in states:
        merged = reducer.merge(merged, state)
    return merged


@dataclass
class ConvergenceCheck:
    """One stream-vs-batch comparison, digest-level."""

    reducer: str
    partitions: int
    scheme: str
    events: int
    single_digest: str
    merged_digest: str

    @property
    def converged(self) -> bool:
        return self.single_digest == self.merged_digest


def convergence(events: Iterable[MonitorEvent], reducer: Reducer,
                partitions: int = 4,
                scheme: str = "round-robin") -> ConvergenceCheck:
    """Does a partitioned replay finalize to the single-partition bytes?

    Digests cover the *finalized* answers (the figures), computed via
    :func:`repro.canon.stable_digest` over canonical JSON — equal
    digests mean equal bytes in every downstream artifact.
    """
    from ..canon import stable_digest
    events = list(events)
    single = reducer.reduce(events)
    parts = [reducer.reduce(part)
             for part in partition_events(events, partitions, scheme)]
    merged = merge_states(reducer, parts)
    return ConvergenceCheck(
        reducer=reducer.name, partitions=partitions, scheme=scheme,
        events=len(events),
        single_digest=stable_digest(reducer.finalize(single)),
        merged_digest=stable_digest(reducer.finalize(merged)),
    )


@dataclass
class Fig3Convergence:
    """The acceptance check: stream vs. batch Figure-3 aggregates."""

    events: int
    partitions: int
    batch_digest: str
    stream_digest: str

    @property
    def converged(self) -> bool:
        return self.batch_digest == self.stream_digest


def fig3_convergence(dataset, partitions: int = 4) -> Fig3Convergence:
    """Replay a scan's event log; compare against the batch report."""
    from ..canon import stable_digest
    from ..core.availability import analyze_availability
    reducer = AvailabilityReducer()
    events = list(dataset_to_events(dataset))
    parts = [reducer.reduce(part) for part in
             partition_events(events, partitions, "contiguous")]
    stream_report = reducer.finalize(merge_states(reducer, parts))
    batch_report = analyze_availability(dataset)
    return Fig3Convergence(
        events=len(events), partitions=partitions,
        batch_digest=stable_digest(batch_report),
        stream_digest=stable_digest(stream_report),
    )
