"""The monitor's append-only event log: schema and wire format.

A :class:`MonitorEvent` is one typed observation — a scan probe, an
Alexa-style domain snapshot, a TLS handshake, or one request served by
the daemon — in the ``ssl.log`` idiom: every producer (simnet
scanners, the Alexa generator, :class:`~repro.serve.app.ServeApp`)
emits the *same* record shape, and every consumer (the reducers, the
windowed aggregates, the CLI) reads the same JSONL stream.

The wire format mirrors :mod:`repro.scanner.io`: a header line naming
the format and version, then one JSON object per event.  Events carry
three envelope fields plus a payload dict:

``kind``
    One of :data:`EVENT_KINDS`; selects which reducers consume it.
``ts``
    Simulated event time (POSIX seconds).  Never wall clock — the
    monitor observes the simulated world, so logs replay bit-for-bit.
``seq``
    An opaque *ordinal*: any tuple of ints that sorts consistently
    with the emitting log's append order.  Producers are free to use a
    running counter ``(i,)`` or structured coordinates like
    ``(ts, target, vantage)`` — reducers only ever compare ordinals,
    so any total order consistent with the log order converges to the
    same finalized bytes (see :mod:`repro.monitor.reducers`).
``data``
    The kind-specific payload (probe rows reuse the scan-file dict
    from :func:`repro.scanner.io.record_to_dict` verbatim).
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from typing import IO, Dict, Iterable, Iterator, List, Optional, Tuple

FORMAT = "repro-monitor-events"
FORMAT_VERSION = 1

#: Event kinds and the payload keys every instance must carry.
EVENT_KINDS: Dict[str, Tuple[str, ...]] = {
    # One OCSP probe from one vantage (the scan-record wire dict).
    "probe": ("vantage", "url", "ts", "outcome"),
    # One domain of the Alexa-style corpus snapshot.
    "domain": ("rank", "domain", "https", "has_ocsp", "stapling"),
    # One TLS handshake against a web-server profile.
    "handshake": ("hostname", "stapled", "must_staple"),
    # One request served by the daemon / in-process app.
    "access": ("host", "method", "status", "size", "source"),
    # One shard-attempt lifecycle transition in the distributed
    # runtime (claim/done on the worker side; dispatched/computed/
    # retried/quarantined on the coordinator side; connect/disconnect/
    # reconnect from socket-fleet workers, which carry an empty shard
    # label).  Telemetry about the runtime, never experiment content.
    "worker": ("worker", "state", "shard"),
}


@dataclass(frozen=True)
class MonitorEvent:
    """One typed, JSONL-serializable observation."""

    kind: str
    ts: int
    seq: Tuple[int, ...]
    data: Dict[str, object] = field(default_factory=dict)

    def validate(self) -> "MonitorEvent":
        """Raise ``ValueError`` unless the event matches its schema."""
        required = EVENT_KINDS.get(self.kind)
        if required is None:
            raise ValueError(f"unknown event kind: {self.kind!r}")
        missing = [key for key in required if key not in self.data]
        if missing:
            raise ValueError(
                f"{self.kind} event missing keys: {', '.join(missing)}")
        if not self.seq:
            raise ValueError("event seq must be a non-empty ordinal")
        return self

    def to_dict(self) -> Dict[str, object]:
        """Stable wire mapping (one JSONL line)."""
        return {"kind": self.kind, "ts": self.ts,
                "seq": list(self.seq), "data": dict(self.data)}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "MonitorEvent":
        """Rebuild (and validate) from :meth:`to_dict` output."""
        return cls(kind=payload["kind"], ts=payload["ts"],
                   seq=tuple(payload["seq"]),
                   data=dict(payload.get("data", {}))).validate()


class EventLogWriter:
    """Append-only JSONL writer; assigns running ``seq`` ordinals.

    The header is written on construction so a log is recognizable
    from its first line even when the producer dies mid-stream; each
    event line is flushed immediately so tails see it (the daemon's
    access log is consumed live by ``repro monitor``).
    """

    def __init__(self, stream: IO[str],
                 meta: Optional[Dict[str, object]] = None) -> None:
        self.stream = stream
        self.events = 0
        header = {"format": FORMAT, "version": FORMAT_VERSION}
        if meta:
            header["meta"] = dict(meta)
        stream.write(json.dumps(header, sort_keys=True) + "\n")
        stream.flush()

    def emit(self, event: MonitorEvent) -> MonitorEvent:
        """Validate and append one pre-built event."""
        event.validate()
        self.stream.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        self.stream.flush()
        self.events += 1
        return event

    def append(self, kind: str, ts: int,
               data: Dict[str, object]) -> MonitorEvent:
        """Build an event with the next running ordinal and emit it."""
        return self.emit(MonitorEvent(kind=kind, ts=ts,
                                      seq=(self.events,), data=data))


def write_events(stream: IO[str], events: Iterable[MonitorEvent],
                 meta: Optional[Dict[str, object]] = None) -> int:
    """Write a whole log; returns the event count."""
    writer = EventLogWriter(stream, meta=meta)
    for event in events:
        writer.emit(event)
    return writer.events


def read_header(stream: IO[str]) -> Dict[str, object]:
    """Consume and validate the header line."""
    header_line = stream.readline()
    if not header_line:
        raise ValueError("empty monitor event log")
    header = json.loads(header_line)
    if header.get("format") != FORMAT:
        raise ValueError("not a repro monitor event log")
    if header.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported event log version: {header.get('version')}")
    return header


def iter_events(stream: IO[str]) -> Iterator[MonitorEvent]:
    """Stream events after :func:`read_header` has been called."""
    for line in stream:
        line = line.strip()
        if line:
            yield MonitorEvent.from_dict(json.loads(line))


def read_events(stream: IO[str]) -> List[MonitorEvent]:
    """Read one whole log (header validated)."""
    read_header(stream)
    return list(iter_events(stream))


def dumps_events(events: Iterable[MonitorEvent],
                 meta: Optional[Dict[str, object]] = None) -> str:
    """String-returning convenience wrapper for :func:`write_events`."""
    buffer = io.StringIO()
    write_events(buffer, events, meta=meta)
    return buffer.getvalue()


def loads_events(text: str) -> List[MonitorEvent]:
    """String-accepting convenience wrapper for :func:`read_events`."""
    return read_events(io.StringIO(text))
