"""repro.monitor — the streaming passive monitor.

The batch pipeline (generate → scan → analyze) answers the paper's
questions once per campaign; this package answers them *continuously*,
the Zeek ``ssl.log`` way: every producer — simnet scans, TLS
handshakes, the Alexa snapshot, the serve daemon's access log — emits
the same typed :class:`MonitorEvent` records into an append-only JSONL
log, and a library of one-pass **mergeable reducers**
(``init``/``step``/``merge``/``finalize``) folds any partitioning of
that log into aggregates that are *byte-identical* to the batch
answers.  ``repro.core.availability`` / ``repro.core.adoption`` are
now the degenerate case: batch = replay the log in one partition.

:mod:`~repro.monitor.windows` adds tumbling event-time windows with
watermark-based closing for live counters; :mod:`~repro.monitor
.replay` holds the producers and the convergence harness; the
``monitor-convergence`` runtime experiment proves shard-level reducer
merges against the batch pipeline; ``repro monitor`` tails, replays,
and summarizes logs from the CLI.
"""

from .events import (
    EVENT_KINDS,
    EventLogWriter,
    MonitorEvent,
    dumps_events,
    iter_events,
    loads_events,
    read_events,
    read_header,
    write_events,
)
from .reducers import (
    AdoptionReducer,
    AvailabilityReducer,
    FreshnessReducer,
    Reducer,
    ResponseStatsReducer,
    TRANSPORT_FAILURES,
    default_reducers,
)
from .replay import (
    ConvergenceCheck,
    Fig3Convergence,
    convergence,
    dataset_to_events,
    domain_events,
    event_to_record,
    fig3_convergence,
    handshake_events,
    merge_states,
    partition_events,
    probe_events,
    reduce_log,
    rows_to_events,
)
from .windows import ClosedWindow, WindowedAggregate

__all__ = [
    "AdoptionReducer",
    "AvailabilityReducer",
    "ClosedWindow",
    "ConvergenceCheck",
    "EVENT_KINDS",
    "EventLogWriter",
    "Fig3Convergence",
    "FreshnessReducer",
    "MonitorEvent",
    "Reducer",
    "ResponseStatsReducer",
    "TRANSPORT_FAILURES",
    "WindowedAggregate",
    "convergence",
    "dataset_to_events",
    "default_reducers",
    "domain_events",
    "dumps_events",
    "event_to_record",
    "fig3_convergence",
    "handshake_events",
    "iter_events",
    "loads_events",
    "merge_states",
    "partition_events",
    "probe_events",
    "read_events",
    "read_header",
    "reduce_log",
    "rows_to_events",
    "write_events",
]
