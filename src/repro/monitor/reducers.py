"""One-pass, mergeable reducers over the monitor event stream.

Every reducer implements the same four-method contract::

    state = reducer.init()
    state = reducer.step(state, event)      # one event at a time
    state = reducer.merge(left, right)      # combine partition states
    answer = reducer.finalize(state)        # the batch-pipeline answer

with the algebraic guarantee the convergence harness (and the
property tests) assert: ``merge`` is **associative and commutative**
and ``step`` commutes with it, so *any* partitioning of an event log —
round-robin, contiguous, per-shard in the runtime — finalizes to the
same bytes as a single-partition replay.  The batch pipeline is the
degenerate case: :func:`repro.core.availability.analyze_availability`
and :func:`repro.core.adoption.figure2_adoption` are now literally
"replay the log in one partition".

Rules that make the guarantee hold:

* **States are JSON trees** (string keys, ints, ``None``, lists) so
  they travel through the runtime's shard cache unchanged.
* **No floats are accumulated.**  Counts, sums of ints, ORs, mins and
  maxes merge exactly; every percentage/mean is computed once, in
  ``finalize``, with the *same expression* the batch code used — which
  is what makes the convergence byte-identical rather than merely
  close.  (Latency sums are held in integer microseconds for this
  reason.)
* **Order is reconstructed, not assumed.**  Batch answers expose
  first-seen insertion order (responder URL lists, vantage order);
  reducers track the *minimum event ordinal* per key — an associative,
  commutative statistic — and re-derive that order in ``finalize``.

``merge`` never mutates its arguments; partition states can be folded
in any tree shape.  All public callables in this module carry purity
contracts in ``repro analyze --strict`` (the ``reducer`` convention
group).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from .events import MonitorEvent

#: Probe outcomes that count as transport failures — must mirror
#: :attr:`repro.scanner.results.ProbeRecord.transport_ok` (asserted by
#: a test; spelled out here so the hot step path needs no imports).
TRANSPORT_FAILURES = frozenset(
    {"DNS_FAILURE", "TCP_FAILURE", "TLS_FAILURE", "HTTP_ERROR"})

#: The paper bins Alexa ranks into groups of 10,000 (Figures 2/11).
DEFAULT_RANK_BIN = 10_000


class Reducer:
    """The ``init/step/merge/finalize`` contract (abstract base)."""

    #: Registry name (CLI ``--reducer`` values, experiment row labels).
    name = "reducer"
    #: Event kinds this reducer consumes; ``step`` ignores the rest.
    kinds: Tuple[str, ...] = ()

    def init(self) -> Dict[str, object]:
        """A fresh empty state (the ``merge`` identity)."""
        raise NotImplementedError

    def step(self, state: Dict[str, object],
             event: MonitorEvent) -> Dict[str, object]:
        """Fold one event into *state* (returned; may mutate in place)."""
        raise NotImplementedError

    def merge(self, left: Dict[str, object],
              right: Dict[str, object]) -> Dict[str, object]:
        """Combine two partition states into a new one.

        Must be associative and commutative and must not mutate either
        argument — partition trees reuse intermediate states.
        """
        raise NotImplementedError

    def finalize(self, state: Dict[str, object]):
        """The batch-pipeline answer for the events folded so far."""
        raise NotImplementedError

    def reduce(self, events: Iterable[MonitorEvent]) -> Dict[str, object]:
        """Single-partition replay: ``init`` + ``step`` over *events*."""
        state = self.init()
        for event in events:
            if event.kind in self.kinds:
                state = self.step(state, event)
        return state


def default_reducers() -> Dict[str, Reducer]:
    """The monitor's stock reducer set, keyed by registry name."""
    reducers = (AvailabilityReducer(), AdoptionReducer(),
                FreshnessReducer(), ResponseStatsReducer(),
                WorkerLifecycleReducer())
    return {reducer.name: reducer for reducer in reducers}


# ---------------------------------------------------------------------------
# shared state helpers (all pure, all JSON-tree in / JSON-tree out)
# ---------------------------------------------------------------------------

def _min_ordinal(firsts: Dict[str, List[int]], key: str,
                 seq: List[int]) -> None:
    """Track the smallest event ordinal seen for *key* (in place)."""
    known = firsts.get(key)
    if known is None or seq < known:
        firsts[key] = seq


def _merge_counts(left: Dict[str, int],
                  right: Dict[str, int]) -> Dict[str, int]:
    """Key-wise integer sum, into a fresh dict."""
    merged = dict(left)
    for key, count in right.items():
        merged[key] = merged.get(key, 0) + count
    return merged


def _merge_firsts(left: Dict[str, List[int]],
                  right: Dict[str, List[int]]) -> Dict[str, List[int]]:
    """Key-wise minimum ordinal, into a fresh dict."""
    merged = dict(left)
    for key, seq in right.items():
        known = merged.get(key)
        if known is None or seq < known:
            merged[key] = seq
    return merged


def _merge_moments(left: Dict[str, object],
                   right: Dict[str, object]) -> Dict[str, object]:
    """Merge ``{count, sum, min, max}`` accumulators exactly."""
    def _pick(op, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return op(a, b)
    return {
        "count": left["count"] + right["count"],
        "sum": left["sum"] + right["sum"],
        "min": _pick(min, left["min"], right["min"]),
        "max": _pick(max, left["max"], right["max"]),
    }


def _step_moments(moments: Dict[str, object], value) -> None:
    """Fold one value into a ``{count, sum, min, max}`` accumulator."""
    moments["count"] += 1
    moments["sum"] += value
    moments["min"] = value if moments["min"] is None \
        else min(moments["min"], value)
    moments["max"] = value if moments["max"] is None \
        else max(moments["max"], value)


def _sorted_int_items(mapping: Dict[str, object]) -> List[Tuple[int, object]]:
    """Items of a str(int)-keyed dict, sorted by the integer key."""
    return sorted((int(key), value) for key, value in mapping.items())


# ---------------------------------------------------------------------------
# availability (Figure 3, paper §5.2)
# ---------------------------------------------------------------------------

class AvailabilityReducer(Reducer):
    """Streaming form of :func:`repro.core.availability
    .analyze_availability` — finalizes to the identical
    :class:`~repro.core.availability.AvailabilityReport` bytes.

    The batch algorithm's insertion orders (vantage order of the
    success series, responder URL order) are reconstructed from
    min-ordinal statistics; the per-tick success fractions are held as
    ``[ok_count, total]`` integer pairs and divided with the batch
    expression ``100.0 * ok / total`` only in ``finalize``.
    """

    name = "availability"
    kinds = ("probe",)

    def init(self) -> Dict[str, object]:
        return {
            # vantage -> str(ts) -> [ok_count, total]
            "series": {},
            # url -> vantage -> str(ts) -> 0|1 (OR over the tick)
            "responder": {},
            # first-seen event ordinals (insertion-order witnesses)
            "url_first": {},
            "vantage_first": {},
        }

    def step(self, state: Dict[str, object],
             event: MonitorEvent) -> Dict[str, object]:
        data = event.data
        ok = int(data["outcome"] not in TRANSPORT_FAILURES)
        vantage, url = data["vantage"], data["url"]
        ts_key = str(event.ts)
        bucket = state["series"].setdefault(vantage, {}) \
                                .setdefault(ts_key, [0, 0])
        bucket[0] += ok
        bucket[1] += 1
        cells = state["responder"].setdefault(url, {}) \
                                  .setdefault(vantage, {})
        cells[ts_key] = cells.get(ts_key, 0) | ok
        seq = list(event.seq)
        _min_ordinal(state["url_first"], url, seq)
        _min_ordinal(state["vantage_first"], vantage, seq)
        return state

    def merge(self, left: Dict[str, object],
              right: Dict[str, object]) -> Dict[str, object]:
        series: Dict[str, Dict[str, List[int]]] = {}
        for state in (left, right):
            for vantage, buckets in state["series"].items():
                out = series.setdefault(vantage, {})
                for ts_key, (ok, total) in buckets.items():
                    cell = out.setdefault(ts_key, [0, 0])
                    cell[0] += ok
                    cell[1] += total
        responder: Dict[str, Dict[str, Dict[str, int]]] = {}
        for state in (left, right):
            for url, by_vantage in state["responder"].items():
                url_out = responder.setdefault(url, {})
                for vantage, cells in by_vantage.items():
                    out = url_out.setdefault(vantage, {})
                    for ts_key, ok in cells.items():
                        out[ts_key] = out.get(ts_key, 0) | ok
        return {
            "series": series,
            "responder": responder,
            "url_first": _merge_firsts(left["url_first"],
                                       right["url_first"]),
            "vantage_first": _merge_firsts(left["vantage_first"],
                                           right["vantage_first"]),
        }

    def finalize(self, state: Dict[str, object]):
        # Lazy: core.availability imports this module at load time
        # (batch = one-partition replay), so the report type resolves
        # here, at call time.
        from ..core.availability import (AvailabilityReport,
                                         _had_transient_outage)
        from ..core.stats import mean

        vantages = [vantage for vantage, _ in
                    sorted(state["vantage_first"].items(),
                           key=lambda item: item[1])]
        urls = [url for url, _ in sorted(state["url_first"].items(),
                                         key=lambda item: item[1])]
        success_series = {
            vantage: [(ts, 100.0 * ok / total) for ts, (ok, total)
                      in _sorted_int_items(state["series"][vantage])]
            for vantage in vantages
        }
        failure_rate = {
            vantage: 100.0 - mean([pct for _, pct in points])
            for vantage, points in success_series.items()
        }
        per_responder: Dict[Tuple[str, str], List[bool]] = {}
        for url, by_vantage in state["responder"].items():
            for vantage, cells in by_vantage.items():
                per_responder[(url, vantage)] = [
                    bool(ok) for _, ok in _sorted_int_items(cells)]

        never_anywhere = []
        never_somewhere = []
        always_fail_by_vantage = {vantage: 0 for vantage in vantages}
        with_outage: List[str] = []
        for url in urls:
            ever_by_vantage = {}
            for vantage in vantages:
                oks = per_responder.get((url, vantage), [])
                ever_by_vantage[vantage] = any(oks)
                if oks and not any(oks):
                    always_fail_by_vantage[vantage] += 1
            if not any(ever_by_vantage.values()):
                never_anywhere.append(url)
            elif not all(ever_by_vantage.values()):
                never_somewhere.append(url)
            if _had_transient_outage(url, vantages, per_responder):
                with_outage.append(url)

        return AvailabilityReport(
            success_series=success_series,
            failure_rate=failure_rate,
            never_successful_anywhere=never_anywhere,
            never_successful_somewhere=never_somewhere,
            always_fail_by_vantage=always_fail_by_vantage,
            responders_with_outage=with_outage,
            responder_count=len(urls),
        )


# ---------------------------------------------------------------------------
# adoption (Figures 2 and 11, paper §4)
# ---------------------------------------------------------------------------

class AdoptionReducer(Reducer):
    """Streaming form of the Figure-2/11 rank-binned adoption curves.

    Bins hold ``[true_count, total]`` integer pairs per rank bucket;
    ``finalize`` divides with the exact :func:`repro.core.stats
    .binned_fraction` expression, so the curves match the batch
    pipeline byte-for-byte.
    """

    name = "adoption"
    kinds = ("domain",)

    #: Curve names, matching the batch figures.
    HTTPS = "Domains with certificate"
    OCSP = "Certificates with OCSP responder"
    STAPLING = "OCSP domains that support OCSP Stapling"

    def __init__(self, bin_width: int = DEFAULT_RANK_BIN) -> None:
        self.bin_width = bin_width

    def init(self) -> Dict[str, object]:
        return {"bins": {self.HTTPS: {}, self.OCSP: {},
                         self.STAPLING: {}}}

    def _tally(self, bins: Dict[str, List[int]], rank: int,
               flag: bool) -> None:
        key = str((rank // self.bin_width) * self.bin_width)
        bucket = bins.setdefault(key, [0, 0])
        bucket[0] += bool(flag)
        bucket[1] += 1

    def step(self, state: Dict[str, object],
             event: MonitorEvent) -> Dict[str, object]:
        data = event.data
        rank = data["rank"]
        bins = state["bins"]
        self._tally(bins[self.HTTPS], rank, data["https"])
        if data["https"]:
            self._tally(bins[self.OCSP], rank, data["has_ocsp"])
        if data["has_ocsp"]:
            self._tally(bins[self.STAPLING], rank, data["stapling"])
        return state

    def merge(self, left: Dict[str, object],
              right: Dict[str, object]) -> Dict[str, object]:
        bins: Dict[str, Dict[str, List[int]]] = {}
        for state in (left, right):
            for curve, buckets in state["bins"].items():
                out = bins.setdefault(curve, {})
                for key, (true_count, total) in buckets.items():
                    bucket = out.setdefault(key, [0, 0])
                    bucket[0] += true_count
                    bucket[1] += total
        return {"bins": bins}

    def finalize(self, state: Dict[str, object]
                 ) -> Dict[str, List[Tuple[int, float]]]:
        from ..core.stats import fraction_points
        return {
            curve: fraction_points(
                {start: tuple(counts) for start, counts
                 in _sorted_int_items(buckets)})
            for curve, buckets in state["bins"].items()
        }


# ---------------------------------------------------------------------------
# staple freshness (paper §6 stapling behaviour)
# ---------------------------------------------------------------------------

class FreshnessReducer(Reducer):
    """Staple and response freshness over handshake + probe events.

    Handshake events feed the stapling census (how many servers
    staple, how many staples are fresh, Must-Staple incidence,
    per-software behaviour); probe events feed the validity-window
    view (was the response inside ``[thisUpdate, nextUpdate)`` at
    observation time, and with how much margin).
    """

    name = "freshness"
    kinds = ("handshake", "probe")

    def init(self) -> Dict[str, object]:
        return {
            "handshakes": 0, "stapled": 0, "fresh_staples": 0,
            "must_staple": 0,
            # software -> [stapled_count, total]
            "by_software": {},
            "probes": 0, "windowed": 0, "fresh_probes": 0,
            "blank_next_update": 0,
            # seconds of validity remaining at observation time
            "margin": {"count": 0, "sum": 0, "min": None, "max": None},
        }

    def step(self, state: Dict[str, object],
             event: MonitorEvent) -> Dict[str, object]:
        data = event.data
        if event.kind == "handshake":
            state["handshakes"] += 1
            stapled = bool(data["stapled"])
            state["stapled"] += stapled
            state["fresh_staples"] += bool(data.get("staple_fresh"))
            state["must_staple"] += bool(data["must_staple"])
            software = data.get("software") or "unknown"
            bucket = state["by_software"].setdefault(software, [0, 0])
            bucket[0] += stapled
            bucket[1] += 1
            return state
        state["probes"] += 1
        this_update = data.get("this_update")
        next_update = data.get("next_update")
        if this_update is None:
            return state
        if next_update is None:
            state["blank_next_update"] += 1
            return state
        state["windowed"] += 1
        if this_update <= event.ts < next_update:
            state["fresh_probes"] += 1
        _step_moments(state["margin"], next_update - event.ts)
        return state

    def merge(self, left: Dict[str, object],
              right: Dict[str, object]) -> Dict[str, object]:
        merged = {
            key: left[key] + right[key]
            for key in ("handshakes", "stapled", "fresh_staples",
                        "must_staple", "probes", "windowed",
                        "fresh_probes", "blank_next_update")
        }
        by_software: Dict[str, List[int]] = {}
        for state in (left, right):
            for software, (stapled, total) in state["by_software"].items():
                bucket = by_software.setdefault(software, [0, 0])
                bucket[0] += stapled
                bucket[1] += total
        merged["by_software"] = by_software
        merged["margin"] = _merge_moments(left["margin"], right["margin"])
        return merged

    def finalize(self, state: Dict[str, object]) -> Dict[str, object]:
        def _rate(part: int, whole: int) -> float:
            return 100.0 * part / whole if whole else 0.0
        margin = state["margin"]
        return {
            "handshakes": state["handshakes"],
            "stapling_pct": _rate(state["stapled"], state["handshakes"]),
            "fresh_staple_pct": _rate(state["fresh_staples"],
                                      state["stapled"]),
            "must_staple_pct": _rate(state["must_staple"],
                                     state["handshakes"]),
            "stapling_by_software": {
                software: _rate(stapled, total)
                for software, (stapled, total)
                in sorted(state["by_software"].items())
            },
            "probes": state["probes"],
            "windowed": state["windowed"],
            "fresh_probe_pct": _rate(state["fresh_probes"],
                                     state["windowed"]),
            "blank_next_update": state["blank_next_update"],
            "margin_mean_s": (margin["sum"] / margin["count"]
                              if margin["count"] else 0.0),
            "margin_min_s": margin["min"],
            "margin_max_s": margin["max"],
        }


# ---------------------------------------------------------------------------
# response size / latency / status stats (probes + daemon access log)
# ---------------------------------------------------------------------------

class ResponseStatsReducer(Reducer):
    """Size, latency, status and outcome statistics.

    Consumes both probe events (scanner side: outcomes, elapsed time,
    response sizes) and access events (serving side: statuses, body
    bytes, cache/signed provenance).  Latency is accumulated in
    **integer microseconds** — scan records round ``elapsed_ms`` to
    three decimals, so the conversion is exact and the sum merges
    associatively; the mean goes back to milliseconds in ``finalize``.
    """

    name = "response-stats"
    kinds = ("probe", "access")

    def init(self) -> Dict[str, object]:
        return {
            "events": 0,
            "by_kind": {},
            # HTTP statuses, probes and access rows alike
            "status": {},
            # probe outcome counts + first-seen ordinals of failures
            "outcomes": {},
            "failure_first": {},
            "size": {"count": 0, "sum": 0, "min": None, "max": None},
            "latency_us": {"count": 0, "sum": 0, "min": None,
                           "max": None},
            # access-side provenance and per-host traffic
            "sources": {},
            "hosts": {},
        }

    def step(self, state: Dict[str, object],
             event: MonitorEvent) -> Dict[str, object]:
        data = event.data
        state["events"] += 1
        state["by_kind"][event.kind] = \
            state["by_kind"].get(event.kind, 0) + 1
        if event.kind == "probe":
            status = data.get("http_status")
            outcome = data["outcome"]
            state["outcomes"][outcome] = \
                state["outcomes"].get(outcome, 0) + 1
            if outcome in TRANSPORT_FAILURES:
                _min_ordinal(state["failure_first"], outcome,
                             list(event.seq))
            size = data.get("size")
            elapsed_ms = data.get("elapsed_ms")
            if elapsed_ms is not None:
                _step_moments(state["latency_us"],
                              int(round(elapsed_ms * 1000)))
        else:
            status = data["status"]
            size = data["size"]
            state["sources"][data["source"]] = \
                state["sources"].get(data["source"], 0) + 1
            state["hosts"][data["host"]] = \
                state["hosts"].get(data["host"], 0) + 1
        if status is not None:
            state["status"][str(status)] = \
                state["status"].get(str(status), 0) + 1
        if size is not None:
            _step_moments(state["size"], size)
        return state

    def merge(self, left: Dict[str, object],
              right: Dict[str, object]) -> Dict[str, object]:
        return {
            "events": left["events"] + right["events"],
            "by_kind": _merge_counts(left["by_kind"], right["by_kind"]),
            "status": _merge_counts(left["status"], right["status"]),
            "outcomes": _merge_counts(left["outcomes"],
                                      right["outcomes"]),
            "failure_first": _merge_firsts(left["failure_first"],
                                           right["failure_first"]),
            "size": _merge_moments(left["size"], right["size"]),
            "latency_us": _merge_moments(left["latency_us"],
                                         right["latency_us"]),
            "sources": _merge_counts(left["sources"], right["sources"]),
            "hosts": _merge_counts(left["hosts"], right["hosts"]),
        }

    def finalize(self, state: Dict[str, object]) -> Dict[str, object]:
        size, latency = state["size"], state["latency_us"]
        failures = {
            outcome: state["outcomes"][outcome]
            for outcome, _ in sorted(state["failure_first"].items(),
                                     key=lambda item: item[1])
        }
        return {
            "events": state["events"],
            "by_kind": dict(sorted(state["by_kind"].items())),
            "status_counts": dict(sorted(state["status"].items())),
            "failures_by_kind": failures,
            "size_mean_bytes": (size["sum"] / size["count"]
                                if size["count"] else 0.0),
            "size_min_bytes": size["min"],
            "size_max_bytes": size["max"],
            "latency_mean_ms": (latency["sum"] / latency["count"] / 1000.0
                                if latency["count"] else 0.0),
            "latency_min_ms": (latency["min"] / 1000.0
                               if latency["min"] is not None else None),
            "latency_max_ms": (latency["max"] / 1000.0
                               if latency["max"] is not None else None),
            "sources": dict(sorted(state["sources"].items())),
            "hosts": len(state["hosts"]),
            "total_bytes": size["sum"],
        }


# ---------------------------------------------------------------------------
# worker lifecycle (distributed-runtime telemetry)
# ---------------------------------------------------------------------------

class WorkerLifecycleReducer(Reducer):
    """Shard-attempt lifecycle census over ``worker`` events.

    Counts transitions per state (``claim``/``done`` worker-side;
    ``dispatched``/``computed``/``retried``/``quarantined``
    coordinator-side; ``connect``/``disconnect``/``reconnect`` from
    socket-fleet workers) and per worker id, and tracks how many
    distinct shards each worker touched.  Connection events carry no
    shard (an empty label) and are deliberately excluded from the
    shard census — a flapping link must not inflate a worker's
    apparent workload.  Worker order in ``finalize`` is first-seen
    (min event ordinal), so a merged multi-log census lists workers in
    the order they first appeared anywhere in the fleet — the same
    order a single concatenated replay would produce.
    """

    name = "worker-lifecycle"
    kinds = ("worker",)

    def init(self) -> Dict[str, object]:
        return {
            "events": 0,
            # lifecycle state -> count
            "states": {},
            # worker id -> state -> count
            "by_worker": {},
            # worker id -> shard label -> 1 (set as a JSON tree)
            "shards": {},
            # first-seen event ordinals per worker id
            "worker_first": {},
        }

    def step(self, state: Dict[str, object],
             event: MonitorEvent) -> Dict[str, object]:
        data = event.data
        worker = str(data["worker"]) or "unknown"
        lifecycle = str(data["state"])
        state["events"] += 1
        state["states"][lifecycle] = \
            state["states"].get(lifecycle, 0) + 1
        per_worker = state["by_worker"].setdefault(worker, {})
        per_worker[lifecycle] = per_worker.get(lifecycle, 0) + 1
        shard = str(data["shard"])
        if shard:
            state["shards"].setdefault(worker, {})[shard] = 1
        _min_ordinal(state["worker_first"], worker, list(event.seq))
        return state

    def merge(self, left: Dict[str, object],
              right: Dict[str, object]) -> Dict[str, object]:
        by_worker: Dict[str, Dict[str, int]] = {}
        for state in (left, right):
            for worker, counts in state["by_worker"].items():
                out = by_worker.setdefault(worker, {})
                for lifecycle, count in counts.items():
                    out[lifecycle] = out.get(lifecycle, 0) + count
        shards: Dict[str, Dict[str, int]] = {}
        for state in (left, right):
            for worker, seen in state["shards"].items():
                out = shards.setdefault(worker, {})
                for label in seen:
                    out[label] = 1
        return {
            "events": left["events"] + right["events"],
            "states": _merge_counts(left["states"], right["states"]),
            "by_worker": by_worker,
            "shards": shards,
            "worker_first": _merge_firsts(left["worker_first"],
                                          right["worker_first"]),
        }

    def finalize(self, state: Dict[str, object]) -> Dict[str, object]:
        workers = [worker for worker, _ in
                   sorted(state["worker_first"].items(),
                          key=lambda item: item[1])]
        return {
            "events": state["events"],
            "states": dict(sorted(state["states"].items())),
            "workers": {
                worker: {
                    "states": dict(sorted(
                        state["by_worker"][worker].items())),
                    "shards": len(state["shards"].get(worker, {})),
                }
                for worker in workers
            },
            "worker_count": len(workers),
            # Fleet-connectivity headline (socket transports): how
            # many times any worker had to redial mid-campaign.
            "reconnects": state["states"].get("reconnect", 0),
        }
