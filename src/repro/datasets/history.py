"""Historical adoption snapshots, May 2016 → September 2018 (Figure 12).

The paper fetched monthly Censys TLS-handshake scans of the Alexa
Top-1M back to May 21, 2016 and plotted (1) HTTPS domains supporting
OCSP and (2) those also supporting OCSP Stapling.  Both grow steadily;
stapling jumps in June 2017 when Cloudflare enabled stapling across its
"cruise-liner" certificates — "the number of domains that support OCSP
Stapling and serve certificates containing one of Cloudflare's domains
is 11,675 on May 18, 2017 but increases to 78,907 by June 15, 2017."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..simnet.clock import at

#: Cloudflare stapling-enabled domain counts around the June-2017 jump.
CLOUDFLARE_BEFORE = 11_675
CLOUDFLARE_AFTER = 78_907
CLOUDFLARE_JUMP_MONTH = (2017, 6)

#: First and last snapshot months.
HISTORY_START = (2016, 5)
HISTORY_END = (2018, 9)


@dataclass(frozen=True)
class AdoptionSnapshot:
    """One monthly data point of Figure 12."""

    year: int
    month: int
    #: Percent of HTTPS Alexa domains whose certificates carry OCSP.
    ocsp_pct: float
    #: Percent of HTTPS Alexa domains observed stapling.
    stapling_pct: float
    #: Cloudflare cruise-liner domains observed stapling.
    cloudflare_stapling_domains: int

    @property
    def timestamp(self) -> int:
        """POSIX time of the snapshot (21st of the month, like the
        paper's first fetch on May 21, 2016)."""
        return at(self.year, self.month, 21)

    @property
    def label(self) -> str:
        """``YYYY-MM`` label used on the figure's x axis."""
        return f"{self.year:04d}-{self.month:02d}"


def _months() -> List[tuple]:
    year, month = HISTORY_START
    months = []
    while (year, month) <= HISTORY_END:
        months.append((year, month))
        month += 1
        if month > 12:
            month = 1
            year += 1
    return months


def adoption_history() -> List[AdoptionSnapshot]:
    """The full monthly series for Figure 12.

    OCSP adoption climbs gently from ~87% to ~93%; stapling from ~22%
    to ~35% with the Cloudflare step in June 2017.
    """
    months = _months()
    total = len(months) - 1
    snapshots: List[AdoptionSnapshot] = []
    cloudflare = CLOUDFLARE_BEFORE * 0.45
    for index, (year, month) in enumerate(months):
        progress = index / total
        ocsp_pct = 87.0 + 6.0 * progress
        stapling_pct = 22.0 + 9.0 * progress
        if (year, month) < CLOUDFLARE_JUMP_MONTH:
            # Cloudflare's stapled-domain count grows slowly pre-jump.
            cloudflare = CLOUDFLARE_BEFORE * (0.45 + 0.55 * min(1.0, progress / 0.54))
        elif (year, month) == CLOUDFLARE_JUMP_MONTH:
            cloudflare = CLOUDFLARE_AFTER
        else:
            cloudflare = CLOUDFLARE_AFTER * (1.0 + 0.3 * (progress - 0.54))
        if (year, month) >= CLOUDFLARE_JUMP_MONTH:
            # The jump adds (78,907-11,675)/750k HTTPS domains ≈ +2.4 points
            # to the stapling series, then persists.
            stapling_pct += 2.4
        snapshots.append(AdoptionSnapshot(
            year=year,
            month=month,
            ocsp_pct=round(ocsp_pct, 2),
            stapling_pct=round(stapling_pct, 2),
            cloudflare_stapling_domains=int(cloudflare),
        ))
    return snapshots


def snapshot_for(year: int, month: int) -> AdoptionSnapshot:
    """Look up one month's snapshot."""
    for snapshot in adoption_history():
        if (snapshot.year, snapshot.month) == (year, month):
            return snapshot
    raise KeyError(f"no snapshot for {year}-{month:02d}")
