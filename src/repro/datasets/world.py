"""The measurement world: the simulated responder population.

This module assembles everything Section 5 of the paper measured into
one deterministic simulation: a population of OCSP responders (scaled
down from the paper's 536) with the measured mixture of behaviours,
the named outage events, the persistent per-vantage failures, and the
certificates served by each responder.

Every quantity is tied to a paper observation; see the group
definitions in :data:`EVENT_GROUPS` and the attribute quotas in
:class:`WorldConfig`.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ca import (
    CertificateAuthority,
    MalformedWindow,
    OCSPResponder,
    ResponderProfile,
)
from ..crypto import KeyPool
from ..ocsp import CertID
from ..simnet import (
    DAY,
    HOUR,
    MEASUREMENT_END,
    MEASUREMENT_START,
    FailureKind,
    Network,
    Origin,
    OutageWindow,
    at,
    ocsp_service,
)
from ..simnet.vantage import SERVICE_REGIONS, VANTAGE_POINTS
from ..x509 import Certificate

#: Paper population sizes (for scaling).
PAPER_RESPONDERS = 536
PAPER_CERTIFICATES = 14_634


@dataclass
class WorldConfig:
    """Scale and mixture parameters for the measurement world."""

    n_responders: int = 134
    certs_per_responder: int = 2
    seed: int = 7
    start: int = MEASUREMENT_START
    end: int = MEASUREMENT_END

    # Attribute quotas — fractions of responders (paper Section 5.4).
    zero_margin_fraction: float = 0.172       # Fig 9: no thisUpdate margin
    future_this_update_fraction: float = 0.03  # Fig 9: future thisUpdate
    blank_next_update_fraction: float = 0.091  # Fig 8: blank nextUpdate
    long_validity_fraction: float = 0.02       # Fig 8: > 1 month
    serial20_fraction: float = 0.033           # Fig 7: 20 serials always
    serial_few_fraction: float = 0.015         # Fig 7: 2-5 serials
    multi_cert_fraction: float = 0.145         # Fig 6: >1 certificate
    pregenerated_fraction: float = 0.517       # §5.4: not on demand
    delegated_fraction: float = 0.60           # responses carrying 1 cert
    malformed_fraction: float = 0.016          # Fig 5: persistent garbage

    #: Per-vantage background transient failure probability (tuned so
    #: per-vantage success averages land near Figure 3: Virginia best
    #: at ~2.2% failures, São Paulo worst at ~5.7%).
    noise_rates: Dict[str, float] = field(default_factory=lambda: {
        "Oregon": 0.010,
        "Virginia": 0.006,
        "Sao-Paulo": 0.024,
        "Paris": 0.009,
        "Sydney": 0.013,
        "Seoul": 0.012,
    })

    def scale(self, paper_count: int) -> int:
        """Scale an absolute paper count to this world's population."""
        return max(1, round(paper_count * self.n_responders / PAPER_RESPONDERS))

    @property
    def scale_factor(self) -> float:
        """Multiplier mapping world counts back to paper scale."""
        return PAPER_RESPONDERS / self.n_responders

    def to_dict(self) -> Dict[str, object]:
        """Stable field mapping (cache keys, shard specs); noise rates
        serialize key-sorted so digests never depend on dict order."""
        return {
            "n_responders": self.n_responders,
            "certs_per_responder": self.certs_per_responder,
            "seed": self.seed,
            "start": self.start,
            "end": self.end,
            "zero_margin_fraction": self.zero_margin_fraction,
            "future_this_update_fraction": self.future_this_update_fraction,
            "blank_next_update_fraction": self.blank_next_update_fraction,
            "long_validity_fraction": self.long_validity_fraction,
            "serial20_fraction": self.serial20_fraction,
            "serial_few_fraction": self.serial_few_fraction,
            "multi_cert_fraction": self.multi_cert_fraction,
            "pregenerated_fraction": self.pregenerated_fraction,
            "delegated_fraction": self.delegated_fraction,
            "malformed_fraction": self.malformed_fraction,
            "noise_rates": {k: self.noise_rates[k]
                            for k in sorted(self.noise_rates)},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WorldConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        payload = dict(data)
        payload["noise_rates"] = dict(payload.get("noise_rates", {}))
        return cls(**payload)

    def config_digest(self) -> str:
        """Content address of this config."""
        from ..canon import stable_digest
        return stable_digest(self)


@dataclass
class EventGroup:
    """A named family of responders sharing infrastructure and fate."""

    name: str
    paper_count: int
    #: (start, duration_seconds, vantage subset or None) outages.
    outages: List[Tuple[int, int, Optional[Set[str]]]] = field(default_factory=list)
    #: Malformed-body windows applied to every member.
    malformed_windows: List[MalformedWindow] = field(default_factory=list)
    #: Profile template for members (None = drawn like everyone else).
    profile_overrides: Dict[str, object] = field(default_factory=dict)
    #: Persistent binding faults: {"dns": {...vantages}, "http_404": {...}}.
    persistent: Dict[str, Set[str]] = field(default_factory=dict)
    #: When persistent faults get fixed (digitalcertvalidation was
    #: repaired on Aug 31, 23:00).
    repaired_at: Optional[int] = None
    #: Alexa share: fraction of Alexa OCSP domains using this family.
    alexa_share: float = 0.0


def default_event_groups() -> List[EventGroup]:
    """Every named event the paper reports, with its time and scope."""
    return [
        # "all of our OCSP requests made to ocsp.comodoca.com failed at
        # 7pm, April 25 for two hours ... observed only at the clients
        # in Oregon, Sydney, and Seoul. 14 additional responders ...
        # CNAME ... or resolved to the same IP" — 15 responders total,
        # and via Figure 4 the event hit ~163K of 606K Alexa domains.
        EventGroup(
            name="comodo",
            paper_count=15,
            outages=[(at(2018, 4, 25, 19), 2 * HOUR,
                      {"Oregon", "Sydney", "Seoul"})],
            alexa_share=0.27,
        ),
        # "9 servers managed by Digicert were down at 9am, August 27
        # for 5 hours, which was only observed at the client in Seoul"
        # — impacting ~77K Alexa domains (Figure 4).
        EventGroup(
            name="digicert",
            paper_count=9,
            outages=[(at(2018, 8, 27, 9), 5 * HOUR, {"Seoul"})],
            alexa_share=0.13,
        ),
        # "five OCSP URLs are subdomains of *.digitalcertvalidation.com,
        # all of which return HTTP 404 errors to our measurement client
        # located in São Paulo" (wellsfargo.com's responder among them);
        # "fixed at 11pm, August 31".  ~318 Alexa domains (0.05%).
        EventGroup(
            name="digitalcertvalidation",
            paper_count=5,
            persistent={"http_404": {"Sao-Paulo"}},
            repaired_at=at(2018, 8, 31, 23),
            alexa_share=0.0005,
        ),
        # "all of our OCSP requests from the clients in Sydney to 16
        # OCSP servers managed by Certum failed at 5pm, August 9 for
        # two hours."
        EventGroup(
            name="certum",
            paper_count=16,
            outages=[(at(2018, 8, 9, 17), 2 * HOUR, {"Sydney"})],
            alexa_share=0.01,
        ),
        # "all of our OCSP requests to the servers managed by wosign
        # and startssl failed at 10pm, August 3 for an hour across the
        # regions."
        EventGroup(
            name="wosign-startssl",
            paper_count=2,
            outages=[(at(2018, 8, 3, 22), 1 * HOUR, None)],
            alexa_share=0.005,
        ),
        # "6 OCSP responders from *.sheca.com misbehaving and returning
        # the response '0' for all requests" — April 29 for 6 hours,
        # again July 28 at 5pm for 3 hours.
        EventGroup(
            name="sheca",
            paper_count=6,
            malformed_windows=[
                MalformedWindow(at(2018, 4, 29, 6), at(2018, 4, 29, 12), "zero"),
                MalformedWindow(at(2018, 7, 28, 17), at(2018, 7, 28, 20), "zero"),
            ],
            alexa_share=0.002,
        ),
        # "3 OCSP responders from postsigum.cz that began returning '0'
        # responses for all requests on May 1st ... disappeared at 9am
        # on May 12th for 17 hours, but began returning '0' responses
        # again after then."
        EventGroup(
            name="postsignum",
            paper_count=3,
            malformed_windows=[
                MalformedWindow(at(2018, 5, 1), at(2018, 5, 12, 9), "zero"),
                MalformedWindow(at(2018, 5, 13, 2), MEASUREMENT_END + DAY, "zero"),
            ],
            alexa_share=0.001,
        ),
        # "for two OCSP responders [identrust] we were never able to
        # make a successful OCSP request from any of our six vantage
        # points."
        EventGroup(
            name="identrust-unreachable",
            paper_count=2,
            outages=[(MEASUREMENT_START - DAY, MEASUREMENT_END - MEASUREMENT_START + 2 * DAY, None)],
            alexa_share=0.0,
        ),
        # "some OCSP servers such as http://ocsp.pki.wayport.net:2560
        # had become unavailable gradually during that time" — the
        # first-month declining success trend of Figure 3.
        EventGroup(
            name="wayport",
            paper_count=3,
            outages=[],  # filled per-member with staggered death dates
            alexa_share=0.0,
        ),
        # "3 OCSP responders are subdomains of hinet.net, all of which
        # set validityPeriod ... to 7,200 seconds and update them every
        # 7,200 seconds."
        EventGroup(
            name="hinet",
            paper_count=3,
            profile_overrides={"validity_period": 7200, "update_interval": 7200,
                               "this_update_margin": 0},
            alexa_share=0.002,
        ),
        # "a responder from ocspcnnicroot.cnnic.cn sets the
        # validityPeriod to 10,800 seconds and updates them at the same
        # rate" — and (footnote 17) runs multiple unsynchronized
        # backends behind one IP.
        EventGroup(
            name="cnnic",
            paper_count=1,
            profile_overrides={"validity_period": 10800, "update_interval": 10800,
                               "this_update_margin": 0, "stale_backends": 3,
                               "backend_skew": 1800},
            alexa_share=0.001,
        ),
        # "an OCSP responder, ocsp.cpc.gov.ae, always put four
        # certificate chains including the root certificate in the OCSP
        # responses" (Figure 6's x = 4 tail).
        EventGroup(
            name="cpc-gov-ae",
            paper_count=1,
            profile_overrides={"include_root_chain": True,
                               "delegated_signing": True, "extra_certs": 3},
            alexa_share=0.0,
        ),
    ]


#: Persistent single-responder fault quotas (paper Section 5.2), beyond
#: the named groups above: 16 DNS, 4 TCP, 8 HTTP (5 of which are the
#: digitalcertvalidation group), 1 invalid HTTPS certificate.
PERSISTENT_QUOTAS = {
    "dns": 16,
    "tcp": 4,
    "http": 3,   # 8 total minus the 5 digitalcertvalidation members
    "tls": 1,
}

#: Per-vantage always-fail targets: "the measurement clients located at
#: Oregon, São Paulo, Paris, and Seoul always fail to fetch OCSP
#: responses from one, seven, one, and four responders, respectively."
ALWAYS_FAIL_TARGETS = {"Oregon": 1, "Sao-Paulo": 7, "Paris": 1, "Seoul": 4}


@dataclass
class ResponderSite:
    """One responder URL with everything attached to it."""

    index: int
    url: str
    hostname: str
    family: str
    region: str
    authority: CertificateAuthority
    responder: OCSPResponder
    origin: Origin
    profile: ResponderProfile
    certificates: List[Certificate] = field(default_factory=list)
    cert_ids: List[CertID] = field(default_factory=list)
    tags: Set[str] = field(default_factory=set)


@dataclass
class ScanTarget:
    """One (certificate, responder) probe of the hourly scan."""

    site: ResponderSite
    certificate: Certificate
    cert_id: CertID
    request_der: bytes


class MeasurementWorld:
    """The fully assembled Section-5 simulation."""

    def __init__(self, config: Optional[WorldConfig] = None) -> None:
        self.config = config or WorldConfig()
        self.rng = random.Random(self.config.seed)
        self.network = Network(noise=self._noise)
        self.sites: List[ResponderSite] = []
        self._key_pool = KeyPool(size=24, bits=512, seed=self.config.seed)
        self._build()

    # -- noise -------------------------------------------------------------------

    #: Fraction of origins that are "flappy" — transient failures in
    #: the wild concentrate on a minority of responders (the paper
    #: found only 36.8% of responders ever had an outage, even though
    #: per-request failure rates run several percent).
    FLAPPY_FRACTION = 0.33

    def _is_flappy(self, origin_name: str) -> bool:
        digest = hashlib.blake2b(
            f"{self.config.seed}|flappy|{origin_name}".encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") / 2 ** 64 < self.FLAPPY_FRACTION

    def _noise(self, vantage: str, origin_name: str, now: int) -> Optional[FailureKind]:
        """Deterministic transient failures, concentrated on flappy origins."""
        rate = self.config.noise_rates.get(vantage, 0.0)
        if rate <= 0 or not self._is_flappy(origin_name):
            return None
        # The configured per-vantage rate is the population average;
        # flappy origins carry all of it.
        rate = min(0.5, rate / self.FLAPPY_FRACTION)
        hour_bucket = now // HOUR
        digest = hashlib.blake2b(
            f"{self.config.seed}|{vantage}|{origin_name}|{hour_bucket}".encode(),
            digest_size=8,
        ).digest()
        draw = int.from_bytes(digest, "big") / 2 ** 64
        if draw < rate:
            # Split noise between connection failures and 5xx codes.
            return FailureKind.TCP if draw < rate / 2 else FailureKind.HTTP
        return None

    # -- construction ---------------------------------------------------------------

    def _build(self) -> None:
        config = self.config
        groups = default_event_groups()

        # 1. Allocate site slots: event groups first, the rest generic.
        slots: List[Tuple[str, EventGroup]] = []
        for group in groups:
            for _ in range(config.scale(group.paper_count)):
                slots.append((group.name, group))
        if len(slots) > config.n_responders:
            raise ValueError(
                f"n_responders={config.n_responders} too small for the "
                f"event groups ({len(slots)} slots); use >= {len(slots)}"
            )
        generic_group = EventGroup(name="generic", paper_count=0)
        while len(slots) < config.n_responders:
            slots.append(("generic", generic_group))

        # 2. Draw shared attribute assignments over all slots.
        n = len(slots)
        assignments = self._draw_attributes(n)

        # 3. Build each site.
        for index, (family, group) in enumerate(slots):
            site = self._build_site(index, family, group, assignments[index])
            self.sites.append(site)

        # 4. Apply group outages / persistent faults / special cases.
        self._apply_group_effects(groups)
        self._apply_persistent_faults()

    def _draw_attributes(self, n: int) -> List[Dict[str, object]]:
        config = self.config
        rng = self.rng
        indexes = list(range(n))

        def pick(fraction: float, exclude: Set[int] = frozenset()) -> Set[int]:
            count = max(1, round(fraction * n)) if fraction > 0 else 0
            candidates = [i for i in indexes if i not in exclude]
            return set(rng.sample(candidates, min(count, len(candidates))))

        malformed = pick(config.malformed_fraction)
        zero_margin = pick(config.zero_margin_fraction, exclude=malformed)
        future = pick(config.future_this_update_fraction, exclude=malformed | zero_margin)
        blank = pick(config.blank_next_update_fraction, exclude=malformed)
        long_validity = pick(config.long_validity_fraction, exclude=malformed | blank)
        serial20 = pick(config.serial20_fraction, exclude=malformed)
        serial_few = pick(config.serial_few_fraction, exclude=malformed | serial20)
        multi_cert = pick(config.multi_cert_fraction, exclude=malformed)
        # Zero-margin / future-thisUpdate responders are on-demand by
        # construction, so the pre-generation quota is drawn from the
        # rest to keep the §5.4 fraction on target.
        pregenerated = pick(config.pregenerated_fraction,
                            exclude=zero_margin | future)
        delegated = pick(config.delegated_fraction)

        long_validity_list = sorted(long_validity)
        attributes = []
        for i in indexes:
            attribute: Dict[str, object] = {}
            if i in malformed:
                attribute["malformed_mode"] = rng.choice(["empty", "zero", "javascript"])
            if i in blank:
                attribute["blank_next_update"] = True
            elif i in long_validity:
                if long_validity_list and i == long_validity_list[0]:
                    # The extreme the paper flags: 108,130,800 s = 1,251 days.
                    attribute["validity_period"] = 108_130_800
                else:
                    attribute["validity_period"] = rng.choice([35, 60, 90, 180]) * DAY
            else:
                attribute["validity_period"] = rng.choice(
                    [12 * HOUR, DAY, 3 * DAY, 4 * DAY, 7 * DAY, 7 * DAY, 7 * DAY,
                     10 * DAY, 14 * DAY]
                )
            if i in zero_margin:
                attribute["this_update_margin"] = 0
            elif i in future:
                attribute["this_update_margin"] = -rng.choice([60, 300, 900])
            else:
                # Margins never approach the validity period — the
                # paper "did not find any instances" of responses that
                # arrive already expired.
                validity_now = int(attribute.get("validity_period", 7 * DAY))
                margin = rng.choice(
                    [5 * 60, 30 * 60, HOUR, 2 * HOUR, 6 * HOUR, 12 * HOUR]
                )
                attribute["this_update_margin"] = min(margin, validity_now // 4)
            if i in serial20:
                attribute["serials_per_response"] = 20
            elif i in serial_few:
                attribute["serials_per_response"] = rng.choice([2, 3, 5])
            if i in multi_cert:
                attribute["extra_certs"] = rng.choice([1, 2, 3])
                attribute["delegated_signing"] = True
            elif i in delegated:
                attribute["delegated_signing"] = True
            if i in zero_margin or i in future:
                # Zero-margin and future-thisUpdate responders generate
                # at request time by construction (Figure 9's
                # "response became valid at the same time our client
                # made the request").
                attribute["update_interval"] = None
            elif i in pregenerated:
                validity = attribute.get("validity_period", 7 * DAY)
                interval = min(DAY, max(HOUR, int(validity) // 2))
                attribute["update_interval"] = interval
            else:
                attribute["update_interval"] = None
            attributes.append(attribute)
        return attributes

    def _build_site(self, index: int, family: str, group: EventGroup,
                    attribute: Dict[str, object]) -> ResponderSite:
        config = self.config
        merged = dict(attribute)
        merged.update(group.profile_overrides)
        if group.malformed_windows:
            merged["malformed_windows"] = tuple(group.malformed_windows)
            merged.pop("malformed_mode", None)
        profile = ResponderProfile(**merged)

        hostname = f"ocsp{index}.{family}.test"
        url = f"http://{hostname}"
        region = SERVICE_REGIONS[index % len(SERVICE_REGIONS)]
        # CA keys come from the shared pool: distinct issuer *names*
        # keep CertID lookups unambiguous (issuerNameHash and
        # issuerKeyHash must both match), and pooling avoids hundreds
        # of fresh keygens.
        from ..x509 import self_signed, Name
        ca_key = self._key_pool.take()
        ca_cert = self_signed(
            Name.build(f"{family}-{index} CA", organization=family),
            ca_key, serial=1,
            not_before=config.start - 3 * 365 * DAY,
            not_after=config.start + 20 * 365 * DAY,
        )
        authority = CertificateAuthority(
            f"{family}-{index} CA", ca_key, ca_cert,
            ocsp_url=url,
            crl_url=f"http://crl{index}.{family}.test/ca.crl",
        )
        chain_to_root = None
        if profile.include_root_chain:
            # The cpc.gov.ae shape: the issuing CA hangs under two
            # layers of hierarchy, and the responder ships the whole
            # chain (signer + issuing CA + intermediate + root = the
            # paper's "four certificate chains including the root").
            root = CertificateAuthority.create_root(
                f"{family}-{index} Root", ocsp_url=url,
                key_pool=self._key_pool,
                not_before=config.start - 5 * 365 * DAY,
            )
            upper = root.create_intermediate(f"{family}-{index} Upper", url,
                                             key_pool=self._key_pool)
            authority = upper.create_intermediate(f"{family}-{index} CA", url,
                                                  key_pool=self._key_pool)
            authority.crl_url = f"http://crl{index}.{family}.test/ca.crl"
            chain_to_root = [upper.certificate, root.certificate]
        # Responders do not all regenerate at midnight: stagger each
        # site's epoch grid so scans observe realistic producedAt lags.
        epoch_offset = self.rng.randrange(0, DAY)
        responder = OCSPResponder(
            authority, url, profile,
            epoch_start=config.start - 30 * DAY + epoch_offset,
            chain_to_root=chain_to_root,
        )
        origin = self.network.add_origin(f"origin-{index}-{family}", region,
                                         ocsp_service(responder))
        self.network.bind(hostname, origin)

        site = ResponderSite(
            index=index, url=url, hostname=hostname, family=family,
            region=region, authority=authority, responder=responder,
            origin=origin, profile=profile,
        )
        for cert_index in range(config.certs_per_responder):
            lifetime = self.rng.choice([180, 365, 730]) * DAY
            certificate = authority.issue_leaf(
                f"site{index}-{cert_index}.{family}.example",
                self._key_pool.take(),
                not_before=config.start - 30 * DAY,
                lifetime=lifetime,
            )
            site.certificates.append(certificate)
            site.cert_ids.append(CertID.for_certificate(certificate, authority.certificate))
        return site

    def _apply_group_effects(self, groups: List[EventGroup]) -> None:
        by_family: Dict[str, List[ResponderSite]] = {}
        for site in self.sites:
            by_family.setdefault(site.family, []).append(site)

        for group in groups:
            members = by_family.get(group.name, [])
            for start, duration, vantages in group.outages:
                for site in members:
                    site.origin.add_outage(OutageWindow(
                        start=start, end=start + duration,
                        vantages=set(vantages) if vantages else None,
                        kind=FailureKind.TCP,
                    ))
                    site.tags.add("event-outage")
            if group.name == "wayport":
                # Staggered permanent deaths through May.
                death_dates = [at(2018, 5, 5), at(2018, 5, 15), at(2018, 5, 25)]
                for site, death in zip(members, death_dates):
                    site.origin.add_outage(OutageWindow(
                        start=death, end=self.config.end + DAY,
                        kind=FailureKind.HTTP, status_code=503,
                    ))
                    site.tags.add("gradual-death")
            if group.persistent:
                for site in members:
                    binding = self.network.get_binding(site.hostname)
                    for fault, vantages in group.persistent.items():
                        if fault == "http_404":
                            for vantage in vantages:
                                binding.http_error_vantages[vantage] = 404
                        elif fault == "dns":
                            binding.dns_fail_vantages |= set(vantages)
                        elif fault == "tcp":
                            binding.tcp_fail_vantages |= set(vantages)
                    binding.repaired_at = group.repaired_at
                    site.tags.add("persistent-fault")

    def _apply_persistent_faults(self) -> None:
        """Distribute the single-responder persistent faults."""
        config = self.config
        candidates = [site for site in self.sites
                      if site.family == "generic" and "persistent-fault" not in site.tags]
        self.rng.shuffle(candidates)
        cursor = 0

        def take() -> Optional[ResponderSite]:
            nonlocal cursor
            if cursor >= len(candidates):
                return None
            site = candidates[cursor]
            cursor += 1
            return site

        # Per-vantage always-fail targets first (Seoul 4 DNS, etc.).
        remaining_quota = {k: config.scale(v) for k, v in PERSISTENT_QUOTAS.items()}
        targets = {v: config.scale(c) for v, c in ALWAYS_FAIL_TARGETS.items()}
        # digitalcertvalidation already covers part of São Paulo's target.
        dcv = sum(1 for s in self.sites if s.family == "digitalcertvalidation")
        targets["Sao-Paulo"] = max(0, targets.get("Sao-Paulo", 0) - dcv)

        for vantage, count in targets.items():
            for _ in range(count):
                site = take()
                if site is None:
                    return
                binding = self.network.get_binding(site.hostname)
                binding.dns_fail_vantages.add(vantage)
                site.tags.add("persistent-fault")
                remaining_quota["dns"] = max(0, remaining_quota["dns"] - 1)

        # Remaining quotas go to random single vantages.
        fault_order = [("dns", remaining_quota["dns"]),
                       ("tcp", remaining_quota["tcp"]),
                       ("http", remaining_quota["http"]),
                       ("tls", remaining_quota["tls"])]
        for fault, count in fault_order:
            for _ in range(count):
                site = take()
                if site is None:
                    return
                binding = self.network.get_binding(site.hostname)
                vantage = self.rng.choice(VANTAGE_POINTS)
                if fault == "dns":
                    binding.dns_fail_vantages.add(vantage)
                elif fault == "tcp":
                    binding.tcp_fail_vantages.add(vantage)
                elif fault == "http":
                    binding.http_error_vantages[vantage] = self.rng.choice([403, 404, 500, 503])
                elif fault == "tls":
                    binding.https_invalid_cert = True
                    # An HTTPS responder URL (the paper found exactly one).
                    site.url = site.url.replace("http://", "https://", 1)
                site.tags.add("persistent-fault")

    # -- scan inputs --------------------------------------------------------------

    def scan_targets(self) -> List[ScanTarget]:
        """All (certificate, responder) probes, with requests pre-encoded."""
        from ..ocsp import OCSPRequest
        targets = []
        for site in self.sites:
            for certificate, cert_id in zip(site.certificates, site.cert_ids):
                targets.append(ScanTarget(
                    site=site,
                    certificate=certificate,
                    cert_id=cert_id,
                    request_der=OCSPRequest.for_single(cert_id).encode(),
                ))
        return targets

    def sites_by_family(self, family: str) -> List[ResponderSite]:
        """All sites in one named group."""
        return [site for site in self.sites if site.family == family]

    def site_for_url(self, url: str) -> Optional[ResponderSite]:
        """Find a site by its responder URL."""
        for site in self.sites:
            if site.url == url:
                return site
        return None
