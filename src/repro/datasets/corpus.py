"""The Censys-substitute certificate corpus.

A :class:`CertificateCorpus` is a seeded, scaled-down synthetic stand-in
for the 112.8M valid certificates of the paper's Censys snapshot.  Each
:class:`CertificateRecord` carries the metadata the Section-4 analyses
read (issuing CA, OCSP URL presence, Must-Staple, validity), and can be
*materialized* into a real DER certificate issued by a simulated CA —
the active-scan pipelines operate exclusively on materialized records,
so AIA extraction and extension parsing run on real bytes.

Generation is **record-addressed**: every record is drawn from its own
derived RNG stream keyed by ``(seed, index)``, so any index range can
be generated independently and the corpus content is identical whether
it is built in one pass or split across shards (the property
:meth:`CertificateCorpus.generate` and the parallel runtime rely on).
Generation is also lazy — constructing a corpus costs nothing until
``records`` is first touched.

Scaling: ``scale`` maps one record to ``scale`` real-world certificates
(default 1 record : 2,000 certs → about 56k records for the full
population; tests use far smaller corpora).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..ca import CertificateAuthority
from ..canon import derived_rng, split_ranges, stable_digest
from ..crypto import KeyPool
from ..simnet.clock import CENSYS_SNAPSHOT, DAY
from ..x509 import Certificate
from .marketshare import (
    CAShare,
    MUST_STAPLE_CERTIFICATES,
    VALID_CERTIFICATES,
    must_staple_weights,
    normalized_shares,
)


@dataclass
class CertificateRecord:
    """Metadata for one (scaled) corpus certificate."""

    index: int
    domain: str
    ca_name: str
    has_ocsp: bool
    must_staple: bool
    not_before: int
    not_after: int
    serial_number: int = 0
    certificate: Optional[Certificate] = None

    @property
    def ocsp_url(self) -> Optional[str]:
        """The record's responder URL (materialized records read the
        real AIA extension)."""
        if self.certificate is not None:
            urls = self.certificate.ocsp_urls
            return urls[0] if urls else None
        if not self.has_ocsp:
            return None
        return f"http://ocsp1.{_slug(self.ca_name)}.test"

    def days_remaining(self, now: int) -> int:
        """Days of validity left at *now*."""
        return max(0, (self.not_after - now) // DAY)

    def to_dict(self) -> dict:
        """The record's corpus-content fields (materialization state —
        serial number, certificate bytes — is deliberately excluded)."""
        return {
            "index": self.index,
            "domain": self.domain,
            "ca_name": self.ca_name,
            "has_ocsp": self.has_ocsp,
            "must_staple": self.must_staple,
            "not_before": self.not_before,
            "not_after": self.not_after,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CertificateRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            index=data["index"],
            domain=data["domain"],
            ca_name=data["ca_name"],
            has_ocsp=data["has_ocsp"],
            must_staple=data["must_staple"],
            not_before=data["not_before"],
            not_after=data["not_after"],
        )


def _slug(name: str) -> str:
    return name.lower().replace(" ", "").replace("'", "")


@dataclass
class CorpusConfig:
    """Parameters of a synthetic corpus."""

    #: Number of records to generate.
    size: int = 5_000
    #: Real-world certificates represented by one record.
    scale: float = VALID_CERTIFICATES / 5_000
    seed: int = 2018
    snapshot_time: int = CENSYS_SNAPSHOT
    #: Fraction of records carrying Must-Staple.  The paper's value is
    #: 29,709 / 112,841,653 ≈ 0.000263 — too rare to surface in a small
    #: corpus, so the default boosts it while `scale_must_staple`
    #: records the boost for analysis-time un-scaling.
    must_staple_fraction: float = MUST_STAPLE_CERTIFICATES / VALID_CERTIFICATES
    must_staple_boost: float = 40.0

    def to_dict(self) -> dict:
        """Stable field mapping (cache keys, shard specs)."""
        return {
            "size": self.size,
            "scale": self.scale,
            "seed": self.seed,
            "snapshot_time": self.snapshot_time,
            "must_staple_fraction": self.must_staple_fraction,
            "must_staple_boost": self.must_staple_boost,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CorpusConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        return cls(**data)

    def config_digest(self) -> str:
        """Content address of this config — independent of field or
        repr ordering."""
        return stable_digest(self)

    def __hash__(self) -> int:
        return hash(self.config_digest())


def generate_records(config: CorpusConfig, start: int = 0,
                     stop: Optional[int] = None) -> List[CertificateRecord]:
    """Generate corpus records for the index range ``[start, stop)``.

    Pure function of ``(config, index)``: each record draws from its
    own derived RNG stream, so disjoint ranges compose into exactly the
    corpus a single full pass would produce.
    """
    stop = config.size if stop is None else min(stop, config.size)
    shares = normalized_shares()
    ca_names = [s.name for s in shares]
    ca_weights = [s.share for s in shares]
    by_name: Dict[str, CAShare] = {s.name: s for s in shares}
    staple_weights = must_staple_weights()
    staple_cas = list(staple_weights)
    staple_probabilities = [staple_weights[name] for name in staple_cas]
    boosted = min(1.0, config.must_staple_fraction * config.must_staple_boost)
    snapshot = config.snapshot_time

    records: List[CertificateRecord] = []
    for index in range(start, stop):
        rng = derived_rng(config.seed, "corpus", index)
        must_staple = rng.random() < boosted
        if must_staple:
            # Must-Staple certificates come from the four CAs that
            # issue them, in the paper's measured proportions.
            ca_name = rng.choices(staple_cas, weights=staple_probabilities)[0]
            has_ocsp = True
        else:
            ca_name = rng.choices(ca_names, weights=ca_weights)[0]
            has_ocsp = rng.random() < by_name[ca_name].ocsp_rate
        # Lifetimes: Let's Encrypt 90 days, others 1-3 years.
        if ca_name == "Lets Encrypt":
            lifetime = 90 * DAY
        else:
            lifetime = rng.choice([365, 730, 1095]) * DAY
        age = int(rng.random() * lifetime)
        not_before = snapshot - age
        records.append(CertificateRecord(
            index=index,
            domain=f"site{index}.example",
            ca_name=ca_name,
            has_ocsp=has_ocsp,
            must_staple=must_staple,
            not_before=not_before,
            not_after=not_before + lifetime,
        ))
    return records


class CertificateCorpus:
    """A seeded population of certificate records.

    ``CertificateCorpus.generate(config, shards=N)`` is the public
    constructor path; the plain constructor remains as a lazy one-shot
    shim (records materialize on first access).
    """

    def __init__(self, config: Optional[CorpusConfig] = None,
                 records: Optional[Iterable[CertificateRecord]] = None) -> None:
        self.config = config or CorpusConfig()
        self._records: Optional[List[CertificateRecord]] = (
            list(records) if records is not None else None)

    @classmethod
    def generate(cls, config: Optional[CorpusConfig] = None,
                 shards: int = 1) -> "CertificateCorpus":
        """Build a corpus from *shards* independent index-range passes.

        The result is byte-identical for any shard count — sharding is
        a work-splitting knob, never a content knob.
        """
        config = config or CorpusConfig()
        records: List[CertificateRecord] = []
        for lo, hi in split_ranges(config.size, shards):
            records.extend(generate_records(config, lo, hi))
        return cls(config, records=records)

    @classmethod
    def from_records(cls, config: CorpusConfig,
                     records: Iterable[CertificateRecord]) -> "CertificateCorpus":
        """Wrap pre-generated records (e.g. merged shard outputs)."""
        return cls(config, records=records)

    @property
    def records(self) -> List[CertificateRecord]:
        """The record population (generated lazily on first access)."""
        if self._records is None:
            self._records = generate_records(self.config)
        return self._records

    @records.setter
    def records(self, value: List[CertificateRecord]) -> None:
        self._records = value

    def _generate(self) -> None:
        # Legacy one-shot shim: regenerate eagerly in place.
        self._records = generate_records(self.config)

    # -- selections ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def valid_at(self, now: Optional[int] = None) -> List[CertificateRecord]:
        """Records valid at *now* (default: the snapshot time)."""
        now = self.config.snapshot_time if now is None else now
        return [r for r in self.records if r.not_before <= now <= r.not_after]

    def with_min_remaining(self, days: int, now: Optional[int] = None) -> List[CertificateRecord]:
        """Records with at least *days* of validity left — the Hourly
        scan's selection step ("at least 30 days of validity
        remaining")."""
        now = self.config.snapshot_time if now is None else now
        return [r for r in self.valid_at(now) if r.days_remaining(now) >= days]

    def must_staple_records(self) -> List[CertificateRecord]:
        """Records carrying Must-Staple."""
        return [r for r in self.records if r.must_staple]

    def ocsp_records(self) -> List[CertificateRecord]:
        """Records with an OCSP URL."""
        return [r for r in self.records if r.has_ocsp]

    # -- materialization -------------------------------------------------------------

    def materialize(self, records: Iterable[CertificateRecord],
                    authorities: Dict[str, CertificateAuthority],
                    key_pool: Optional[KeyPool] = None) -> List[CertificateRecord]:
        """Issue real certificates for *records* from *authorities*.

        Records whose CA is missing from *authorities* are skipped.
        Returns the materialized subset.
        """
        pool = (key_pool if key_pool is not None
                else KeyPool(size=16, seed=self.config.seed))
        done = []
        for record in records:
            authority = authorities.get(record.ca_name)
            if authority is None:
                continue
            certificate = authority.issue_leaf(
                record.domain,
                pool.take(),
                not_before=record.not_before,
                lifetime=record.not_after - record.not_before,
                must_staple=record.must_staple,
                include_crl_url=authority.crl_url is not None,
            )
            record.certificate = certificate
            record.serial_number = certificate.serial_number
            done.append(record)
        return done
