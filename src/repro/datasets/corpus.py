"""The Censys-substitute certificate corpus.

A :class:`CertificateCorpus` is a seeded, scaled-down synthetic stand-in
for the 112.8M valid certificates of the paper's Censys snapshot.  Each
:class:`CertificateRecord` carries the metadata the Section-4 analyses
read (issuing CA, OCSP URL presence, Must-Staple, validity), and can be
*materialized* into a real DER certificate issued by a simulated CA —
the active-scan pipelines operate exclusively on materialized records,
so AIA extraction and extension parsing run on real bytes.

Scaling: ``scale`` maps one record to ``scale`` real-world certificates
(default 1 record : 2,000 certs → about 56k records for the full
population; tests use far smaller corpora).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..ca import CertificateAuthority
from ..crypto import KeyPool
from ..simnet.clock import CENSYS_SNAPSHOT, DAY
from ..x509 import Certificate
from .marketshare import (
    CAShare,
    MUST_STAPLE_CERTIFICATES,
    VALID_CERTIFICATES,
    must_staple_weights,
    normalized_shares,
)


@dataclass
class CertificateRecord:
    """Metadata for one (scaled) corpus certificate."""

    index: int
    domain: str
    ca_name: str
    has_ocsp: bool
    must_staple: bool
    not_before: int
    not_after: int
    serial_number: int = 0
    certificate: Optional[Certificate] = None

    @property
    def ocsp_url(self) -> Optional[str]:
        """The record's responder URL (materialized records read the
        real AIA extension)."""
        if self.certificate is not None:
            urls = self.certificate.ocsp_urls
            return urls[0] if urls else None
        if not self.has_ocsp:
            return None
        return f"http://ocsp1.{_slug(self.ca_name)}.test"

    def days_remaining(self, now: int) -> int:
        """Days of validity left at *now*."""
        return max(0, (self.not_after - now) // DAY)


def _slug(name: str) -> str:
    return name.lower().replace(" ", "").replace("'", "")


@dataclass
class CorpusConfig:
    """Parameters of a synthetic corpus."""

    #: Number of records to generate.
    size: int = 5_000
    #: Real-world certificates represented by one record.
    scale: float = VALID_CERTIFICATES / 5_000
    seed: int = 2018
    snapshot_time: int = CENSYS_SNAPSHOT
    #: Fraction of records carrying Must-Staple.  The paper's value is
    #: 29,709 / 112,841,653 ≈ 0.000263 — too rare to surface in a small
    #: corpus, so the default boosts it while `scale_must_staple`
    #: records the boost for analysis-time un-scaling.
    must_staple_fraction: float = MUST_STAPLE_CERTIFICATES / VALID_CERTIFICATES
    must_staple_boost: float = 40.0


class CertificateCorpus:
    """A seeded population of certificate records."""

    def __init__(self, config: Optional[CorpusConfig] = None) -> None:
        self.config = config or CorpusConfig()
        self.records: List[CertificateRecord] = []
        self._generate()

    def _generate(self) -> None:
        rng = random.Random(self.config.seed)
        shares = normalized_shares()
        ca_names = [s.name for s in shares]
        ca_weights = [s.share for s in shares]
        by_name: Dict[str, CAShare] = {s.name: s for s in shares}
        staple_weights = must_staple_weights()
        staple_cas = list(staple_weights)
        staple_probabilities = [staple_weights[name] for name in staple_cas]
        boosted = min(1.0, self.config.must_staple_fraction * self.config.must_staple_boost)
        snapshot = self.config.snapshot_time

        for index in range(self.config.size):
            must_staple = rng.random() < boosted
            if must_staple:
                # Must-Staple certificates come from the four CAs that
                # issue them, in the paper's measured proportions.
                ca_name = rng.choices(staple_cas, weights=staple_probabilities)[0]
                has_ocsp = True
            else:
                ca_name = rng.choices(ca_names, weights=ca_weights)[0]
                has_ocsp = rng.random() < by_name[ca_name].ocsp_rate
            # Lifetimes: Let's Encrypt 90 days, others 1-3 years.
            if ca_name == "Lets Encrypt":
                lifetime = 90 * DAY
            else:
                lifetime = rng.choice([365, 730, 1095]) * DAY
            age = int(rng.random() * lifetime)
            not_before = snapshot - age
            self.records.append(CertificateRecord(
                index=index,
                domain=f"site{index}.example",
                ca_name=ca_name,
                has_ocsp=has_ocsp,
                must_staple=must_staple,
                not_before=not_before,
                not_after=not_before + lifetime,
            ))

    # -- selections ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def valid_at(self, now: Optional[int] = None) -> List[CertificateRecord]:
        """Records valid at *now* (default: the snapshot time)."""
        now = self.config.snapshot_time if now is None else now
        return [r for r in self.records if r.not_before <= now <= r.not_after]

    def with_min_remaining(self, days: int, now: Optional[int] = None) -> List[CertificateRecord]:
        """Records with at least *days* of validity left — the Hourly
        scan's selection step ("at least 30 days of validity
        remaining")."""
        now = self.config.snapshot_time if now is None else now
        return [r for r in self.valid_at(now) if r.days_remaining(now) >= days]

    def must_staple_records(self) -> List[CertificateRecord]:
        """Records carrying Must-Staple."""
        return [r for r in self.records if r.must_staple]

    def ocsp_records(self) -> List[CertificateRecord]:
        """Records with an OCSP URL."""
        return [r for r in self.records if r.has_ocsp]

    # -- materialization -------------------------------------------------------------

    def materialize(self, records: Iterable[CertificateRecord],
                    authorities: Dict[str, CertificateAuthority],
                    key_pool: Optional[KeyPool] = None) -> List[CertificateRecord]:
        """Issue real certificates for *records* from *authorities*.

        Records whose CA is missing from *authorities* are skipped.
        Returns the materialized subset.
        """
        pool = key_pool or KeyPool(size=16, seed=self.config.seed)
        done = []
        for record in records:
            authority = authorities.get(record.ca_name)
            if authority is None:
                continue
            certificate = authority.issue_leaf(
                record.domain,
                pool.take(),
                not_before=record.not_before,
                lifetime=record.not_after - record.not_before,
                must_staple=record.must_staple,
                include_crl_url=authority.crl_url is not None,
            )
            record.certificate = certificate
            record.serial_number = certificate.serial_number
            done.append(record)
        return done
