"""Synthetic datasets replacing the paper's unobtainable raw inputs.

* :mod:`~repro.datasets.marketshare` — the April-2018 CA ecosystem and
  the paper's exact Section-4 deployment constants,
* :mod:`~repro.datasets.corpus` — the Censys-substitute certificate
  population,
* :mod:`~repro.datasets.alexa` — the Alexa Top-1M popularity model
  (Figures 2 and 11),
* :mod:`~repro.datasets.history` — monthly adoption snapshots for
  Figure 12,
* :mod:`~repro.datasets.world` — the Section-5 responder population
  with every measured fault and outage event.
"""

from .marketshare import (
    ALEXA_MUST_STAPLE,
    ALEXA_OCSP_CERTIFICATES,
    ALEXA_RESPONDERS,
    CAShare,
    CA_SHARES_2018,
    HOURLY_CERTIFICATES,
    HOURLY_RESPONDERS,
    MUST_STAPLE_BY_CA,
    MUST_STAPLE_CERTIFICATES,
    OCSP_CERTIFICATES,
    TOTAL_CERTIFICATES,
    VALID_CERTIFICATES,
    ca_share,
    expected_ocsp_fraction,
    must_staple_weights,
    normalized_shares,
)
from .corpus import CertificateCorpus, CertificateRecord, CorpusConfig
from .alexa import (
    ALEXA_POPULATION,
    AlexaConfig,
    AlexaModel,
    DomainRecord,
    https_probability,
    ocsp_probability,
    stapling_probability,
)
from .history import (
    CLOUDFLARE_AFTER,
    CLOUDFLARE_BEFORE,
    AdoptionSnapshot,
    adoption_history,
    snapshot_for,
)
from .world import (
    ALWAYS_FAIL_TARGETS,
    EventGroup,
    MeasurementWorld,
    PAPER_CERTIFICATES,
    PAPER_RESPONDERS,
    PERSISTENT_QUOTAS,
    ResponderSite,
    ScanTarget,
    WorldConfig,
    default_event_groups,
)

__all__ = [
    "ALEXA_MUST_STAPLE",
    "ALEXA_OCSP_CERTIFICATES",
    "ALEXA_POPULATION",
    "ALEXA_RESPONDERS",
    "ALWAYS_FAIL_TARGETS",
    "AdoptionSnapshot",
    "AlexaConfig",
    "AlexaModel",
    "CAShare",
    "CA_SHARES_2018",
    "CLOUDFLARE_AFTER",
    "CLOUDFLARE_BEFORE",
    "CertificateCorpus",
    "CertificateRecord",
    "CorpusConfig",
    "DomainRecord",
    "EventGroup",
    "HOURLY_CERTIFICATES",
    "HOURLY_RESPONDERS",
    "MUST_STAPLE_BY_CA",
    "MUST_STAPLE_CERTIFICATES",
    "MeasurementWorld",
    "OCSP_CERTIFICATES",
    "PAPER_CERTIFICATES",
    "PAPER_RESPONDERS",
    "PERSISTENT_QUOTAS",
    "ResponderSite",
    "ScanTarget",
    "TOTAL_CERTIFICATES",
    "VALID_CERTIFICATES",
    "WorldConfig",
    "adoption_history",
    "ca_share",
    "default_event_groups",
    "expected_ocsp_fraction",
    "https_probability",
    "must_staple_weights",
    "normalized_shares",
    "ocsp_probability",
    "snapshot_for",
    "stapling_probability",
]
