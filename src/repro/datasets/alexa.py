"""The Alexa Top-1M popularity model.

Produces a scaled population of ranked domains with HTTPS / OCSP /
OCSP-Stapling / Must-Staple attributes whose rank-dependence matches
the paper's Figures 2 and 11:

* HTTPS support "close to 75% across the entire range", slightly
  higher for popular sites (Figure 2, "Domains with certificate"),
* OCSP adoption among HTTPS domains averaging 91.3%, slightly higher
  for popular sites (Figure 2, "Certificates with OCSP responder"),
* OCSP Stapling adoption among OCSP domains around 35%, with "the most
  popular websites that support OCSP tend[ing] to do OCSP Stapling as
  well" (Figure 11),
* exactly 100 Must-Staple certificates across the Top-1M (Section 4).

Like the certificate corpus, domain generation is record-addressed:
each sampled rank draws from its own derived RNG stream, so any rank
range can be generated independently (the runtime shards Alexa scans
by rank range) and shard outputs compose into exactly the population a
single pass would produce.  Only the Must-Staple quota is a global
draw — it runs as a deterministic post-pass over the full population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..canon import derived_rng, split_ranges, stable_digest

ALEXA_POPULATION = 1_000_000


@dataclass(frozen=True)
class DomainRecord:
    """One ranked domain and its TLS/OCSP posture."""

    rank: int
    domain: str
    ca_name: str
    https: bool
    has_ocsp: bool
    stapling: bool
    must_staple: bool

    def to_dict(self) -> dict:
        """The record's fields as a plain mapping."""
        return {
            "rank": self.rank,
            "domain": self.domain,
            "ca_name": self.ca_name,
            "https": self.https,
            "has_ocsp": self.has_ocsp,
            "stapling": self.stapling,
            "must_staple": self.must_staple,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DomainRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(**data)


def https_probability(rank: int) -> float:
    """P(HTTPS | rank): ~78% at the top, ~72% at rank 1M."""
    return 0.78 - 0.06 * (rank / ALEXA_POPULATION)


def ocsp_probability(rank: int) -> float:
    """P(OCSP | HTTPS, rank): ~93% at the top, ~89.5% at rank 1M."""
    return 0.93 - 0.035 * (rank / ALEXA_POPULATION)


def stapling_probability(rank: int) -> float:
    """P(Stapling | OCSP, rank): ~45% at the top, ~28% at rank 1M."""
    return 0.45 - 0.17 * (rank / ALEXA_POPULATION)


@dataclass
class AlexaConfig:
    """Parameters for the scaled Alexa model."""

    #: Number of sampled domains (ranks are spread over the full 1M).
    size: int = 20_000
    seed: int = 404
    #: Must-Staple domains in the full population (paper: 100).
    must_staple_population: int = 100

    def to_dict(self) -> dict:
        """Stable field mapping (cache keys, shard specs)."""
        return {
            "size": self.size,
            "seed": self.seed,
            "must_staple_population": self.must_staple_population,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AlexaConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        return cls(**data)

    def config_digest(self) -> str:
        """Content address of this config."""
        return stable_digest(self)

    def __hash__(self) -> int:
        return hash(self.config_digest())


def _default_ca_mixture() -> "tuple[List[str], List[float]]":
    from .marketshare import normalized_shares
    shares = normalized_shares()
    return [s.name for s in shares], [s.share for s in shares]


def generate_domains(config: AlexaConfig, start: int = 0,
                     stop: Optional[int] = None,
                     ca_names: Optional[List[str]] = None,
                     ca_weights: Optional[List[float]] = None,
                     ) -> List[DomainRecord]:
    """Generate sampled domains for sample indexes ``[start, stop)``.

    Pure function of ``(config, index)``; disjoint ranges compose into
    the full population.  Must-Staple flags are *not* assigned here —
    the global quota runs in :func:`apply_must_staple_quota`.
    """
    stop = config.size if stop is None else min(stop, config.size)
    if ca_names is None:
        ca_names, ca_weights = _default_ca_mixture()
    step = ALEXA_POPULATION / config.size
    records: List[DomainRecord] = []
    for i in range(start, stop):
        rng = derived_rng(config.seed, "alexa", i)
        rank = int(i * step) + 1
        https = rng.random() < https_probability(rank)
        has_ocsp = https and rng.random() < ocsp_probability(rank)
        stapling = has_ocsp and rng.random() < stapling_probability(rank)
        ca_name = rng.choices(ca_names, weights=ca_weights)[0] if https else ""
        records.append(DomainRecord(
            rank=rank,
            domain=f"rank{rank}.example",
            ca_name=ca_name,
            https=https,
            has_ocsp=has_ocsp,
            stapling=stapling,
            must_staple=False,
        ))
    return records


def apply_must_staple_quota(config: AlexaConfig,
                            records: List[DomainRecord]) -> List[DomainRecord]:
    """Assign the scaled Must-Staple quota over the full population.

    A deterministic global draw (seeded from the config alone), so the
    outcome is independent of how *records* were sharded — callers must
    pass the complete, rank-ordered population.
    """
    step = ALEXA_POPULATION / config.size
    staple_quota = max(1, round(config.must_staple_population / step))
    staple_candidates = [i for i, r in enumerate(records) if r.has_ocsp]
    rng = derived_rng(config.seed, "alexa-staple")
    chosen = rng.sample(staple_candidates,
                        min(staple_quota, len(staple_candidates)))
    records = list(records)
    for i in chosen:
        record = records[i]
        records[i] = DomainRecord(
            rank=record.rank, domain=record.domain,
            ca_name="Lets Encrypt",  # 97.3% of Must-Staple certs
            https=True, has_ocsp=True, stapling=record.stapling,
            must_staple=True,
        )
    return records


class AlexaModel:
    """A seeded, scaled sample of the Alexa Top-1M."""

    def __init__(self, config: Optional[AlexaConfig] = None,
                 ca_names: Optional[List[str]] = None,
                 ca_weights: Optional[List[float]] = None,
                 records: Optional[Iterable[DomainRecord]] = None) -> None:
        self.config = config or AlexaConfig()
        if records is not None:
            self.records: List[DomainRecord] = list(records)
        else:
            self.records = apply_must_staple_quota(
                self.config,
                generate_domains(self.config, ca_names=ca_names,
                                 ca_weights=ca_weights))

    @classmethod
    def generate(cls, config: Optional[AlexaConfig] = None,
                 shards: int = 1) -> "AlexaModel":
        """Build the model from *shards* independent rank-range passes;
        byte-identical for any shard count."""
        config = config or AlexaConfig()
        ca_names, ca_weights = _default_ca_mixture()
        records: List[DomainRecord] = []
        for lo, hi in split_ranges(config.size, shards):
            records.extend(generate_domains(config, lo, hi,
                                            ca_names, ca_weights))
        return cls(config, records=apply_must_staple_quota(config, records))

    @classmethod
    def from_records(cls, config: AlexaConfig,
                     records: Iterable[DomainRecord],
                     quota_applied: bool = True) -> "AlexaModel":
        """Wrap pre-generated records (e.g. merged shard outputs).

        Pass ``quota_applied=False`` for raw shard outputs so the
        global Must-Staple draw still runs.
        """
        records = list(records)
        if not quota_applied:
            records = apply_must_staple_quota(config, records)
        return cls(config, records=records)

    @property
    def scale(self) -> float:
        """Real-world domains represented by one record."""
        return ALEXA_POPULATION / self.config.size

    # -- selections -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def https_domains(self) -> List[DomainRecord]:
        """Domains serving HTTPS."""
        return [r for r in self.records if r.https]

    def ocsp_domains(self) -> List[DomainRecord]:
        """Domains whose certificates carry an OCSP URL."""
        return [r for r in self.records if r.has_ocsp]

    def stapling_domains(self) -> List[DomainRecord]:
        """Domains observed stapling."""
        return [r for r in self.records if r.stapling]

    def must_staple_domains(self) -> List[DomainRecord]:
        """Domains with Must-Staple certificates."""
        return [r for r in self.records if r.must_staple]
