"""The Alexa Top-1M popularity model.

Produces a scaled population of ranked domains with HTTPS / OCSP /
OCSP-Stapling / Must-Staple attributes whose rank-dependence matches
the paper's Figures 2 and 11:

* HTTPS support "close to 75% across the entire range", slightly
  higher for popular sites (Figure 2, "Domains with certificate"),
* OCSP adoption among HTTPS domains averaging 91.3%, slightly higher
  for popular sites (Figure 2, "Certificates with OCSP responder"),
* OCSP Stapling adoption among OCSP domains around 35%, with "the most
  popular websites that support OCSP tend[ing] to do OCSP Stapling as
  well" (Figure 11),
* exactly 100 Must-Staple certificates across the Top-1M (Section 4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

ALEXA_POPULATION = 1_000_000


@dataclass(frozen=True)
class DomainRecord:
    """One ranked domain and its TLS/OCSP posture."""

    rank: int
    domain: str
    ca_name: str
    https: bool
    has_ocsp: bool
    stapling: bool
    must_staple: bool


def https_probability(rank: int) -> float:
    """P(HTTPS | rank): ~78% at the top, ~72% at rank 1M."""
    return 0.78 - 0.06 * (rank / ALEXA_POPULATION)


def ocsp_probability(rank: int) -> float:
    """P(OCSP | HTTPS, rank): ~93% at the top, ~89.5% at rank 1M."""
    return 0.93 - 0.035 * (rank / ALEXA_POPULATION)


def stapling_probability(rank: int) -> float:
    """P(Stapling | OCSP, rank): ~45% at the top, ~28% at rank 1M."""
    return 0.45 - 0.17 * (rank / ALEXA_POPULATION)


@dataclass
class AlexaConfig:
    """Parameters for the scaled Alexa model."""

    #: Number of sampled domains (ranks are spread over the full 1M).
    size: int = 20_000
    seed: int = 404
    #: Must-Staple domains in the full population (paper: 100).
    must_staple_population: int = 100


class AlexaModel:
    """A seeded, scaled sample of the Alexa Top-1M."""

    def __init__(self, config: Optional[AlexaConfig] = None,
                 ca_names: Optional[List[str]] = None,
                 ca_weights: Optional[List[float]] = None) -> None:
        self.config = config or AlexaConfig()
        self.records: List[DomainRecord] = []
        self._generate(ca_names, ca_weights)

    @property
    def scale(self) -> float:
        """Real-world domains represented by one record."""
        return ALEXA_POPULATION / self.config.size

    def _generate(self, ca_names: Optional[List[str]],
                  ca_weights: Optional[List[float]]) -> None:
        if ca_names is None:
            from .marketshare import normalized_shares
            shares = normalized_shares()
            ca_names = [s.name for s in shares]
            ca_weights = [s.share for s in shares]
        rng = random.Random(self.config.seed)
        step = ALEXA_POPULATION / self.config.size
        # Scale the Must-Staple count down with the sample.
        staple_quota = max(1, round(self.config.must_staple_population / step))
        staple_candidates: List[int] = []

        for i in range(self.config.size):
            rank = int(i * step) + 1
            https = rng.random() < https_probability(rank)
            has_ocsp = https and rng.random() < ocsp_probability(rank)
            stapling = has_ocsp and rng.random() < stapling_probability(rank)
            ca_name = rng.choices(ca_names, weights=ca_weights)[0] if https else ""
            self.records.append(DomainRecord(
                rank=rank,
                domain=f"rank{rank}.example",
                ca_name=ca_name,
                https=https,
                has_ocsp=has_ocsp,
                stapling=stapling,
                must_staple=False,
            ))
            if has_ocsp:
                staple_candidates.append(i)

        for i in rng.sample(staple_candidates, min(staple_quota, len(staple_candidates))):
            record = self.records[i]
            self.records[i] = DomainRecord(
                rank=record.rank, domain=record.domain,
                ca_name="Lets Encrypt",  # 97.3% of Must-Staple certs
                https=True, has_ocsp=True, stapling=record.stapling,
                must_staple=True,
            )

    # -- selections -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def https_domains(self) -> List[DomainRecord]:
        """Domains serving HTTPS."""
        return [r for r in self.records if r.https]

    def ocsp_domains(self) -> List[DomainRecord]:
        """Domains whose certificates carry an OCSP URL."""
        return [r for r in self.records if r.has_ocsp]

    def stapling_domains(self) -> List[DomainRecord]:
        """Domains observed stapling."""
        return [r for r in self.records if r.stapling]

    def must_staple_domains(self) -> List[DomainRecord]:
        """Domains with Must-Staple certificates."""
        return [r for r in self.records if r.must_staple]
