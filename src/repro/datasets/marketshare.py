"""CA market-share model for the April 2018 certificate ecosystem.

The headline constants reproduce Section 4 of the paper:

* Censys snapshot 2018-04-24: 489,580,002 certificates total,
  112,841,653 valid (trusted by Apple/Microsoft/NSS stores),
* 107,664,132 valid certificates (95.4%) carry an OCSP URL,
* 29,709 (0.02%) carry OCSP Must-Staple, split across exactly four
  CAs: Let's Encrypt 28,919 (97.3%), DFN 716, Comodo 73, UserTrust 1.

Market shares of valid certificates are approximate 2018 values; only
the *ordering* (Let's Encrypt dominant) and the Must-Staple split are
load-bearing for the reproduced analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

# -- paper constants (Section 4) ----------------------------------------------

TOTAL_CERTIFICATES = 489_580_002
VALID_CERTIFICATES = 112_841_653
OCSP_CERTIFICATES = 107_664_132
MUST_STAPLE_CERTIFICATES = 29_709

#: Must-Staple issuance by CA (paper Section 4).
MUST_STAPLE_BY_CA: Dict[str, int] = {
    "Lets Encrypt": 28_919,
    "DFN": 716,
    "Comodo": 73,
    "UserTrust": 1,
}

#: Alexa Top-1M certificates carrying Must-Staple.
ALEXA_MUST_STAPLE = 100

#: Responder population of the Hourly dataset.
HOURLY_RESPONDERS = 536
HOURLY_CERTIFICATES = 14_634

#: Alexa1M dataset: domains supporting HTTPS+OCSP and their responders.
ALEXA_OCSP_CERTIFICATES = 606_367
ALEXA_RESPONDERS = 128


@dataclass(frozen=True)
class CAShare:
    """One CA's slice of the valid-certificate population."""

    name: str
    #: Fraction of valid certificates issued by this CA.
    share: float
    #: Fraction of this CA's certificates carrying an OCSP URL.
    ocsp_rate: float = 1.0
    #: Whether this CA publishes CRLs (Let's Encrypt does not,
    #: footnote 18).
    supports_crl: bool = True
    #: Number of distinct responder hostnames the CA operates.
    responder_hostnames: int = 4
    #: Whether the CA will issue Must-Staple on request.
    offers_must_staple: bool = False


#: Approximate valid-certificate shares, April 2018.
CA_SHARES_2018: List[CAShare] = [
    CAShare("Lets Encrypt", 0.44, ocsp_rate=1.0, supports_crl=False,
            responder_hostnames=2, offers_must_staple=True),
    CAShare("Comodo", 0.18, responder_hostnames=24, offers_must_staple=True),
    CAShare("Digicert", 0.11, responder_hostnames=12),
    CAShare("GoDaddy", 0.06, responder_hostnames=4),
    CAShare("GlobalSign", 0.05, responder_hostnames=6),
    CAShare("Certum", 0.02, responder_hostnames=16),
    CAShare("Sectigo", 0.02, responder_hostnames=4),
    CAShare("Amazon", 0.02, responder_hostnames=4),
    CAShare("DFN", 0.01, responder_hostnames=2, offers_must_staple=True),
    CAShare("UserTrust", 0.01, responder_hostnames=2, offers_must_staple=True),
    CAShare("Identrust", 0.01, responder_hostnames=2),
    CAShare("WoSign", 0.01, responder_hostnames=2),
    CAShare("StartSSL", 0.01, responder_hostnames=2),
    CAShare("TWCA", 0.01, responder_hostnames=2),
    # Long tail of small CAs, some with no OCSP at all — these produce
    # the 4.6% of valid certificates without an OCSP URL.
    CAShare("Other", 0.05, ocsp_rate=0.10, responder_hostnames=8),
]


def ca_share(name: str) -> CAShare:
    """Look up one CA's share entry."""
    for share in CA_SHARES_2018:
        if share.name == name:
            return share
    raise KeyError(name)


def normalized_shares() -> List[CAShare]:
    """Shares rescaled to sum exactly to 1.0."""
    total = sum(share.share for share in CA_SHARES_2018)
    return [
        CAShare(s.name, s.share / total, s.ocsp_rate, s.supports_crl,
                s.responder_hostnames, s.offers_must_staple)
        for s in CA_SHARES_2018
    ]


def expected_ocsp_fraction() -> float:
    """The model's overall P(OCSP | valid) — should be near 0.954."""
    shares = normalized_shares()
    return sum(s.share * s.ocsp_rate for s in shares)


def must_staple_weights() -> Dict[str, float]:
    """P(CA | must-staple) from the paper's exact counts."""
    total = sum(MUST_STAPLE_BY_CA.values())
    return {name: count / total for name, count in MUST_STAPLE_BY_CA.items()}
