"""Minimal HTTP message model for the simulated network.

OCSP-over-HTTP (RFC 6960 appendix A) uses POST with content type
``application/ocsp-request``; the scanner builds those requests and the
responders answer with ``application/ocsp-response`` bodies.  Only the
fields the measurements need are modelled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

OCSP_REQUEST_CONTENT_TYPE = "application/ocsp-request"
OCSP_RESPONSE_CONTENT_TYPE = "application/ocsp-response"


@dataclass
class HTTPRequest:
    """An HTTP request addressed by full URL."""

    method: str
    url: str
    body: bytes = b""
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def host(self) -> str:
        """The hostname from the URL."""
        return split_url(self.url)[1]

    @property
    def path(self) -> str:
        """The path from the URL."""
        return split_url(self.url)[3]


@dataclass
class HTTPResponse:
    """An HTTP response: status code, body, headers."""

    status_code: int
    body: bytes = b""
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def is_success(self) -> bool:
        """True for a 200 response — the paper's definition of a
        *successful request* ("the server responding with HTTP status
        code 200")."""
        return self.status_code == 200


def split_url(url: str) -> Tuple[str, str, Optional[int], str]:
    """Split a URL into (scheme, host, port, path).

    Handles the odd-but-real port syntax the paper encountered
    (``http://ocsp.pki.wayport.net:2560``).
    """
    scheme, separator, rest = url.partition("://")
    if not separator:
        raise ValueError(f"URL has no scheme: {url!r}")
    scheme = scheme.lower()
    host_port, slash, path = rest.partition("/")
    path = "/" + path if slash else "/"
    host, colon, port_text = host_port.partition(":")
    port: Optional[int] = None
    if colon:
        try:
            port = int(port_text)
        except ValueError as exc:
            raise ValueError(f"bad port in URL: {url!r}") from exc
    return scheme, host.lower(), port, path


#: RFC 6960 appendix A.1: requests whose base64 encoding exceeds this
#: many bytes must use POST.
OCSP_GET_LIMIT = 255


def ocsp_post(url: str, request_der: bytes) -> HTTPRequest:
    """Build the HTTP POST carrying an OCSP request, as the paper's
    client did ("issued OCSP requests using the HTTP POST method")."""
    return HTTPRequest(
        method="POST",
        url=url,
        body=request_der,
        headers={"Content-Type": OCSP_REQUEST_CONTENT_TYPE},
    )


def ocsp_get(url: str, request_der: bytes) -> HTTPRequest:
    """Build the GET form of an OCSP request (RFC 6960 appendix A.1).

    The DER request is base64- then URL-encoded into the path:
    ``GET {url}/{url-encoding of base64 of DER}``.  Real clients use
    this for cacheability; requests longer than 255 bytes must fall
    back to POST.
    """
    import base64
    import urllib.parse
    encoded = urllib.parse.quote(base64.b64encode(request_der).decode("ascii"),
                                 safe="")
    base = url if url.endswith("/") else url + "/"
    return HTTPRequest(method="GET", url=base + encoded)


def decode_ocsp_get_path(path: str) -> bytes:
    """Recover the DER OCSP request from a GET path (responder side)."""
    import base64
    import binascii
    import urllib.parse
    encoded = path.rsplit("/", 1)[-1]
    try:
        return base64.b64decode(urllib.parse.unquote(encoded), validate=True)
    except (binascii.Error, ValueError) as exc:
        raise ValueError(f"not a base64 OCSP GET path: {path!r}") from exc


def ocsp_request(url: str, request_der: bytes,
                 prefer_get: bool = False) -> HTTPRequest:
    """Build the OCSP HTTP request, choosing the method per RFC 6960.

    GET when *prefer_get* and the base64 form fits the appendix A.1
    limit (the same ``len*4//3`` bound the client always used), POST
    otherwise.  The one shared chooser for the scanner, the OCSP
    client, and the load generator.
    """
    if prefer_get and len(request_der) * 4 // 3 < OCSP_GET_LIMIT:
        return ocsp_get(url, request_der)
    return ocsp_post(url, request_der)


def ocsp_http_exchange(responder, request: HTTPRequest,
                       now: int) -> HTTPResponse:
    """Adapt HTTP framing onto a transport-neutral responder core.

    Extracts DER request bytes from a POST body or a GET base64 path
    (an undecodable GET path becomes ``request_der=None`` — the core
    answers it with a malformed-request envelope), polices the method,
    and renders the resulting :class:`~repro.ocsp.ResponseArtifact`
    back to HTTP.  Both the in-process simnet services and the
    ``repro.serve`` daemon route through this one function, which is
    what makes their answers byte-identical by construction.
    """
    if request.method == "POST":
        request_der: Optional[bytes] = request.body
    elif request.method == "GET":
        try:
            request_der = decode_ocsp_get_path(request.path)
        except ValueError:
            request_der = None
    else:
        return HTTPResponse(405, b"method not allowed")
    return responder.handle(request_der, now).to_http()


def ocsp_service(responder):
    """Bind a responder core as a simnet Service callable.

    ``network.add_origin(name, region, ocsp_service(responder))`` is
    the one-line replacement for the pre-PR7 ``responder.handle``
    binding.
    """
    def service(request: HTTPRequest, now: int) -> HTTPResponse:
        return ocsp_http_exchange(responder, request, now)
    return service
