"""Minimal HTTP message model for the simulated network.

OCSP-over-HTTP (RFC 6960 appendix A) uses POST with content type
``application/ocsp-request``; the scanner builds those requests and the
responders answer with ``application/ocsp-response`` bodies.  Only the
fields the measurements need are modelled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

OCSP_REQUEST_CONTENT_TYPE = "application/ocsp-request"
OCSP_RESPONSE_CONTENT_TYPE = "application/ocsp-response"


@dataclass
class HTTPRequest:
    """An HTTP request addressed by full URL."""

    method: str
    url: str
    body: bytes = b""
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def host(self) -> str:
        """The hostname from the URL."""
        return split_url(self.url)[1]

    @property
    def path(self) -> str:
        """The path from the URL."""
        return split_url(self.url)[3]


@dataclass
class HTTPResponse:
    """An HTTP response: status code, body, headers."""

    status_code: int
    body: bytes = b""
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def is_success(self) -> bool:
        """True for a 200 response — the paper's definition of a
        *successful request* ("the server responding with HTTP status
        code 200")."""
        return self.status_code == 200


def split_url(url: str) -> Tuple[str, str, Optional[int], str]:
    """Split a URL into (scheme, host, port, path).

    Handles the odd-but-real port syntax the paper encountered
    (``http://ocsp.pki.wayport.net:2560``).
    """
    scheme, separator, rest = url.partition("://")
    if not separator:
        raise ValueError(f"URL has no scheme: {url!r}")
    scheme = scheme.lower()
    host_port, slash, path = rest.partition("/")
    path = "/" + path if slash else "/"
    host, colon, port_text = host_port.partition(":")
    port: Optional[int] = None
    if colon:
        try:
            port = int(port_text)
        except ValueError as exc:
            raise ValueError(f"bad port in URL: {url!r}") from exc
    return scheme, host.lower(), port, path


def ocsp_post(url: str, request_der: bytes) -> HTTPRequest:
    """Build the HTTP POST carrying an OCSP request, as the paper's
    client did ("issued OCSP requests using the HTTP POST method")."""
    return HTTPRequest(
        method="POST",
        url=url,
        body=request_der,
        headers={"Content-Type": OCSP_REQUEST_CONTENT_TYPE},
    )


def ocsp_get(url: str, request_der: bytes) -> HTTPRequest:
    """Build the GET form of an OCSP request (RFC 6960 appendix A.1).

    The DER request is base64- then URL-encoded into the path:
    ``GET {url}/{url-encoding of base64 of DER}``.  Real clients use
    this for cacheability; requests longer than 255 bytes must fall
    back to POST.
    """
    import base64
    import urllib.parse
    encoded = urllib.parse.quote(base64.b64encode(request_der).decode("ascii"),
                                 safe="")
    base = url if url.endswith("/") else url + "/"
    return HTTPRequest(method="GET", url=base + encoded)


def decode_ocsp_get_path(path: str) -> bytes:
    """Recover the DER OCSP request from a GET path (responder side)."""
    import base64
    import binascii
    import urllib.parse
    encoded = path.rsplit("/", 1)[-1]
    try:
        return base64.b64decode(urllib.parse.unquote(encoded), validate=True)
    except (binascii.Error, ValueError) as exc:
        raise ValueError(f"not a base64 OCSP GET path: {path!r}") from exc
