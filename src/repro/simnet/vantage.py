"""Vantage points and the inter-region latency model.

The paper deployed measurement clients in six AWS regions (Section
5.1): Oregon, Virginia, São Paulo, Paris, Sydney, and Seoul.  The
latency matrix below is a symmetric round-trip-time model (milliseconds)
with magnitudes typical of inter-region AWS paths; absolute values only
matter for the latency-shaped analyses, not for any headline figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: The paper's six measurement-client locations (its figure legends' names).
VANTAGE_POINTS: List[str] = [
    "Oregon",
    "Virginia",
    "Sao-Paulo",
    "Paris",
    "Sydney",
    "Seoul",
]

#: Regions where simulated services (responders, web servers) are hosted.
SERVICE_REGIONS: List[str] = [
    "us-west",
    "us-east",
    "south-america",
    "europe",
    "oceania",
    "asia",
]

#: Map vantage point -> nearest service region.
VANTAGE_REGION: Dict[str, str] = {
    "Oregon": "us-west",
    "Virginia": "us-east",
    "Sao-Paulo": "south-america",
    "Paris": "europe",
    "Sydney": "oceania",
    "Seoul": "asia",
}

#: One-way base latencies in milliseconds between region pairs.
_BASE_LATENCY_MS: Dict[Tuple[str, str], float] = {
    ("us-west", "us-west"): 5,
    ("us-west", "us-east"): 35,
    ("us-west", "south-america"): 90,
    ("us-west", "europe"): 70,
    ("us-west", "oceania"): 70,
    ("us-west", "asia"): 60,
    ("us-east", "us-east"): 5,
    ("us-east", "south-america"): 60,
    ("us-east", "europe"): 40,
    ("us-east", "oceania"): 100,
    ("us-east", "asia"): 90,
    ("south-america", "south-america"): 5,
    ("south-america", "europe"): 100,
    ("south-america", "oceania"): 160,
    ("south-america", "asia"): 150,
    ("europe", "europe"): 5,
    ("europe", "oceania"): 140,
    ("europe", "asia"): 120,
    ("oceania", "oceania"): 5,
    ("oceania", "asia"): 65,
    ("asia", "asia"): 5,
}


def one_way_latency_ms(region_a: str, region_b: str) -> float:
    """One-way latency between two service regions in milliseconds."""
    key = (region_a, region_b)
    if key in _BASE_LATENCY_MS:
        return _BASE_LATENCY_MS[key]
    key = (region_b, region_a)
    if key in _BASE_LATENCY_MS:
        return _BASE_LATENCY_MS[key]
    raise KeyError(f"no latency entry for {region_a!r} <-> {region_b!r}")


def rtt_ms(vantage: str, service_region: str) -> float:
    """Round-trip time from a vantage point to a service region."""
    return 2.0 * one_way_latency_ms(VANTAGE_REGION[vantage], service_region)


@dataclass(frozen=True)
class Vantage:
    """A measurement client location with an optional clock skew."""

    name: str
    clock_skew: int = 0

    @property
    def region(self) -> str:
        """The service region this vantage point sits in."""
        return VANTAGE_REGION[self.name]


def default_vantages() -> List[Vantage]:
    """The paper's six vantage points with NTP-synchronized clocks."""
    return [Vantage(name) for name in VANTAGE_POINTS]
