"""The simulated network core.

The model is deliberately shaped like the paper's failure taxonomy for
unsuccessful OCSP requests (Section 5.2): DNS lookup failures
(NXDOMAIN), TCP connection failures, HTTP 4xx/5xx responses, and one
responder serving HTTPS with an invalid certificate.  Transient,
possibly vantage-scoped outages are modelled on *origins* — the shared
serving infrastructure behind one or more hostnames — which reproduces
the Comodo event where eight CNAMEs and six same-IP aliases all failed
together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence, Set

from .http import HTTPRequest, HTTPResponse, split_url
from .vantage import rtt_ms

#: An HTTP service: (request, now) -> HTTPResponse.
Service = Callable[[HTTPRequest, int], HTTPResponse]

#: DNS resolution costs one flat round trip to a resolver.  Shared
#: with :mod:`repro.faults`, whose injected DNS failures bill the same
#: resolver round trip this pipeline does.
DNS_RTT_MS = 20.0


class FailureKind(Enum):
    """Where in the stack a fetch failed (paper Section 5.2 taxonomy)."""

    DNS = "DNS lookup failure (NXDOMAIN)"
    TCP = "unable to establish a TCP connection"
    TLS = "HTTPS URL served with an invalid certificate"
    HTTP = "HTTP status code other than 200"


@dataclass
class FetchResult:
    """Outcome of one simulated HTTP exchange."""

    url: str
    vantage: str
    started_at: int
    elapsed_ms: float
    failure: Optional[FailureKind] = None
    response: Optional[HTTPResponse] = None

    @property
    def ok(self) -> bool:
        """The paper's success criterion: an HTTP 200 came back."""
        return self.failure is None and self.response is not None and self.response.is_success

    @property
    def status_code(self) -> Optional[int]:
        """The HTTP status code, when the exchange got that far."""
        return self.response.status_code if self.response is not None else None


@dataclass
class OutageWindow:
    """A transient outage of an origin.

    *vantages* limits which measurement clients observe it (the paper
    saw region-scoped outages: Digicert visible only from Seoul, Certum
    only from Sydney); None means globally visible.  *kind* is how the
    failure manifests.
    """

    start: int
    end: int
    vantages: Optional[Set[str]] = None
    kind: FailureKind = FailureKind.TCP
    status_code: int = 503

    def applies(self, vantage: str, now: int) -> bool:
        """True when this window is active for *vantage* at *now*."""
        if not self.start <= now < self.end:
            return False
        return self.vantages is None or vantage in self.vantages

    @property
    def duration(self) -> int:
        """Window length in seconds."""
        return self.end - self.start


class Origin:
    """Shared serving infrastructure for one or more hostnames."""

    def __init__(self, name: str, region: str, service: Service) -> None:
        self.name = name
        self.region = region
        self.service = service
        self.outages: List[OutageWindow] = []

    def add_outage(self, window: OutageWindow) -> None:
        """Schedule a transient outage."""
        self.outages.append(window)

    def active_outage(self, vantage: str, now: int) -> Optional[OutageWindow]:
        """The first outage window active for (vantage, now), if any."""
        for window in self.outages:
            if window.applies(vantage, now):
                return window
        return None

    def had_any_outage(self) -> bool:
        """True when at least one outage window was scheduled."""
        return bool(self.outages)


@dataclass
class HostBinding:
    """A hostname bound to an origin, with persistent per-vantage faults.

    Persistent faults reproduce the paper's "never able to make a
    successful request from at least one client" responders: 16 DNS,
    4 TCP, 8 HTTP-error, 1 invalid-HTTPS-certificate.
    """

    hostname: str
    origin: Origin
    dns_fail_vantages: Set[str] = field(default_factory=set)
    tcp_fail_vantages: Set[str] = field(default_factory=set)
    http_error_vantages: Dict[str, int] = field(default_factory=dict)
    https_invalid_cert: bool = False
    #: Optional repair time: persistent faults clear at this timestamp
    #: (the paper notes the wellsfargo responders "were fixed at 11pm,
    #: August 31").
    repaired_at: Optional[int] = None

    def _persists(self, now: int) -> bool:
        return self.repaired_at is None or now < self.repaired_at


#: A background-noise hook: (vantage, origin_name, now) -> failure or None.
NoiseModel = Callable[[str, str, int], Optional[FailureKind]]


class Network:
    """Hostname registry + fetch pipeline with the failure taxonomy."""

    def __init__(self, noise: Optional[NoiseModel] = None) -> None:
        self._origins: Dict[str, Origin] = {}
        self._bindings: Dict[str, HostBinding] = {}
        #: Optional background transient-failure model.  The hourly
        #: scans in the paper show a steady few-percent failure floor
        #: beyond the named outage events; the noise hook injects it.
        self.noise = noise

    # -- topology ------------------------------------------------------------

    def add_origin(self, name: str, region: str, service: Service) -> Origin:
        """Register serving infrastructure."""
        if name in self._origins:
            raise ValueError(f"origin already registered: {name}")
        origin = Origin(name, region, service)
        self._origins[name] = origin
        return origin

    def bind(self, hostname: str, origin: Origin, **kwargs) -> HostBinding:
        """Point *hostname* at *origin* (CNAME/same-IP aliases share origins)."""
        hostname = hostname.lower()
        if hostname in self._bindings:
            raise ValueError(f"hostname already bound: {hostname}")
        binding = HostBinding(hostname=hostname, origin=origin, **kwargs)
        self._bindings[hostname] = binding
        return binding

    def get_origin(self, name: str) -> Origin:
        """Look up an origin by name."""
        return self._origins[name]

    def get_binding(self, hostname: str) -> Optional[HostBinding]:
        """Look up a hostname binding."""
        return self._bindings.get(hostname.lower())

    def origins(self) -> Sequence[Origin]:
        """All registered origins."""
        return list(self._origins.values())

    def hostnames(self) -> Sequence[str]:
        """All bound hostnames."""
        return list(self._bindings)

    # -- the fetch pipeline ----------------------------------------------------

    def fetch(self, vantage: str, request: HTTPRequest, now: int) -> FetchResult:
        """Run one HTTP exchange through DNS → TCP → TLS → HTTP."""
        scheme, host, _port, _path = split_url(request.url)
        rtts = 0.0

        binding = self._bindings.get(host)
        rtts += DNS_RTT_MS
        if binding is None or (
            vantage in binding.dns_fail_vantages and binding._persists(now)
        ):
            return FetchResult(
                url=request.url, vantage=vantage, started_at=now,
                elapsed_ms=rtts, failure=FailureKind.DNS,
            )

        origin = binding.origin
        path_rtt = rtt_ms(vantage, origin.region)

        if self.noise is not None:
            noise_failure = self.noise(vantage, origin.name, now)
            if noise_failure is not None:
                return FetchResult(
                    url=request.url, vantage=vantage, started_at=now,
                    elapsed_ms=rtts + path_rtt, failure=noise_failure,
                )

        outage = origin.active_outage(vantage, now)
        if outage is not None and outage.kind is not FailureKind.HTTP:
            return FetchResult(
                url=request.url, vantage=vantage, started_at=now,
                elapsed_ms=rtts + path_rtt, failure=outage.kind,
            )

        if vantage in binding.tcp_fail_vantages and binding._persists(now):
            return FetchResult(
                url=request.url, vantage=vantage, started_at=now,
                elapsed_ms=rtts + path_rtt, failure=FailureKind.TCP,
            )
        rtts += path_rtt  # TCP handshake

        if scheme == "https":
            rtts += path_rtt  # TLS handshake round trip
            if binding.https_invalid_cert and binding._persists(now):
                return FetchResult(
                    url=request.url, vantage=vantage, started_at=now,
                    elapsed_ms=rtts, failure=FailureKind.TLS,
                )

        rtts += path_rtt  # request/response exchange

        if outage is not None and outage.kind is FailureKind.HTTP:
            response = HTTPResponse(status_code=outage.status_code)
            return FetchResult(
                url=request.url, vantage=vantage, started_at=now,
                elapsed_ms=rtts, failure=FailureKind.HTTP, response=response,
            )

        forced_status = binding.http_error_vantages.get(vantage)
        if forced_status is not None and binding._persists(now):
            response = HTTPResponse(status_code=forced_status)
            return FetchResult(
                url=request.url, vantage=vantage, started_at=now,
                elapsed_ms=rtts, failure=FailureKind.HTTP, response=response,
            )

        response = origin.service(request, now)
        failure = None if response.is_success else FailureKind.HTTP
        return FetchResult(
            url=request.url, vantage=vantage, started_at=now,
            elapsed_ms=rtts, failure=failure, response=response,
        )
