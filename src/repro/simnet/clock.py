"""Simulated time.

Every component in the reproduction reads time from a
:class:`SimulatedClock` rather than the wall clock, so four months of
hourly scans (the paper's April 25 - September 4, 2018 Hourly dataset)
replay in milliseconds and deterministically.

Timestamps are POSIX seconds.  Named constants pin the paper's
measurement period.
"""

from __future__ import annotations

import calendar

#: Seconds per hour/day/week, used throughout the scanners.
HOUR = 3600
DAY = 86400
WEEK = 7 * DAY


def at(year: int, month: int, day: int, hour: int = 0, minute: int = 0,
       second: int = 0) -> int:
    """Build a POSIX timestamp from a UTC calendar date."""
    return calendar.timegm((year, month, day, hour, minute, second, 0, 0, 0))


#: Paper's Hourly dataset measurement window.
MEASUREMENT_START = at(2018, 4, 25)
MEASUREMENT_END = at(2018, 9, 4)

#: Censys snapshot date used in Section 4.
CENSYS_SNAPSHOT = at(2018, 4, 24)

#: Alexa1M one-shot scan date (Section 5.1).
ALEXA_SCAN_DATE = at(2018, 5, 1)


class SimulatedClock:
    """A monotonically advancing simulated clock."""

    def __init__(self, start: int = MEASUREMENT_START) -> None:
        self._now = int(start)

    def now(self) -> int:
        """The current simulated POSIX time."""
        return self._now

    def advance(self, seconds: int) -> int:
        """Move time forward; rejects negative steps."""
        if seconds < 0:
            raise ValueError("the simulated clock cannot move backwards")
        self._now += int(seconds)
        return self._now

    def advance_to(self, timestamp: int) -> int:
        """Jump forward to an absolute time (no-op when already past)."""
        if timestamp > self._now:
            self._now = int(timestamp)
        return self._now

    def __repr__(self) -> str:
        return f"SimulatedClock({self._now})"


class SkewedClock:
    """A read-only view of another clock with a fixed offset.

    Models the "clients with slightly slow clocks" of Section 5.4's
    premature-thisUpdate analysis: a client whose clock runs behind by
    ``skew`` seconds will reject zero-margin responses.
    """

    def __init__(self, base: SimulatedClock, skew: int) -> None:
        self._base = base
        self.skew = int(skew)

    def now(self) -> int:
        """Base time shifted by the skew (negative skew = slow clock)."""
        return self._base.now() + self.skew
