"""A deterministic, discrete-time network simulator.

Provides the substrate the paper's active measurements ran on: a
simulated clock spanning the April-September 2018 measurement window,
six AWS-region vantage points with a latency matrix, and a fetch
pipeline whose failure taxonomy (DNS / TCP / TLS-cert / HTTP-status)
matches Section 5.2 of the paper.
"""

from .clock import (
    ALEXA_SCAN_DATE,
    CENSYS_SNAPSHOT,
    DAY,
    HOUR,
    MEASUREMENT_END,
    MEASUREMENT_START,
    WEEK,
    SimulatedClock,
    SkewedClock,
    at,
)
from .http import (
    OCSP_GET_LIMIT,
    OCSP_REQUEST_CONTENT_TYPE,
    OCSP_RESPONSE_CONTENT_TYPE,
    HTTPRequest,
    HTTPResponse,
    decode_ocsp_get_path,
    ocsp_get,
    ocsp_http_exchange,
    ocsp_post,
    ocsp_request,
    ocsp_service,
    split_url,
)
from .network import (
    DNS_RTT_MS,
    FailureKind,
    FetchResult,
    HostBinding,
    Network,
    Origin,
    OutageWindow,
)
from .vantage import (
    SERVICE_REGIONS,
    VANTAGE_POINTS,
    VANTAGE_REGION,
    Vantage,
    default_vantages,
    one_way_latency_ms,
    rtt_ms,
)

__all__ = [
    "ALEXA_SCAN_DATE",
    "CENSYS_SNAPSHOT",
    "DAY",
    "HOUR",
    "MEASUREMENT_END",
    "MEASUREMENT_START",
    "WEEK",
    "DNS_RTT_MS",
    "FailureKind",
    "FetchResult",
    "HTTPRequest",
    "HTTPResponse",
    "HostBinding",
    "Network",
    "OCSP_GET_LIMIT",
    "OCSP_REQUEST_CONTENT_TYPE",
    "OCSP_RESPONSE_CONTENT_TYPE",
    "Origin",
    "OutageWindow",
    "SERVICE_REGIONS",
    "SimulatedClock",
    "SkewedClock",
    "VANTAGE_POINTS",
    "VANTAGE_REGION",
    "Vantage",
    "at",
    "default_vantages",
    "decode_ocsp_get_path",
    "ocsp_get",
    "ocsp_http_exchange",
    "ocsp_post",
    "ocsp_request",
    "ocsp_service",
    "one_way_latency_ms",
    "rtt_ms",
    "split_url",
]
