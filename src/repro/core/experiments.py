"""The experiment registry: every paper artefact, programmatically.

Maps each table/figure (and extension study) to its paper reference,
the modules implementing it, and the benchmark that regenerates it —
the machine-readable version of DESIGN.md's experiment index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from ..refs import is_ref, resolve_ref


@dataclass(frozen=True)
class Experiment:
    """One reproducible artefact."""

    experiment_id: str
    title: str
    paper_ref: str
    modules: Tuple[str, ...]
    benchmark: str
    workload: str
    #: Literal ``module:function`` entrypoint consumed by
    #: :func:`repro.runtime.run_experiment`.  Always a plain string
    #: literal in the registry source (never built at runtime), so the
    #: effect analyzer (:mod:`repro.analyze`) discovers and certifies
    #: every runner statically.
    runner: str = ""

    def resolve_runner(self) -> Callable:
        """Import and return this experiment's runner function."""
        if not self.runner:
            raise ValueError(
                f"experiment {self.experiment_id!r} has no runner")
        return resolve_ref(self.runner)


_EXPERIMENTS: List[Experiment] = [
    Experiment(
        "sec4-deployment", "Deployment of OCSP and Must-Staple", "Section 4",
        ("repro.datasets.corpus", "repro.core.adoption"),
        "benchmarks/test_sec4_deployment.py",
        "seeded Censys-substitute corpus (20k records ~ 112.8M certs)",
        runner="repro.runtime.runners:run_sec4_deployment",
    ),
    Experiment(
        "fig2", "OCSP adoption vs website popularity", "Figure 2",
        ("repro.datasets.alexa", "repro.core.adoption"),
        "benchmarks/test_fig2_adoption.py",
        "Alexa model, 10,000-rank bins",
        runner="repro.runtime.runners:run_fig2",
    ),
    Experiment(
        "fig3", "Fraction of successful OCSP requests over time", "Figure 3",
        ("repro.datasets.world", "repro.scanner.hourly", "repro.core.availability"),
        "benchmarks/test_fig3_availability.py",
        "134 responders x 2 certs x 6 vantages, Apr 25 - Sep 4 2018",
        runner="repro.runtime.runners:run_fig3",
    ),
    Experiment(
        "fig4", "Alexa domains unable to fetch OCSP", "Figure 4",
        ("repro.scanner.alexa_scan", "repro.datasets.world"),
        "benchmarks/test_fig4_outage_impact.py",
        "606,367 Alexa OCSP domains mapped onto the responder world",
        runner="repro.runtime.runners:run_fig4",
    ),
    Experiment(
        "fig5", "Unusable responses by error class", "Figure 5",
        ("repro.ocsp.verify", "repro.core.quality"),
        "benchmarks/test_fig5_validity.py",
        "hourly scan + malformed/serial/signature classification",
        runner="repro.runtime.runners:run_fig5",
    ),
    Experiment(
        "fig6", "Certificates per OCSP response (CDF)", "Figure 6",
        ("repro.core.quality",),
        "benchmarks/test_fig6_certs_per_response.py",
        "per-responder averages over the hourly scan",
        runner="repro.runtime.runners:run_fig6",
    ),
    Experiment(
        "fig7", "Serial numbers per OCSP response (CDF)", "Figure 7",
        ("repro.core.quality",),
        "benchmarks/test_fig7_serials_per_response.py",
        "per-responder averages over the hourly scan",
        runner="repro.runtime.runners:run_fig7",
    ),
    Experiment(
        "fig8", "Validity period CDF", "Figure 8",
        ("repro.core.quality",),
        "benchmarks/test_fig8_validity_period.py",
        "per-responder validity periods; blank nextUpdate = infinity",
        runner="repro.runtime.runners:run_fig8",
    ),
    Experiment(
        "fig9", "thisUpdate margin CDF", "Figure 9",
        ("repro.core.quality",),
        "benchmarks/test_fig9_thisupdate_margin.py",
        "received-minus-thisUpdate per responder, NTP-synced clients",
        runner="repro.runtime.runners:run_fig9",
    ),
    Experiment(
        "tbl1", "CRL vs OCSP revocation-status discrepancies", "Table 1",
        ("repro.scanner.consistency", "repro.ca.registry"),
        "benchmarks/test_table1_discrepancy.py",
        "1:40-scaled 728,261 revoked serials across 7+ CAs",
        runner="repro.runtime.runners:run_tbl1",
    ),
    Experiment(
        "fig10", "OCSP-vs-CRL revocation time deltas", "Figure 10",
        ("repro.scanner.consistency",),
        "benchmarks/test_fig10_revocation_time.py",
        "same cross-check; msocsp lag, negative tail, 4-year extreme",
        runner="repro.runtime.runners:run_fig10",
    ),
    Experiment(
        "tbl2", "Browser Must-Staple support matrix", "Table 2",
        ("repro.browser",),
        "benchmarks/test_table2_browsers.py",
        "16 browser/OS combos vs a staple-less Must-Staple site",
        runner="repro.runtime.runners:run_tbl2",
    ),
    Experiment(
        "fig11", "OCSP Stapling adoption vs popularity", "Figure 11",
        ("repro.datasets.alexa", "repro.core.adoption"),
        "benchmarks/test_fig11_stapling_adoption.py",
        "Alexa model, 10,000-rank bins",
        runner="repro.runtime.runners:run_fig11",
    ),
    Experiment(
        "fig12", "Adoption over time (May 2016 - Sep 2018)", "Figure 12",
        ("repro.datasets.history", "repro.core.adoption"),
        "benchmarks/test_fig12_adoption_history.py",
        "monthly snapshots incl. the June-2017 Cloudflare jump",
        runner="repro.runtime.runners:run_fig12",
    ),
    Experiment(
        "tbl3", "Web server stapling conformance", "Table 3",
        ("repro.webserver",),
        "benchmarks/test_table3_webservers.py",
        "4 experiments x {Apache, Nginx, ideal}",
        runner="repro.runtime.runners:run_tbl3",
    ),
    Experiment(
        "sec5-freshness", "On-demand generation & non-overlap", "Section 5.4",
        ("repro.core.quality",),
        "benchmarks/test_sec5_freshness.py",
        "producedAt-vs-receipt analysis over the hourly scan",
        runner="repro.runtime.runners:run_sec5_freshness",
    ),
    Experiment(
        "sec8-readiness", "The readiness verdict", "Section 8",
        ("repro.core.report",),
        "benchmarks/test_sec8_readiness.py",
        "all principals combined",
        runner="repro.runtime.runners:run_sec8_readiness",
    ),
    # Extensions beyond the paper's evaluation.
    Experiment(
        "ext-multistaple", "RFC 6961 multi-stapling (chain statuses)",
        "Section 2.3 (extension)",
        ("repro.webserver.multistaple",),
        "benchmarks/test_ext_multistaple.py",
        "revoked-intermediate detection with/without status_request_v2",
        runner="repro.runtime.runners:run_ext_multistaple",
    ),
    Experiment(
        "ext-attack-window", "Replay/strip attack windows",
        "Sections 2.3 & 5.4 (extension)",
        ("repro.core.attacks",),
        "benchmarks/test_ext_attack_window.py",
        "attack window vs staple validity period, per browser policy",
        runner="repro.runtime.runners:run_ext_attack_window",
    ),
    Experiment(
        "ext-latency", "OCSP lookup latency, direct vs CDN-fronted",
        "Section 3 (Stark 291 ms vs Zhu 20 ms)",
        ("repro.core.latency", "repro.scanner.cdn"),
        "benchmarks/test_ext_latency.py",
        "24 simulated hours of lookups from six vantages",
        runner="repro.runtime.runners:run_ext_latency",
    ),
    Experiment(
        "ext-alternatives", "Revocation mechanism exposure windows",
        "Section 3 (extension)",
        ("repro.core.alternatives",),
        "benchmarks/test_ext_alternatives.py",
        "CRL vs OCSP vs Must-Staple vs short-lived certificates",
        runner="repro.runtime.runners:run_ext_alternatives",
    ),
    Experiment(
        "ext-whatif", "Universal Must-Staple enforcement on today's stack",
        "Section 8 ordering argument (extension)",
        ("repro.core.whatif",),
        "benchmarks/test_ext_deployment_whatif.py",
        "fleet of Must-Staple sites x {Apache, Nginx, ideal} x flaky responders",
        runner="repro.runtime.runners:run_ext_whatif",
    ),
    Experiment(
        "ext-response-size", "Response size vs embedded certificates",
        "Figure 6 discussion (extension)",
        ("repro.core.quality",),
        "benchmarks/test_ext_response_size.py",
        "per-responder response sizes over the hourly scan",
        runner="repro.runtime.runners:run_ext_response_size",
    ),
    Experiment(
        "abl-apache-patch", "Apache with the reported bugs fixed",
        "Section 7.2 / Bugzilla #62400 ablation",
        ("repro.webserver.apache",),
        "benchmarks/test_ablation_apache_patch.py",
        "conformance + outage lockout, stock vs patched",
        runner="repro.runtime.runners:run_abl_apache_patch",
    ),
    Experiment(
        "abl-parser", "Strict vs lenient DER parsing", "DESIGN ablation",
        ("repro.asn1.decoder",),
        "benchmarks/test_ablation_parser.py",
        "garbage corpus + BER-tolerance probes",
        runner="repro.runtime.runners:run_abl_parser",
    ),
    Experiment(
        "abl-keysize", "RSA key size", "DESIGN ablation",
        ("repro.crypto.rsa",),
        "benchmarks/test_ablation_keysize.py",
        "512/1024/2048-bit sign/verify semantics and cost",
        runner="repro.runtime.runners:run_abl_keysize",
    ),
    Experiment(
        "chaos-availability", "Availability under injected fault scenarios",
        "Figures 3-4 (chaos extension)",
        ("repro.faults.scenarios", "repro.faults.experiments",
         "repro.scanner.hourly"),
        "benchmarks/test_chaos_availability.py",
        "hourly scan x {baseline, brownout, blackout, tail-latency, stale}",
        runner="repro.runtime.runners:run_chaos_availability",
    ),
    Experiment(
        "chaos-client-outcomes", "Client policies under fault scenarios",
        "Tables 2 & Section 8 (chaos extension)",
        ("repro.faults.policy", "repro.faults.experiments",
         "repro.ocsp.client"),
        "benchmarks/test_chaos_client_outcomes.py",
        "scenario x {soft-fail, Must-Staple hard-fail, no-check} grid",
        runner="repro.runtime.runners:run_chaos_client_outcomes",
    ),
    Experiment(
        "hostile-corpus", "Parser survival under structure-aware mutation",
        "Figure 5 'malformed response' (robustness extension)",
        ("repro.hostile.mutate", "repro.hostile.corpus",
         "repro.asn1.decoder", "repro.lint.engine", "repro.ocsp.verify"),
        "benchmarks/test_hostile_corpus.py",
        "seeded DER mutants x {certificate, OCSP, CRL} x parse/lint/verify",
        runner="repro.runtime.runners:run_hostile_corpus",
    ),
    Experiment(
        "serve-loadtest", "Responder daemon byte-identity and throughput",
        "Section 6 responder-side serving (daemon extension)",
        ("repro.serve.app", "repro.serve.cache", "repro.serve.batcher",
         "repro.serve.loadgen", "repro.ca.responder"),
        "benchmarks/test_serve_loadtest.py",
        "seeded traffic x {daemon path, in-process core} identity + warm-cache load",
        runner="repro.runtime.runners:run_serve_loadtest",
    ),
    Experiment(
        "monitor-convergence", "Streaming reducer merges vs batch pipeline",
        "Section 5.2 availability (streaming-monitor extension)",
        ("repro.monitor.events", "repro.monitor.reducers",
         "repro.monitor.replay", "repro.core.availability"),
        "benchmarks/test_monitor_replay.py",
        "event-log partitions x {forward, backward} merge folds vs batch digests",
        runner="repro.runtime.runners:run_monitor_convergence",
    ),
]

#: Every entry must carry a literal, well-formed runner ref — checked
#: at import time so a malformed registry can never reach execution.
for _entry in _EXPERIMENTS:
    if not is_ref(_entry.runner):
        raise ValueError(
            f"experiment {_entry.experiment_id!r} has a malformed runner "
            f"ref: {_entry.runner!r}")
del _entry


def all_experiments() -> List[Experiment]:
    """Every registered experiment, paper order first."""
    return list(_EXPERIMENTS)


def experiment(experiment_id: str) -> Experiment:
    """Look up one experiment by id."""
    for entry in _EXPERIMENTS:
        if entry.experiment_id == experiment_id:
            return entry
    raise KeyError(experiment_id)


def paper_artefacts() -> List[Experiment]:
    """Just the paper's own tables/figures/sections."""
    return [e for e in _EXPERIMENTS
            if not e.experiment_id.startswith(("ext-", "abl-"))]


def index_table() -> str:
    """Render the registry as a text table (used by the CLI)."""
    from .render import render_table
    return render_table(
        ["id", "paper ref", "benchmark"],
        [[e.experiment_id, e.paper_ref, e.benchmark] for e in _EXPERIMENTS],
        title="Experiment index",
    )
