"""Small statistics helpers shared by the figure analyses."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, fraction ≤ value) points.

    Infinite values (blank nextUpdate validity periods) sort last and
    appear at y=1.0, matching how the paper plots "infinite seconds".
    """
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    points = []
    for index, value in enumerate(ordered, start=1):
        points.append((value, index / n))
    return points


def fraction_at_or_below(values: Sequence[float], threshold: float) -> float:
    """CDF evaluated at *threshold*."""
    if not values:
        return 0.0
    return sum(1 for v in values if v <= threshold) / len(values)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for empty input)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    """Median (0.0 for empty input)."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile, q in [0, 100]."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError(f"percentile out of range: {q}")
    rank = max(1, math.ceil(q / 100 * len(ordered)))
    return ordered[rank - 1]


def bin_by(pairs: Iterable[Tuple[int, float]], bin_width: int
           ) -> Dict[int, List[float]]:
    """Group (key, value) pairs into fixed-width key bins."""
    bins: Dict[int, List[float]] = {}
    for key, value in pairs:
        bins.setdefault((key // bin_width) * bin_width, []).append(value)
    return bins


def binned_counts(items: Iterable[Tuple[int, bool]], bin_width: int
                  ) -> Dict[int, List[int]]:
    """Per-bin ``[true_count, total]`` pairs — the mergeable form.

    Counts merge associatively (see :func:`merge_binned_counts`), so
    partitions of the input reduce independently; the percentage is
    taken once, by :func:`fraction_points`, which is what lets the
    streaming monitor reproduce the batch curves byte-identically.
    """
    bins: Dict[int, List[int]] = {}
    for key, flag in items:
        bucket = bins.setdefault((key // bin_width) * bin_width, [0, 0])
        bucket[0] += bool(flag)
        bucket[1] += 1
    return bins


def merge_binned_counts(left: Dict[int, Sequence[int]],
                        right: Dict[int, Sequence[int]]
                        ) -> Dict[int, List[int]]:
    """Key-wise sum of two bin-count mappings, into a fresh dict."""
    merged = {start: list(counts) for start, counts in left.items()}
    for start, (true_count, total) in right.items():
        bucket = merged.setdefault(start, [0, 0])
        bucket[0] += true_count
        bucket[1] += total
    return merged


def fraction_points(bins: Dict[int, Sequence[int]]
                    ) -> List[Tuple[int, float]]:
    """Bin counts as sorted (bin_start, percentage) curve points."""
    return [
        (start, 100.0 * true_count / total)
        for start, (true_count, total) in sorted(bins.items())
    ]


def binned_fraction(items: Iterable[Tuple[int, bool]], bin_width: int
                    ) -> List[Tuple[int, float]]:
    """Per-bin fraction of True values, as sorted (bin_start, pct) points.

    This is the Figure-2/11 primitive: bucket domains by rank into
    10,000-rank bins and compute the percentage satisfying a predicate.
    """
    return fraction_points(binned_counts(items, bin_width))
