"""Figure/table data generation — the reproduction's "data release".

The paper promises "we will be making our code and data publicly
available"; this module is that artifact's generator.  It runs every
analysis at a configurable scale and writes one machine-readable file
per paper artefact into an output directory:

    from repro.core.figures import FigureScale, generate_all
    written = generate_all("results/", FigureScale.small())

Exposed through the CLI as ``python -m repro figures --out results/``.
"""

from __future__ import annotations

import csv
import math
import os
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..simnet import DAY, HOUR, MEASUREMENT_START


@dataclass
class FigureScale:
    """How big a campaign to run for the data files."""

    n_responders: int = 70
    certs_per_responder: int = 1
    scan_days: int = 7
    scan_interval: int = 12 * HOUR
    alexa_size: int = 8_000
    corpus_size: int = 8_000
    consistency_scale: int = 200
    seed: int = 7

    @classmethod
    def small(cls) -> "FigureScale":
        """Finishes in well under a minute."""
        return cls()

    @classmethod
    def full(cls) -> "FigureScale":
        """The benchmark-suite scale (minutes)."""
        return cls(n_responders=134, certs_per_responder=2, scan_days=132,
                   scan_interval=DAY, alexa_size=20_000, corpus_size=20_000,
                   consistency_scale=40)


def _write_csv(path: str, header: List[str], rows) -> None:
    with open(path, "w", newline="") as stream:
        writer = csv.writer(stream)
        writer.writerow(header)
        writer.writerows(rows)


def _write_text(path: str, text: str) -> None:
    with open(path, "w") as stream:
        stream.write(text if text.endswith("\n") else text + "\n")


def generate_all(outdir: str, scale: Optional[FigureScale] = None) -> List[str]:
    """Generate every artefact's data file; returns the written paths."""
    scale = scale or FigureScale.small()
    os.makedirs(outdir, exist_ok=True)
    written: List[str] = []

    def out(name: str) -> str:
        path = os.path.join(outdir, name)
        written.append(path)
        return path

    # --- corpora / models -----------------------------------------------------
    from ..browser import run_browser_tests
    from ..datasets import (AlexaConfig, AlexaModel, CertificateCorpus,
                            CorpusConfig, MeasurementWorld, WorldConfig)
    from ..scanner import (AlexaAvailability, ConsistencyConfig,
                           ConsistencyWorld, HourlyScanner,
                           run_consistency_scan)
    from ..webserver import (ApacheServer, EXPERIMENTS, IdealServer,
                             NginxServer, run_conformance)
    from .adoption import (deployment_stats, figure2_adoption,
                           figure11_adoption, figure12_history)
    from .availability import analyze_availability
    from .quality import (certificates_cdf, margin_cdf, responder_quality,
                          serials_cdf, validity_cdf, validity_series)
    from .render import render_table

    alexa = AlexaModel(AlexaConfig(size=scale.alexa_size, seed=scale.seed))
    corpus = CertificateCorpus(CorpusConfig(size=scale.corpus_size,
                                            seed=scale.seed))
    world = MeasurementWorld(WorldConfig(
        n_responders=scale.n_responders,
        certs_per_responder=scale.certs_per_responder, seed=scale.seed))
    scanner = HourlyScanner(world, interval=scale.scan_interval)
    dataset = scanner.run(MEASUREMENT_START,
                          MEASUREMENT_START + scale.scan_days * DAY)

    # --- Section 4 --------------------------------------------------------------
    stats = deployment_stats(corpus)
    boost = corpus.config.must_staple_boost
    _write_text(out("sec4_deployment.txt"), render_table(
        ["metric", "value"],
        [["ocsp_fraction", f"{stats.ocsp_fraction:.4f}"],
         ["must_staple_fraction_unboosted",
          f"{stats.must_staple_fraction / boost:.6f}"],
         *[[f"must_staple_share[{name}]", f"{share:.4f}"]
           for name, share in stats.must_staple_ca_shares().items()]],
    ))

    # --- Figures 2 and 11 --------------------------------------------------------
    fig2 = figure2_adoption(alexa, bin_width=50_000)
    _write_csv(out("fig2_adoption.csv"),
               ["rank_bin", "https_pct", "ocsp_pct"],
               [(bin_start, f"{https:.2f}", f"{ocsp:.2f}")
                for (bin_start, https), (_, ocsp) in zip(
                    fig2.curves["Domains with certificate"],
                    fig2.curves["Certificates with OCSP responder"])])
    fig11 = figure11_adoption(alexa, bin_width=50_000)
    _write_csv(out("fig11_stapling_adoption.csv"),
               ["rank_bin", "stapling_pct"],
               [(b, f"{pct:.2f}") for b, pct in
                fig11.curves["OCSP domains that support OCSP Stapling"]])

    # --- Figure 3 ----------------------------------------------------------------
    availability = analyze_availability(dataset)
    _write_csv(out("fig3_availability.csv"),
               ["timestamp", "vantage", "success_pct"],
               [(ts, vantage, f"{pct:.3f}")
                for vantage, points in availability.success_series.items()
                for ts, pct in points])

    # --- Figure 4 ----------------------------------------------------------------
    alexa_availability = AlexaAvailability(world, seed=scale.seed + 4)
    times = [MEASUREMENT_START + day * DAY
             for day in range(0, scale.scan_days, max(1, scale.scan_days // 8))]
    series = alexa_availability.series(times)
    _write_csv(out("fig4_domains_unable.csv"),
               ["timestamp", "vantage", "domains_unable"],
               [(ts, vantage, f"{count:.0f}")
                for vantage, points in series.items()
                for ts, count in points])

    # --- Figure 5 ----------------------------------------------------------------
    fig5 = validity_series(dataset)
    _write_csv(out("fig5_unusable.csv"),
               ["timestamp", "error_class", "pct"],
               [(ts, outcome.name, f"{pct:.4f}")
                for outcome, points in fig5.series.items()
                for ts, pct in points])

    # --- Figures 6-9 ---------------------------------------------------------------
    qualities = responder_quality(dataset)
    for name, cdf in (("fig6_certs_cdf", certificates_cdf(qualities)),
                      ("fig7_serials_cdf", serials_cdf(qualities)),
                      ("fig8_validity_cdf", validity_cdf(qualities)),
                      ("fig9_margin_cdf", margin_cdf(qualities))):
        _write_csv(out(f"{name}.csv"), ["value", "cdf"],
                   [("inf" if value == math.inf else value, f"{fraction:.4f}")
                    for value, fraction in cdf])

    # --- Table 1 / Figure 10 ---------------------------------------------------------
    consistency = run_consistency_scan(ConsistencyWorld(
        ConsistencyConfig(scale=scale.consistency_scale, seed=scale.seed)))
    _write_text(out("table1_discrepancies.txt"), render_table(
        ["ocsp_url", "unknown", "good", "revoked"],
        [[row.ocsp_url, row.unknown, row.good, row.revoked]
         for row in consistency.discrepant_rows()]))
    _write_csv(out("fig10_time_deltas.csv"),
               ["ocsp_url", "serial", "delta_seconds"],
               [(d.ocsp_url, d.serial_number, d.delta)
                for d in consistency.time_deltas if d.delta != 0])

    # --- Table 2 -------------------------------------------------------------------
    browser_report = run_browser_tests()
    _write_text(out("table2_browsers.txt"), render_table(
        ["browser", "request_ocsp", "respect_must_staple", "own_ocsp"],
        [[row.policy.label, *row.cells().values()]
         for row in browser_report.rows]))

    # --- Figure 12 ------------------------------------------------------------------
    history = figure12_history()
    _write_csv(out("fig12_history.csv"),
               ["month", "ocsp_pct", "stapling_pct", "cloudflare_domains"],
               [(s.label, s.ocsp_pct, s.stapling_pct,
                 s.cloudflare_stapling_domains) for s in history.snapshots])

    # --- Table 3 -------------------------------------------------------------------
    rows = []
    for server_class in (ApacheServer, NginxServer, IdealServer):
        report = run_conformance(server_class)
        cells = report.as_row()
        rows.append([report.software, *[cells[name] for name in EXPERIMENTS]])
    _write_text(out("table3_webservers.txt"),
                render_table(["software", *EXPERIMENTS], rows))

    return written
