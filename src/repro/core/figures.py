"""Figure/table data generation — the reproduction's "data release".

The paper promises "we will be making our code and data publicly
available"; this module is that artifact's generator.  It runs every
analysis at a configurable scale and writes one machine-readable file
per paper artefact into an output directory:

    from repro.core.figures import FigureScale, generate_all
    written = generate_all("results/", FigureScale.small())

Every artefact is produced through :func:`repro.runtime.run_experiment`,
so the heavy inputs are shared: Figures 3 and 5-9 read one scan
campaign's shards from the artifact cache, and Table 1 / Figure 10
share one consistency cross-check.  Exposed through the CLI as
``python -m repro figures --out results/``.
"""

from __future__ import annotations

import csv
import os
import tempfile
from dataclasses import dataclass
from typing import List, Optional

from ..simnet import DAY, HOUR


@dataclass
class FigureScale:
    """How big a campaign to run for the data files."""

    n_responders: int = 70
    certs_per_responder: int = 1
    scan_days: int = 7
    scan_interval: int = 12 * HOUR
    alexa_size: int = 8_000
    corpus_size: int = 8_000
    consistency_scale: int = 200
    seed: int = 7

    @classmethod
    def small(cls) -> "FigureScale":
        """Finishes in well under a minute."""
        return cls()

    @classmethod
    def full(cls) -> "FigureScale":
        """The benchmark-suite scale (minutes)."""
        return cls(n_responders=134, certs_per_responder=2, scan_days=132,
                   scan_interval=DAY, alexa_size=20_000, corpus_size=20_000,
                   consistency_scale=40)


def _write_csv(path: str, header: List[str], rows) -> None:
    with open(path, "w", newline="") as stream:
        writer = csv.writer(stream)
        writer.writerow(header)
        writer.writerows(rows)


def _write_text(path: str, text: str) -> None:
    with open(path, "w") as stream:
        stream.write(text if text.endswith("\n") else text + "\n")


def generate_all(outdir: str, scale: Optional[FigureScale] = None,
                 workers: int = 1,
                 cache_dir: Optional[str] = None) -> List[str]:
    """Generate every artefact's data file; returns the written paths.

    *workers* parallelizes shard execution (same bytes at any count).
    Without an explicit *cache_dir* a private temporary cache still
    backs the run, so the scan campaign that feeds Figures 3 and 5-9
    executes exactly once.
    """
    if cache_dir is None:
        with tempfile.TemporaryDirectory(prefix="repro-figures-") as tmp:
            return _generate_all(outdir, scale, workers, tmp)
    return _generate_all(outdir, scale, workers, cache_dir)


def _generate_all(outdir: str, scale: Optional[FigureScale],
                  workers: int, cache_dir: str) -> List[str]:
    from ..runtime import ConsistencyRunConfig, run_experiment
    from ..webserver import EXPERIMENTS
    from .render import render_table

    scale = scale or FigureScale.small()
    os.makedirs(outdir, exist_ok=True)
    written: List[str] = []

    def out(name: str) -> str:
        path = os.path.join(outdir, name)
        written.append(path)
        return path

    def run(experiment_id: str, config=None):
        return run_experiment(experiment_id, config=config, workers=workers,
                              cache=True, cache_dir=cache_dir, scale=scale)

    # --- Section 4 --------------------------------------------------------------
    sec4 = run("sec4-deployment")

    def _sec4_cell(row) -> str:
        if row["metric"] == "must_staple_fraction_unboosted":
            return f"{row['value']:.6f}"
        return f"{row['value']:.4f}"

    _write_text(out("sec4_deployment.txt"), render_table(
        ["metric", "value"],
        [[row["metric"], _sec4_cell(row)] for row in sec4.rows],
    ))

    # --- Figures 2 and 11 --------------------------------------------------------
    fig2 = run("fig2")
    _write_csv(out("fig2_adoption.csv"),
               ["rank_bin", "https_pct", "ocsp_pct"],
               [(row["rank_bin"], f"{row['https_pct']:.2f}",
                 f"{row['ocsp_pct']:.2f}") for row in fig2.rows])
    fig11 = run("fig11")
    _write_csv(out("fig11_stapling_adoption.csv"),
               ["rank_bin", "stapling_pct"],
               [(row["rank_bin"], f"{row['stapling_pct']:.2f}")
                for row in fig11.rows])

    # --- Figure 3 ----------------------------------------------------------------
    fig3 = run("fig3")
    _write_csv(out("fig3_availability.csv"),
               ["timestamp", "vantage", "success_pct"],
               [(row["timestamp"], row["vantage"], f"{row['success_pct']:.3f}")
                for row in fig3.rows])

    # --- Figure 4 ----------------------------------------------------------------
    fig4 = run("fig4")
    _write_csv(out("fig4_domains_unable.csv"),
               ["timestamp", "vantage", "domains_unable"],
               [(row["ts"], row["vantage"], f"{row['unable']:.0f}")
                for row in fig4.rows])

    # --- Figure 5 ----------------------------------------------------------------
    fig5 = run("fig5")
    _write_csv(out("fig5_unusable.csv"),
               ["timestamp", "error_class", "pct"],
               [(row["timestamp"], row["error_class"], f"{row['pct']:.4f}")
                for row in fig5.rows])

    # --- Figures 6-9 ---------------------------------------------------------------
    for experiment_id, name in (("fig6", "fig6_certs_cdf"),
                                ("fig7", "fig7_serials_cdf"),
                                ("fig8", "fig8_validity_cdf"),
                                ("fig9", "fig9_margin_cdf")):
        result = run(experiment_id)
        # to_dict() maps the Figure-8 blank-nextUpdate infinity to "inf".
        document = result.to_dict()
        _write_csv(out(f"{name}.csv"), ["value", "cdf"],
                   [(row["value"], f"{row['cdf']:.4f}")
                    for row in document["rows"]])

    # --- Table 1 / Figure 10 ---------------------------------------------------------
    consistency_config = ConsistencyRunConfig(scale=scale.consistency_scale,
                                              seed=scale.seed)
    tbl1 = run("tbl1", config=consistency_config)
    _write_text(out("table1_discrepancies.txt"), render_table(
        ["ocsp_url", "unknown", "good", "revoked"],
        [[row["ocsp_url"], row["unknown"], row["good"], row["revoked"]]
         for row in tbl1.rows]))
    fig10 = run("fig10", config=consistency_config)
    _write_csv(out("fig10_time_deltas.csv"),
               ["ocsp_url", "serial", "delta_seconds"],
               [(row["ocsp_url"], row["serial"], row["delta"])
                for row in fig10.rows if row["delta"] != 0])

    # --- Table 2 -------------------------------------------------------------------
    tbl2 = run("tbl2")
    _write_text(out("table2_browsers.txt"), render_table(
        ["browser", "request_ocsp", "respect_must_staple", "own_ocsp"],
        [[row["browser"], row["request_ocsp"], row["respect_must_staple"],
          row["own_ocsp"]] for row in tbl2.rows]))

    # --- Figure 12 ------------------------------------------------------------------
    fig12 = run("fig12")
    _write_csv(out("fig12_history.csv"),
               ["month", "ocsp_pct", "stapling_pct", "cloudflare_domains"],
               [(row["month"], row["ocsp_pct"], row["stapling_pct"],
                 row["cloudflare_domains"]) for row in fig12.rows])

    # --- Table 3 -------------------------------------------------------------------
    tbl3 = run("tbl3")
    _write_text(out("table3_webservers.txt"),
                render_table(["software", *EXPERIMENTS],
                             [[row["software"],
                               *[row[name] for name in EXPERIMENTS]]
                              for row in tbl3.rows]))

    return written
