"""Revocation-mechanism comparison: how long does a compromise live?

The paper's Section 3 surveys the design space: CRLs (large, slow),
OCSP (soft-fail in practice), OCSP Must-Staple (hard-fail), and
short-lived certificates ("might be more likely to expire than be
revoked, and clients simply reject expired certificates", Topalovic et
al.).  This module compares them on one axis — the *exposure window*:
how long after a key compromise is revoked/expired does a client keep
accepting the certificate, with and without a network attacker.

The OCSP/Must-Staple rows are *measured* with the attack machinery in
:mod:`repro.core.attacks`; the CRL and short-lived rows follow from
the mechanism's caching parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..browser import BrowserPolicy, by_label, hardened_browser
from ..ca import CertificateAuthority, OCSPResponder, ResponderProfile
from ..crypto import generate_keypair
from ..simnet import DAY, HOUR, MEASUREMENT_START, Network, ocsp_service
from ..webserver import IdealServer
from ..x509 import TrustStore
from .attacks import AttackerCapabilities, measure_attack_window


@dataclass
class ExposureRow:
    """One mechanism's exposure windows, in seconds."""

    mechanism: str
    #: Exposure with no attacker on the path.
    benign_window: int
    #: Exposure against a staple-stripping / OCSP-blocking attacker
    #: (None = unbounded until certificate expiry).
    attacked_window: Optional[int]
    notes: str = ""


@dataclass
class MechanismParameters:
    """Tunable parameters of the comparison."""

    ocsp_validity: int = 4 * DAY          # median-ish staple validity
    crl_publication: int = DAY            # CRL republication interval
    crl_cache: int = 7 * DAY              # client-side CRL cache (nextUpdate)
    short_lived_lifetime: int = 3 * DAY   # Topalovic-style cert lifetime
    cert_lifetime: int = 90 * DAY         # normal certificate lifetime
    horizon: int = 120 * DAY
    step: int = HOUR


def _measured_ocsp_window(policy: BrowserPolicy, validity: int,
                          capabilities: AttackerCapabilities,
                          horizon: int, step: int) -> "tuple[int, bool]":
    now = MEASUREMENT_START
    ca = CertificateAuthority.create_root(
        "Alt CA", "http://ocsp.alt.test", not_before=now - 365 * DAY)
    leaf = ca.issue_leaf("alt.example", generate_keypair(512, rng=31),
                         not_before=now - DAY, must_staple=True,
                         lifetime=400 * DAY)
    responder = OCSPResponder(
        ca, "http://ocsp.alt.test",
        ResponderProfile(update_interval=None, this_update_margin=0,
                         validity_period=validity),
        epoch_start=now - 7 * DAY,
    )
    network = Network()
    network.bind("ocsp.alt.test",
                 network.add_origin("alt", "us-east",
                                    ocsp_service(responder)))
    server = IdealServer(chain=[leaf, ca.certificate], issuer=ca.certificate,
                         network=network)
    trust = TrustStore([ca.certificate])
    ca.revoke(leaf, now, reason=1)
    outcome = measure_attack_window(
        policy, server, leaf, ca.certificate, trust, capabilities,
        revoked_at=now, horizon=horizon, step=step,
        network=network, server_tick=server.tick,
    )
    return outcome.window, outcome.unbounded


def compare_mechanisms(parameters: Optional[MechanismParameters] = None,
                       ) -> List[ExposureRow]:
    """Build the full comparison table."""
    p = parameters or MechanismParameters()
    firefox = by_label()["Firefox 60 (Linux)"]
    chrome = by_label()["Chrome 66 (Linux)"]
    checker = hardened_browser()
    rows: List[ExposureRow] = []

    # CRL: the client accepts until its cached CRL expires and a fresh
    # one (listing the revocation) is fetched.  An attacker who blocks
    # the CRL download extends this to the certificate lifetime under
    # soft failure.
    rows.append(ExposureRow(
        mechanism="CRL (soft-fail client)",
        benign_window=p.crl_cache,
        attacked_window=None,
        notes="cache lives to nextUpdate; blocking the fetch soft-fails",
    ))

    # OCSP with a soft-failing browser: benign case bounded by the
    # response validity; attacked case unbounded (the Section-2.3 attack).
    benign, _ = _measured_ocsp_window(
        checker, p.ocsp_validity, AttackerCapabilities(), p.horizon, p.step)
    _, unbounded = _measured_ocsp_window(
        chrome, p.ocsp_validity,
        AttackerCapabilities(strip_staple=True, block_ocsp=True),
        min(p.horizon, 30 * DAY), DAY)
    rows.append(ExposureRow(
        mechanism="OCSP (soft-fail client)",
        benign_window=benign,
        attacked_window=None if unbounded else benign,
        notes="stripping + blocking coaxes acceptance of revoked certs",
    ))

    # OCSP Must-Staple: the replay of a pre-revocation staple is the
    # only residue, bounded by the response validity period.
    replay, _ = _measured_ocsp_window(
        firefox, p.ocsp_validity, AttackerCapabilities(replay_staple=True),
        p.horizon, p.step)
    rows.append(ExposureRow(
        mechanism="OCSP Must-Staple (hard-fail client)",
        benign_window=replay,
        attacked_window=replay,
        notes="attack window = staple validity period (no nonce in staples)",
    ))

    # Short-lived certificates: no revocation at all; exposure is the
    # remaining lifetime, attacker or not.
    rows.append(ExposureRow(
        mechanism="Short-lived certificates",
        benign_window=p.short_lived_lifetime,
        attacked_window=p.short_lived_lifetime,
        notes="expiry replaces revocation (Topalovic et al.)",
    ))

    return rows
