"""Response validity and quality analysis (paper Sections 5.3-5.4,
Figures 5, 6, 7, 8, 9, and the freshness study).

All of these consume the Hourly :class:`~repro.scanner.ScanDataset`:

* Figure 5 — % of transport-successful responses that are unusable,
  split into malformed / serial mismatch / bad signature, over time;
* Figure 6 — CDF over responders of the average number of certificates
  embedded per response;
* Figure 7 — CDF over responders of the average number of serial
  numbers per response;
* Figure 8 — CDF over responders of the average validity period
  (blank nextUpdate → infinity);
* Figure 9 — CDF over responders of the margin between thisUpdate and
  receipt time, plus the zero-margin and future-thisUpdate counts;
* Section 5.4 freshness — which responders pre-generate responses, and
  which have non-overlapping validity/update windows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..scanner import ProbeOutcome, ProbeRecord, ScanDataset
from .stats import cdf_points, mean

#: Figure 5's three unusable-response classes.
UNUSABLE_CLASSES = (
    ProbeOutcome.MALFORMED,
    ProbeOutcome.SERIAL_MISMATCH,
    ProbeOutcome.BAD_SIGNATURE,
)


@dataclass
class ValiditySeries:
    """Figure 5: unusable-response percentage over time, per class."""

    #: class -> [(timestamp, % of transport-ok responses)]
    series: Dict[ProbeOutcome, List[Tuple[int, float]]]

    def peak(self, outcome: ProbeOutcome) -> float:
        """Largest percentage the class reaches (the sheca spike)."""
        points = self.series.get(outcome, [])
        return max((pct for _, pct in points), default=0.0)

    def average(self, outcome: ProbeOutcome) -> float:
        """Mean percentage over the window."""
        points = self.series.get(outcome, [])
        return mean([pct for _, pct in points])


def validity_series(dataset: ScanDataset) -> ValiditySeries:
    """Compute Figure 5 from scan records."""
    buckets: Dict[int, Dict[ProbeOutcome, int]] = {}
    totals: Dict[int, int] = {}
    for record in dataset.records:
        if not record.transport_ok:
            continue
        totals[record.timestamp] = totals.get(record.timestamp, 0) + 1
        if record.outcome in UNUSABLE_CLASSES:
            bucket = buckets.setdefault(record.timestamp, {})
            bucket[record.outcome] = bucket.get(record.outcome, 0) + 1
    series: Dict[ProbeOutcome, List[Tuple[int, float]]] = {
        outcome: [] for outcome in UNUSABLE_CLASSES
    }
    for timestamp in sorted(totals):
        total = totals[timestamp]
        for outcome in UNUSABLE_CLASSES:
            count = buckets.get(timestamp, {}).get(outcome, 0)
            series[outcome].append((timestamp, 100.0 * count / total))
    return ValiditySeries(series=series)


def persistently_malformed_responders(dataset: ScanDataset) -> List[str]:
    """Responders whose every transport-ok response was malformed."""
    ok_counts: Dict[str, int] = {}
    bad_counts: Dict[str, int] = {}
    for record in dataset.records:
        if not record.transport_ok:
            continue
        ok_counts[record.responder_url] = ok_counts.get(record.responder_url, 0) + 1
        if record.outcome is ProbeOutcome.MALFORMED:
            bad_counts[record.responder_url] = bad_counts.get(record.responder_url, 0) + 1
    return [
        url for url, total in ok_counts.items()
        if bad_counts.get(url, 0) == total and total > 0
    ]


# -- per-responder averages (Figures 6, 7, 8, 9) --------------------------------


@dataclass
class ResponderQuality:
    """Per-responder aggregates feeding the Figure 6-9 CDFs."""

    url: str
    avg_certificates: Optional[float] = None
    avg_serials: Optional[float] = None
    avg_validity: Optional[float] = None   # math.inf = blank nextUpdate
    min_margin: Optional[int] = None
    avg_margin: Optional[float] = None
    future_this_update: bool = False
    produced_at_deltas: List[int] = field(default_factory=list)
    avg_size: Optional[float] = None


def responder_quality(dataset: ScanDataset) -> Dict[str, ResponderQuality]:
    """Aggregate usable-response metadata per responder."""
    acc: Dict[str, Dict[str, list]] = {}
    for record in dataset.records:
        if record.num_serials is None:
            continue  # response never parsed
        slot = acc.setdefault(record.responder_url, {
            "certs": [], "serials": [], "validity": [], "margins": [],
            "produced": [], "sizes": [],
        })
        if record.num_certificates is not None:
            slot["certs"].append(record.num_certificates)
        if record.response_size is not None:
            slot["sizes"].append(record.response_size)
        slot["serials"].append(record.num_serials)
        if record.this_update is not None:
            if record.next_update is None:
                slot["validity"].append(math.inf)
            else:
                slot["validity"].append(record.next_update - record.this_update)
            slot["margins"].append(record.timestamp - record.this_update)
        if record.produced_at is not None:
            slot["produced"].append((record.timestamp, record.produced_at))

    out: Dict[str, ResponderQuality] = {}
    for url, slot in acc.items():
        quality = ResponderQuality(url=url)
        if slot["certs"]:
            quality.avg_certificates = mean(slot["certs"])
        if slot["serials"]:
            quality.avg_serials = mean(slot["serials"])
        if slot["validity"]:
            finite = [v for v in slot["validity"] if v != math.inf]
            quality.avg_validity = mean(finite) if len(finite) == len(slot["validity"]) else math.inf
        if slot["margins"]:
            quality.min_margin = min(slot["margins"])
            quality.avg_margin = mean(slot["margins"])
            quality.future_this_update = any(m < 0 for m in slot["margins"])
        quality.produced_at_deltas = [
            received - produced for received, produced in slot["produced"]
        ]
        if slot["sizes"]:
            quality.avg_size = mean(slot["sizes"])
        out[url] = quality
    return out


def size_by_certificate_count(qualities: Dict[str, ResponderQuality]
                              ) -> Dict[int, float]:
    """Mean response size (bytes) grouped by embedded-certificate count.

    Quantifies the Figure-6 discussion: superfluous certificates "only
    serve to make the size of the OCSP response bigger".
    """
    buckets: Dict[int, List[float]] = {}
    for quality in qualities.values():
        if quality.avg_certificates is None or quality.avg_size is None:
            continue
        buckets.setdefault(round(quality.avg_certificates), []).append(quality.avg_size)
    return {count: mean(sizes) for count, sizes in sorted(buckets.items())}


def certificates_cdf(qualities: Dict[str, ResponderQuality]) -> List[Tuple[float, float]]:
    """Figure 6: CDF over responders of avg certificates per response."""
    values = [q.avg_certificates for q in qualities.values()
              if q.avg_certificates is not None]
    return cdf_points(values)


def serials_cdf(qualities: Dict[str, ResponderQuality]) -> List[Tuple[float, float]]:
    """Figure 7: CDF over responders of avg serials per response."""
    values = [q.avg_serials for q in qualities.values() if q.avg_serials is not None]
    return cdf_points(values)


def validity_cdf(qualities: Dict[str, ResponderQuality]) -> List[Tuple[float, float]]:
    """Figure 8: CDF over responders of avg validity period (inf = blank)."""
    values = [q.avg_validity for q in qualities.values() if q.avg_validity is not None]
    return cdf_points(values)


def margin_cdf(qualities: Dict[str, ResponderQuality]) -> List[Tuple[float, float]]:
    """Figure 9: CDF over responders of the received-minus-thisUpdate margin."""
    values = [q.min_margin for q in qualities.values() if q.min_margin is not None]
    return cdf_points(values)


@dataclass
class QualityHeadlines:
    """The headline counts Sections 5.3-5.4 quote."""

    responders: int
    multi_certificate: int        # Fig 6: responders averaging > 1 cert
    multi_serial: int             # Fig 7: responders averaging > 1 serial
    serial20: int                 # Fig 7: responders always sending 20
    blank_next_update: int        # Fig 8: blank nextUpdate
    over_one_month: int           # Fig 8: validity > 30 days
    zero_margin: int              # Fig 9: no thisUpdate margin
    future_this_update: int       # Fig 9: thisUpdate in the future
    not_on_demand: int            # §5.4: pre-generated responses
    non_overlapping: int          # §5.4: validity == update interval

    def fractions(self) -> Dict[str, float]:
        """All headline counts as fractions of responders."""
        n = self.responders or 1
        return {
            "multi_certificate": self.multi_certificate / n,
            "multi_serial": self.multi_serial / n,
            "serial20": self.serial20 / n,
            "blank_next_update": self.blank_next_update / n,
            "over_one_month": self.over_one_month / n,
            "zero_margin": self.zero_margin / n,
            "future_this_update": self.future_this_update / n,
            "not_on_demand": self.not_on_demand / n,
            "non_overlapping": self.non_overlapping / n,
        }


#: "we only consider OCSP responses where the difference between
#: producedAt and the time that we received the response is larger than
#: 2 minutes, which indicates that the response has not been generated
#: on demand."
ON_DEMAND_THRESHOLD = 120


def quality_headlines(dataset: ScanDataset) -> QualityHeadlines:
    """Compute the Section 5.3/5.4 headline counts."""
    qualities = responder_quality(dataset)
    multi_certificate = sum(
        1 for q in qualities.values()
        if q.avg_certificates is not None and q.avg_certificates > 1
    )
    multi_serial = sum(
        1 for q in qualities.values()
        if q.avg_serials is not None and q.avg_serials > 1
    )
    serial20 = sum(
        1 for q in qualities.values()
        if q.avg_serials is not None and q.avg_serials >= 19.5
    )
    blank = sum(1 for q in qualities.values() if q.avg_validity == math.inf)
    month = 30 * 86400
    over_month = sum(
        1 for q in qualities.values()
        if q.avg_validity is not None and q.avg_validity != math.inf
        and q.avg_validity > month
    )
    zero_margin = sum(
        1 for q in qualities.values()
        if q.min_margin is not None and q.min_margin <= 0
    )
    future = sum(1 for q in qualities.values() if q.future_this_update)
    # Zero-margin counting includes future ones; separate them like the
    # paper (85 zero-margin vs 15 future).
    zero_margin -= future

    not_on_demand = 0
    non_overlapping = 0
    # Sparse scans cannot observe producedAt lags finer than their own
    # cadence; tolerate up to one scan interval when deciding whether a
    # responder's validity window barely outlives its update interval.
    granularity = max(ON_DEMAND_THRESHOLD, dataset.interval)
    for url, quality in qualities.items():
        deltas = quality.produced_at_deltas
        if not deltas:
            continue
        if max(deltas) > ON_DEMAND_THRESHOLD:
            not_on_demand += 1
            if (quality.avg_validity is not None
                    and quality.avg_validity != math.inf
                    and max(deltas) >= quality.avg_validity - granularity):
                # Responses live only as long as the regeneration gap:
                # the hinet/cnnic non-overlap hazard.
                non_overlapping += 1

    return QualityHeadlines(
        responders=len(qualities),
        multi_certificate=multi_certificate,
        multi_serial=multi_serial,
        serial20=serial20,
        blank_next_update=blank,
        over_one_month=over_month,
        zero_margin=zero_margin,
        future_this_update=future,
        not_on_demand=not_on_demand,
        non_overlapping=non_overlapping,
    )
