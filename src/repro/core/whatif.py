"""What-if: universal Must-Staple enforcement, today's infrastructure.

The paper's closing argument (Section 8) is an ordering: servers and
responders must improve *before* browsers hard-fail, because "until
web servers proactively fetch and OCSP responders deliver valid
responses, clients will have little incentive to hard-fail".  This
module quantifies that: deploy a fleet of Must-Staple sites on today's
software mix (Apache/Nginx, per their real-world shares) against
responders with the measured reliability, then count how many page
loads a universally-enforcing browser population would hard-fail —
versus the same fleet on the paper's recommended server behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Type

from ..browser import by_label, connect, Verdict
from ..ca import CertificateAuthority, OCSPResponder, ResponderProfile
from ..crypto import KeyPool
from ..simnet import DAY, HOUR, FailureKind, Network, OutageWindow, ocsp_service
from ..webserver import ApacheServer, IdealServer, NginxServer, StaplingWebServer
from ..x509 import TrustStore


@dataclass
class WhatIfConfig:
    """Fleet and failure parameters."""

    n_sites: int = 30
    #: Software mix (April-2018 web server shares, roughly).
    apache_share: float = 0.45
    nginx_share: float = 0.40  # remainder: ideal/prefetching servers
    #: Staple validity the CAs issue.
    staple_validity: int = 4 * DAY
    #: Fraction of responders that suffer a multi-hour outage during
    #: the simulated window (the paper's 36.8% over four months scales
    #: to a few percent per day; use a day with elevated failures).
    responder_outage_fraction: float = 0.25
    outage_duration: int = 5 * HOUR
    #: Simulated duration and client cadence.
    days: int = 2
    connect_interval: int = 2 * HOUR
    seed: int = 42


@dataclass
class WhatIfResult:
    """Hard-fail rates by server software."""

    #: software -> (failed page loads, total page loads)
    by_software: Dict[str, List[int]] = field(default_factory=dict)

    def failure_rate(self, software: str) -> float:
        """Fraction of page loads hard-failed for one software."""
        failed, total = self.by_software.get(software, [0, 0])
        return failed / total if total else 0.0

    @property
    def overall_failure_rate(self) -> float:
        """Fleet-wide hard-fail fraction."""
        failed = sum(f for f, _ in self.by_software.values())
        total = sum(t for _, t in self.by_software.values())
        return failed / total if total else 0.0


def run_whatif(config: Optional[WhatIfConfig] = None,
               start: int = 1_524_614_400) -> WhatIfResult:
    """Simulate universal Must-Staple enforcement over the fleet."""
    config = config or WhatIfConfig()
    rng = random.Random(config.seed)
    pool = KeyPool(size=8, seed=config.seed)
    network = Network()
    firefox = by_label()["Firefox 60 (Linux)"]

    result = WhatIfResult()
    ticks = range(0, config.days * DAY, config.connect_interval)

    for index in range(config.n_sites):
        draw = rng.random()
        if draw < config.apache_share:
            server_class: Type[StaplingWebServer] = ApacheServer
        elif draw < config.apache_share + config.nginx_share:
            server_class = NginxServer
        else:
            server_class = IdealServer

        ca = CertificateAuthority.create_root(
            f"WhatIf CA {index}", f"http://ocsp{index}.whatif.test",
            key_pool=pool, not_before=start - 365 * DAY)
        leaf = ca.issue_leaf(f"site{index}.example", pool.take(),
                             not_before=start - DAY, must_staple=True)
        responder = OCSPResponder(
            ca, ca.ocsp_url,
            ResponderProfile(update_interval=None, this_update_margin=HOUR,
                             validity_period=config.staple_validity),
            epoch_start=start - 7 * DAY)
        origin = network.add_origin(f"whatif-{index}", "us-east",
                                    ocsp_service(responder))
        network.bind(f"ocsp{index}.whatif.test", origin)
        if rng.random() < config.responder_outage_fraction:
            outage_start = start + rng.randrange(0, config.days * DAY)
            origin.add_outage(OutageWindow(
                outage_start, outage_start + config.outage_duration,
                kind=FailureKind.TCP))

        server = server_class(chain=[leaf, ca.certificate],
                              issuer=ca.certificate, network=network)
        trust = TrustStore([ca.certificate])

        bucket = result.by_software.setdefault(server.software, [0, 0])
        for offset in ticks:
            now = start + offset
            server.tick(now)
            outcome = connect(firefox, server, f"site{index}.example", trust, now)
            bucket[1] += 1
            if outcome.verdict is not Verdict.ACCEPTED:
                bucket[0] += 1
    return result
