"""OCSP lookup latency analysis.

Section 3 of the paper surveys the latency line of work: "Stark et al.
observed that the median latency for OCSP checks is 291 ms in 2012.
In 2016, Zhu et al., however, reported a median latency of 20 ms — a
significant improvement due to 94% of the requests being fronted by
CDNs."  This module measures both configurations over the simulated
network: direct lookups pay the full client→responder round trips,
CDN-fronted lookups usually terminate at a nearby edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..datasets.world import MeasurementWorld
from ..scanner.cdn import CDNCache
from ..simnet import HOUR, ocsp_post
from ..simnet.vantage import VANTAGE_POINTS, VANTAGE_REGION, rtt_ms
from .stats import median, percentile


@dataclass
class LatencyReport:
    """Latency distributions for one lookup configuration."""

    name: str
    samples_ms: List[float]

    @property
    def median_ms(self) -> float:
        """The headline number both prior studies report."""
        return median(self.samples_ms)

    def percentile_ms(self, q: float) -> float:
        """Any percentile of the distribution."""
        return percentile(self.samples_ms, q)

    def __len__(self) -> int:
        return len(self.samples_ms)


def measure_direct_latency(world: MeasurementWorld,
                           vantages: Optional[Sequence[str]] = None,
                           start: Optional[int] = None,
                           hours: int = 24) -> LatencyReport:
    """Latency of client→responder OCSP lookups (the 2012 world)."""
    vantages = list(vantages or VANTAGE_POINTS)
    start = world.config.start if start is None else start
    samples: List[float] = []
    targets = world.scan_targets()
    for hour in range(hours):
        now = start + hour * HOUR
        for target in targets:
            for vantage in vantages:
                result = world.network.fetch(
                    vantage, ocsp_post(target.site.url + "/", target.request_der),
                    now,
                )
                if result.ok:
                    samples.append(result.elapsed_ms)
    return LatencyReport(name="direct", samples_ms=samples)


def measure_cdn_latency(world: MeasurementWorld,
                        vantages: Optional[Sequence[str]] = None,
                        start: Optional[int] = None,
                        hours: int = 24,
                        edge_rtt_ms: float = 18.0) -> LatencyReport:
    """Latency when a CDN edge in the client's region fronts the lookup.

    A cache hit costs one round trip to the nearby edge
    (*edge_rtt_ms*); a miss additionally pays the edge→origin exchange.
    One cache per vantage region models per-metro CDN deployments.
    """
    vantages = list(vantages or VANTAGE_POINTS)
    start = world.config.start if start is None else start
    caches: Dict[str, CDNCache] = {
        vantage: CDNCache(world.network, vantage=vantage) for vantage in vantages
    }
    samples: List[float] = []
    targets = world.scan_targets()
    for hour in range(hours):
        now = start + hour * HOUR
        for target in targets:
            for vantage in vantages:
                cache = caches[vantage]
                hits_before = cache.cache_hits
                log_before = len(cache.origin_log)
                body = cache.lookup(target.site.url, target.request_der, now)
                if body is None:
                    continue
                if cache.cache_hits > hits_before:
                    samples.append(edge_rtt_ms)
                else:
                    # Miss: edge paid the origin exchange from the
                    # client's region, plus the client↔edge hop.
                    origin_region = target.site.region
                    origin_cost = rtt_ms(vantage, origin_region) * 1.5 + 20.0
                    retries = len(cache.origin_log) - log_before
                    samples.append(edge_rtt_ms + origin_cost * max(1, retries))
    return LatencyReport(name="cdn-fronted", samples_ms=samples)
