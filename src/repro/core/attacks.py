"""Adversarial analysis of revocation checking.

The paper motivates Must-Staple with an attack (Section 2.3): "an
attacker who has control over the client's network could block any
outgoing OCSP requests (and strip any stapled OCSP responses), thereby
coaxing the client into accepting a revoked certificate."  And it
flags a residual risk (Section 5.4): long validity periods mean "there
could be some clients who cache the previous response and would not
obtain a fresh revocation status for up to 1,251 days!" — the same
window bounds an attacker *replaying* a pre-revocation staple, since
stapled responses carry no nonce.

This module makes those arguments quantitative:

* :class:`AttackerCapabilities` — strip staples, block client-side
  OCSP, and/or replay the freshest pre-revocation staple;
* :class:`ManInTheMiddle` — wraps any web server model with those
  capabilities;
* :func:`measure_attack_window` — how long after revocation a given
  browser keeps accepting the certificate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..browser import BrowserPolicy, Verdict, connect
from ..ocsp import CertID, verify_response
from ..simnet import Network
from ..tls import ClientHello, ServerHandshake
from ..x509 import Certificate, TrustStore


@dataclass
class AttackerCapabilities:
    """What the on-path adversary can do."""

    #: Remove the CertificateStatus message from handshakes.
    strip_staple: bool = False
    #: Block the client's own OCSP fetches (the classic soft-fail attack).
    block_ocsp: bool = False
    #: Record GOOD staples and keep serving the freshest one after
    #: revocation (possible because stapled responses are nonce-free).
    replay_staple: bool = False


class ManInTheMiddle:
    """An on-path attacker wrapping a real server."""

    def __init__(self, server, capabilities: AttackerCapabilities,
                 leaf: Certificate, issuer: Certificate) -> None:
        self.server = server
        self.capabilities = capabilities
        self.leaf = leaf
        self.issuer = issuer
        self._recorded_staple: Optional[bytes] = None

    def handle_connection(self, hello: ClientHello, now: int) -> ServerHandshake:
        handshake = self.server.handle_connection(hello, now)
        staple = handshake.stapled_ocsp

        if self.capabilities.replay_staple:
            if staple is not None:
                cert_id = CertID.for_certificate(self.leaf, self.issuer)
                check = verify_response(staple, cert_id, self.issuer, now)
                if check.ok and check.good:
                    # Record only staples that still look fresh later.
                    self._recorded_staple = staple
                elif self._recorded_staple is not None:
                    handshake.stapled_ocsp = self._recorded_staple
            elif self._recorded_staple is not None:
                handshake.stapled_ocsp = self._recorded_staple
        elif self.capabilities.strip_staple:
            handshake.stapled_ocsp = None

        # Replay beats strip when both are set: serving an old GOOD
        # staple is strictly stronger than serving none.
        if (self.capabilities.strip_staple and not self.capabilities.replay_staple):
            handshake.stapled_ocsp = None
        return handshake


@dataclass
class AttackOutcome:
    """Result of one attack-window measurement."""

    #: Seconds after revocation during which the browser kept accepting.
    window: int
    #: True when the browser never rejected within the horizon.
    unbounded: bool
    #: Verdict observed at the first post-window connection.
    final_verdict: Optional[Verdict] = None


def measure_attack_window(policy: BrowserPolicy, server, leaf: Certificate,
                          issuer: Certificate, trust_store: TrustStore,
                          capabilities: AttackerCapabilities,
                          revoked_at: int, horizon: int,
                          step: int = 3600,
                          network: Optional[Network] = None,
                          hostname: Optional[str] = None,
                          server_tick: Optional[Callable[[int], None]] = None,
                          ) -> AttackOutcome:
    """How long past *revoked_at* does *policy* keep accepting *leaf*?

    Connects every *step* seconds from the revocation until *horizon*
    seconds later (or the first rejection).  *server_tick* lets the
    honest server refresh its staples between connections; the attacker
    in front of it applies *capabilities*.
    """
    mitm = ManInTheMiddle(server, capabilities, leaf, issuer)
    hostname = hostname or (leaf.dns_names[0] if leaf.dns_names else "site.test")
    fetch_network = None if capabilities.block_ocsp else network

    # Warm the attacker's staple recorder before the revocation.
    if capabilities.replay_staple:
        if server_tick is not None:
            server_tick(revoked_at - step)
        connect(policy, mitm, hostname, trust_store, revoked_at - step,
                network=fetch_network)

    elapsed = 0
    while elapsed <= horizon:
        now = revoked_at + elapsed
        if server_tick is not None:
            server_tick(now)
        outcome = connect(policy, mitm, hostname, trust_store, now,
                          network=fetch_network)
        if not outcome.connected:
            return AttackOutcome(window=elapsed, unbounded=False,
                                 final_verdict=outcome.verdict)
        elapsed += step
    return AttackOutcome(window=horizon, unbounded=True)
