"""The readiness report — the paper's primary contribution as an API.

"Is the web ready for OCSP Must-Staple?" is answered by checking each
principal (Section 8):

* **CAs / OCSP responders** — availability and response quality,
* **Clients (browsers)** — Must-Staple enforcement,
* **Web server software** — correct stapling implementation,
* **Deployment** — how many certificates actually carry Must-Staple.

:func:`assess_readiness` runs a (configurably small) end-to-end
measurement across all of them and renders the verdict, which for the
2018 parameter set is the paper's: *not ready*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..browser import run_browser_tests
from ..datasets import CertificateCorpus, CorpusConfig, MeasurementWorld, WorldConfig
from ..scanner import HourlyScanner
from ..simnet import DAY, HOUR, MEASUREMENT_START
from ..webserver import ApacheServer, NginxServer, run_conformance
from .adoption import deployment_stats
from .availability import analyze_availability
from .quality import quality_headlines


@dataclass
class PrincipalVerdict:
    """One principal's readiness assessment."""

    principal: str
    ready: bool
    findings: List[str] = field(default_factory=list)


@dataclass
class ReadinessReport:
    """The combined assessment."""

    verdicts: List[PrincipalVerdict]

    @property
    def web_is_ready(self) -> bool:
        """The headline answer (the paper's: False)."""
        return all(verdict.ready for verdict in self.verdicts)

    def verdict_for(self, principal: str) -> PrincipalVerdict:
        """Look up one principal."""
        for verdict in self.verdicts:
            if verdict.principal == principal:
                return verdict
        raise KeyError(principal)

    def render(self) -> str:
        """Human-readable summary."""
        lines = ["=== OCSP Must-Staple readiness assessment ==="]
        for verdict in self.verdicts:
            status = "READY" if verdict.ready else "NOT READY"
            lines.append(f"[{status:9s}] {verdict.principal}")
            for finding in verdict.findings:
                lines.append(f"    - {finding}")
        answer = "YES" if self.web_is_ready else "NO"
        lines.append(f"Is the web ready for OCSP Must-Staple?  {answer}")
        return "\n".join(lines)


def assess_readiness(world: Optional[MeasurementWorld] = None,
                     corpus: Optional[CertificateCorpus] = None,
                     scan_days: int = 3,
                     scan_interval: int = 6 * HOUR) -> ReadinessReport:
    """Run the full cross-principal assessment.

    Supply a pre-built *world*/*corpus* to control scale; the defaults
    build a small-but-representative simulation.
    """
    world = world or MeasurementWorld(WorldConfig(n_responders=70,
                                                  certs_per_responder=1))
    corpus = corpus or CertificateCorpus(CorpusConfig(size=4_000))
    verdicts: List[PrincipalVerdict] = []

    # 1. CAs: availability + quality.
    scanner = HourlyScanner(world, interval=scan_interval)
    dataset = scanner.run(MEASUREMENT_START, MEASUREMENT_START + scan_days * DAY)
    availability = analyze_availability(dataset)
    headlines = quality_headlines(dataset)
    ca_findings = [
        f"average request failure rate {availability.overall_failure_rate:.1f}%",
        f"{len(availability.never_successful_anywhere)} responder(s) never reachable",
        f"{headlines.zero_margin} responder(s) give no thisUpdate margin",
        f"{headlines.blank_next_update} responder(s) leave nextUpdate blank",
    ]
    # The paper's judgement: responders are flawed but cacheable-validity
    # responses mean they "would not be a barrier" — ready-ish when the
    # failure rate is low and nothing is permanently dark.
    ca_ready = (availability.overall_failure_rate < 1.0
                and not availability.never_successful_anywhere)
    verdicts.append(PrincipalVerdict("Certificate authorities (OCSP responders)",
                                     ca_ready, ca_findings))

    # 2. Browsers.
    browser_report = run_browser_tests()
    compliant = browser_report.compliant_browsers
    total = len(browser_report.rows)
    browsers_ready = len(compliant) == total
    verdicts.append(PrincipalVerdict(
        "Clients (web browsers)",
        browsers_ready,
        [f"{len(compliant)}/{total} browsers hard-fail on Must-Staple "
         f"({', '.join(compliant) or 'none'})"],
    ))

    # 3. Web server software.
    server_findings = []
    servers_ready = True
    for server_class in (ApacheServer, NginxServer):
        conformance = run_conformance(server_class)
        failed = [r.name for r in conformance.results if not r.passed]
        if failed:
            servers_ready = False
            server_findings.append(
                f"{conformance.software}: fails {', '.join(failed)}"
            )
        else:
            server_findings.append(f"{conformance.software}: fully conformant")
    verdicts.append(PrincipalVerdict("Web server software", servers_ready,
                                     server_findings))

    # 4. Deployment.
    stats = deployment_stats(corpus)
    boost = corpus.config.must_staple_boost
    unboosted = stats.must_staple_fraction / boost if boost else stats.must_staple_fraction
    deployment_ready = unboosted > 0.10
    verdicts.append(PrincipalVerdict(
        "Deployment (certificates with Must-Staple)",
        deployment_ready,
        [f"OCSP support {stats.ocsp_fraction * 100:.1f}% of valid certificates",
         f"Must-Staple {unboosted * 100:.3f}% of valid certificates (paper: 0.02%)"],
    ))

    return ReadinessReport(verdicts=verdicts)
