"""Adoption analyses: Section 4 deployment, Figure 2, Figure 11, Figure 12.

These read the Censys-substitute corpus and the Alexa model, computing
exactly what the paper plots: adoption fractions, rank-binned adoption
curves, and the historical series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..datasets.alexa import AlexaModel
from ..datasets.corpus import CertificateCorpus
from ..datasets.history import AdoptionSnapshot, adoption_history

#: The paper bins Alexa ranks into groups of 10,000.
RANK_BIN = 10_000


@dataclass
class DeploymentStats:
    """Section 4's headline deployment numbers, from a corpus."""

    total_records: int
    ocsp_records: int
    must_staple_records: int
    must_staple_by_ca: Dict[str, int]

    @property
    def ocsp_fraction(self) -> float:
        """P(OCSP | valid) — paper: 95.4%."""
        return self.ocsp_records / self.total_records if self.total_records else 0.0

    @property
    def must_staple_fraction(self) -> float:
        """P(Must-Staple | valid), *after un-boosting* — see corpus config."""
        return self.must_staple_records / self.total_records if self.total_records else 0.0

    def must_staple_ca_shares(self) -> Dict[str, float]:
        """P(CA | Must-Staple) — paper: Let's Encrypt 97.3%."""
        total = sum(self.must_staple_by_ca.values())
        if not total:
            return {}
        return {name: count / total for name, count in self.must_staple_by_ca.items()}


def deployment_stats(corpus: CertificateCorpus) -> DeploymentStats:
    """Compute Section-4 stats over the valid records of a corpus."""
    valid = corpus.valid_at()
    by_ca: Dict[str, int] = {}
    ocsp = 0
    staple = 0
    for record in valid:
        if record.has_ocsp:
            ocsp += 1
        if record.must_staple:
            staple += 1
            by_ca[record.ca_name] = by_ca.get(record.ca_name, 0) + 1
    return DeploymentStats(
        total_records=len(valid),
        ocsp_records=ocsp,
        must_staple_records=staple,
        must_staple_by_ca=by_ca,
    )


@dataclass
class RankedAdoption:
    """One of Figures 2/11: per-rank-bin adoption percentages."""

    #: [(bin_start_rank, percent)] curves keyed by series name.
    curves: Dict[str, List[Tuple[int, float]]]

    def average(self, name: str) -> float:
        """Mean percentage across bins."""
        points = self.curves.get(name, [])
        if not points:
            return 0.0
        return sum(pct for _, pct in points) / len(points)

    def slope_sign(self, name: str) -> int:
        """-1 when adoption declines with rank (popular sites higher),
        +1 when it rises, 0 when flat — the figures' qualitative claim."""
        points = self.curves.get(name, [])
        if len(points) < 4:
            return 0
        quarter = max(1, len(points) // 4)
        head = sum(p for _, p in points[:quarter]) / quarter
        tail = sum(p for _, p in points[-quarter:]) / quarter
        if head > tail + 0.5:
            return -1
        if tail > head + 0.5:
            return 1
        return 0


def _adoption_curves(alexa: AlexaModel, bin_width: int) -> Dict[str, List[Tuple[int, float]]]:
    """All three rank-binned curves, via the streaming reducer.

    Batch = replay the domain-event log in one partition; the
    ``monitor-convergence`` harness asserts any other partitioning
    finalizes to the same curve bytes.
    """
    from ..monitor.reducers import AdoptionReducer
    from ..monitor.replay import domain_events
    reducer = AdoptionReducer(bin_width=bin_width)
    return reducer.finalize(reducer.reduce(domain_events(alexa.records)))


def figure2_adoption(alexa: AlexaModel, bin_width: int = RANK_BIN) -> RankedAdoption:
    """Figure 2: % of domains with HTTPS, and % of those with OCSP."""
    from ..monitor.reducers import AdoptionReducer
    curves = _adoption_curves(alexa, bin_width)
    return RankedAdoption(curves={
        "Domains with certificate": curves[AdoptionReducer.HTTPS],
        "Certificates with OCSP responder": curves[AdoptionReducer.OCSP],
    })


def figure11_adoption(alexa: AlexaModel, bin_width: int = RANK_BIN) -> RankedAdoption:
    """Figure 11: % of OCSP-supporting domains that staple."""
    from ..monitor.reducers import AdoptionReducer
    curves = _adoption_curves(alexa, bin_width)
    return RankedAdoption(curves={
        "OCSP domains that support OCSP Stapling":
            curves[AdoptionReducer.STAPLING],
    })


@dataclass
class HistorySeries:
    """Figure 12: the monthly adoption series."""

    snapshots: List[AdoptionSnapshot]

    def ocsp_series(self) -> List[Tuple[str, float]]:
        """[(YYYY-MM, %)] for the OCSP curve."""
        return [(s.label, s.ocsp_pct) for s in self.snapshots]

    def stapling_series(self) -> List[Tuple[str, float]]:
        """[(YYYY-MM, %)] for the stapling curve."""
        return [(s.label, s.stapling_pct) for s in self.snapshots]

    def cloudflare_jump(self) -> Tuple[int, int]:
        """Cloudflare stapled-domain counts straddling June 2017."""
        before = after = 0
        for snapshot in self.snapshots:
            if (snapshot.year, snapshot.month) == (2017, 5):
                before = snapshot.cloudflare_stapling_domains
            if (snapshot.year, snapshot.month) == (2017, 6):
                after = snapshot.cloudflare_stapling_domains
        return before, after

    def monotonic_growth(self, series: str = "stapling") -> bool:
        """True when the chosen curve never declines month-over-month."""
        values = [s.stapling_pct if series == "stapling" else s.ocsp_pct
                  for s in self.snapshots]
        return all(b >= a for a, b in zip(values, values[1:]))


def figure12_history() -> HistorySeries:
    """Figure 12's series from the historical snapshot model."""
    return HistorySeries(snapshots=adoption_history())
