"""Analysis and reporting: the paper's figures/tables as functions.

Mapping to the paper:

========  =====================================================
Artefact  Entry point
========  =====================================================
§4 stats  :func:`deployment_stats`
Fig 2     :func:`figure2_adoption`
Fig 3     :func:`analyze_availability`
Fig 4     :class:`repro.scanner.AlexaAvailability` (+ impact)
Fig 5     :func:`validity_series`
Fig 6     :func:`certificates_cdf`
Fig 7     :func:`serials_cdf`
Fig 8     :func:`validity_cdf`
Fig 9     :func:`margin_cdf`
Tbl 1     :func:`repro.scanner.run_consistency_scan`
Fig 10    same (time_deltas)
Tbl 2     :func:`repro.browser.run_browser_tests`
Fig 11    :func:`figure11_adoption`
Fig 12    :func:`figure12_history`
Tbl 3     :func:`repro.webserver.run_conformance`
Verdict   :func:`assess_readiness`
========  =====================================================
"""

from .stats import (
    bin_by,
    binned_fraction,
    cdf_points,
    fraction_at_or_below,
    mean,
    median,
    percentile,
)
from .availability import AvailabilityReport, analyze_availability, failures_by_kind
from .quality import (
    ON_DEMAND_THRESHOLD,
    QualityHeadlines,
    ResponderQuality,
    UNUSABLE_CLASSES,
    ValiditySeries,
    certificates_cdf,
    margin_cdf,
    persistently_malformed_responders,
    quality_headlines,
    responder_quality,
    serials_cdf,
    size_by_certificate_count,
    validity_cdf,
    validity_series,
)
from .adoption import (
    RANK_BIN,
    DeploymentStats,
    HistorySeries,
    RankedAdoption,
    deployment_stats,
    figure2_adoption,
    figure11_adoption,
    figure12_history,
)
from .render import pct, render_cdf, render_series, render_table
from .report import PrincipalVerdict, ReadinessReport, assess_readiness
from .attacks import (
    AttackerCapabilities,
    AttackOutcome,
    ManInTheMiddle,
    measure_attack_window,
)
from .latency import LatencyReport, measure_cdn_latency, measure_direct_latency
from .alternatives import (
    ExposureRow,
    MechanismParameters,
    compare_mechanisms,
)
from .whatif import WhatIfConfig, WhatIfResult, run_whatif
from .experiments import (
    Experiment,
    all_experiments,
    experiment,
    index_table,
    paper_artefacts,
)

__all__ = [
    "AttackOutcome",
    "AttackerCapabilities",
    "AvailabilityReport",
    "Experiment",
    "ExposureRow",
    "LatencyReport",
    "ManInTheMiddle",
    "MechanismParameters",
    "all_experiments",
    "compare_mechanisms",
    "experiment",
    "index_table",
    "measure_attack_window",
    "measure_cdn_latency",
    "measure_direct_latency",
    "paper_artefacts",
    "WhatIfConfig",
    "WhatIfResult",
    "run_whatif",
    "DeploymentStats",
    "HistorySeries",
    "ON_DEMAND_THRESHOLD",
    "PrincipalVerdict",
    "QualityHeadlines",
    "RANK_BIN",
    "RankedAdoption",
    "ReadinessReport",
    "ResponderQuality",
    "UNUSABLE_CLASSES",
    "ValiditySeries",
    "analyze_availability",
    "assess_readiness",
    "bin_by",
    "binned_fraction",
    "cdf_points",
    "certificates_cdf",
    "deployment_stats",
    "failures_by_kind",
    "figure11_adoption",
    "figure12_history",
    "figure2_adoption",
    "fraction_at_or_below",
    "margin_cdf",
    "mean",
    "median",
    "pct",
    "percentile",
    "persistently_malformed_responders",
    "quality_headlines",
    "render_cdf",
    "render_series",
    "render_table",
    "responder_quality",
    "serials_cdf",
    "size_by_certificate_count",
    "validity_cdf",
    "validity_series",
]
