"""Availability analysis (paper Section 5.2, Figure 3).

Turns a :class:`~repro.scanner.ScanDataset` into the paper's
availability results: the per-vantage success-fraction time series, the
per-vantage average failure rates, the never-successful responders, the
per-vantage always-fail counts, and the transient-outage census
("36.8% of OCSP responders experienced at least one outage").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..scanner import ProbeOutcome, ProbeRecord, ScanDataset
from .stats import mean


@dataclass
class AvailabilityReport:
    """Everything Figure 3's discussion reports."""

    #: vantage -> [(timestamp, % successful)] — Figure 3's series.
    success_series: Dict[str, List[Tuple[int, float]]]
    #: vantage -> average failure percentage over the whole window.
    failure_rate: Dict[str, float]
    #: responders for which *no* vantage ever succeeded.
    never_successful_anywhere: List[str]
    #: responders with at least one vantage that never succeeded.
    never_successful_somewhere: List[str]
    #: vantage -> number of responders that always failed from it.
    always_fail_by_vantage: Dict[str, int]
    #: responders that saw at least one transient outage.
    responders_with_outage: List[str]
    #: total responders scanned.
    responder_count: int

    @property
    def overall_failure_rate(self) -> float:
        """Mean failure percentage across vantages."""
        return mean(list(self.failure_rate.values()))

    @property
    def outage_fraction(self) -> float:
        """Fraction of responders with ≥1 transient outage (paper: 36.8%)."""
        if not self.responder_count:
            return 0.0
        return len(self.responders_with_outage) / self.responder_count


def analyze_availability(dataset: ScanDataset) -> AvailabilityReport:
    """Compute the availability report from scan records."""
    # Index: (vantage, time) -> [ok...]; (url, vantage) -> {time: ok}.
    # Per-responder series bucket by timestamp (a responder may serve
    # several scanned certificates per tick; one scan tick is one
    # observation for outage purposes).
    series_acc: Dict[str, Dict[int, List[bool]]] = {}
    per_responder_times: Dict[Tuple[str, str], Dict[int, bool]] = {}
    urls: Dict[str, None] = {}

    for record in dataset.records:
        ok = record.transport_ok
        series_acc.setdefault(record.vantage, {}).setdefault(record.timestamp, []).append(ok)
        bucket = per_responder_times.setdefault(
            (record.responder_url, record.vantage), {})
        bucket[record.timestamp] = bucket.get(record.timestamp, False) or ok
        urls.setdefault(record.responder_url)

    per_responder: Dict[Tuple[str, str], List[bool]] = {
        key: [ok for _, ok in sorted(bucket.items())]
        for key, bucket in per_responder_times.items()
    }

    success_series = {
        vantage: [
            (timestamp, 100.0 * sum(oks) / len(oks))
            for timestamp, oks in sorted(buckets.items())
        ]
        for vantage, buckets in series_acc.items()
    }
    failure_rate = {
        vantage: 100.0 - mean([pct for _, pct in points])
        for vantage, points in success_series.items()
    }

    vantages = list(success_series)
    never_anywhere = []
    never_somewhere = []
    always_fail_by_vantage = {vantage: 0 for vantage in vantages}
    with_outage: List[str] = []

    for url in urls:
        ever_by_vantage = {}
        for vantage in vantages:
            oks = per_responder.get((url, vantage), [])
            ever_by_vantage[vantage] = any(oks)
            if oks and not any(oks):
                always_fail_by_vantage[vantage] += 1
        if not any(ever_by_vantage.values()):
            never_anywhere.append(url)
        elif not all(ever_by_vantage.values()):
            never_somewhere.append(url)

        # Transient outage: a failure run bounded by successes on a
        # vantage that otherwise works.
        if _had_transient_outage(url, vantages, per_responder):
            with_outage.append(url)

    return AvailabilityReport(
        success_series=success_series,
        failure_rate=failure_rate,
        never_successful_anywhere=never_anywhere,
        never_successful_somewhere=never_somewhere,
        always_fail_by_vantage=always_fail_by_vantage,
        responders_with_outage=with_outage,
        responder_count=len(urls),
    )


def _had_transient_outage(url: str, vantages: Sequence[str],
                          per_responder: Dict[Tuple[str, str], List[bool]],
                          min_run: int = 1) -> bool:
    """An *outage* is a failure run (>= min_run scan ticks) bounded by
    successes.  Real transient failures concentrate on a minority of
    flappy responders (see the world's noise model), which is what
    keeps this fraction near the paper's 36.8% rather than saturating."""
    for vantage in vantages:
        oks = per_responder.get((url, vantage), [])
        if not oks or not any(oks):
            continue
        first_ok = oks.index(True)
        last_ok = len(oks) - 1 - oks[::-1].index(True)
        run = 0
        for ok in oks[first_ok:last_ok + 1]:
            if not ok:
                run += 1
                if run >= min_run:
                    return True
            else:
                run = 0
    return False


def failures_by_kind(dataset: ScanDataset) -> Dict[ProbeOutcome, int]:
    """Count transport failures by kind (the Section-5.2 breakdown)."""
    counts: Dict[ProbeOutcome, int] = {}
    for record in dataset.records:
        if not record.transport_ok:
            counts[record.outcome] = counts.get(record.outcome, 0) + 1
    return counts
