"""Availability analysis (paper Section 5.2, Figure 3).

Turns a :class:`~repro.scanner.ScanDataset` into the paper's
availability results: the per-vantage success-fraction time series, the
per-vantage average failure rates, the never-successful responders, the
per-vantage always-fail counts, and the transient-outage census
("36.8% of OCSP responders experienced at least one outage").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..scanner import ProbeOutcome, ScanDataset
from .stats import mean


@dataclass
class AvailabilityReport:
    """Everything Figure 3's discussion reports."""

    #: vantage -> [(timestamp, % successful)] — Figure 3's series.
    success_series: Dict[str, List[Tuple[int, float]]]
    #: vantage -> average failure percentage over the whole window.
    failure_rate: Dict[str, float]
    #: responders for which *no* vantage ever succeeded.
    never_successful_anywhere: List[str]
    #: responders with at least one vantage that never succeeded.
    never_successful_somewhere: List[str]
    #: vantage -> number of responders that always failed from it.
    always_fail_by_vantage: Dict[str, int]
    #: responders that saw at least one transient outage.
    responders_with_outage: List[str]
    #: total responders scanned.
    responder_count: int

    @property
    def overall_failure_rate(self) -> float:
        """Mean failure percentage across vantages."""
        return mean(list(self.failure_rate.values()))

    @property
    def outage_fraction(self) -> float:
        """Fraction of responders with ≥1 transient outage (paper: 36.8%)."""
        if not self.responder_count:
            return 0.0
        return len(self.responders_with_outage) / self.responder_count


def analyze_availability(dataset: ScanDataset) -> AvailabilityReport:
    """Compute the availability report from scan records.

    Batch analysis is the streaming monitor's degenerate case: replay
    the dataset's event log through the mergeable
    :class:`~repro.monitor.reducers.AvailabilityReducer` in a single
    partition.  Partitioned replays (the ``monitor-convergence``
    experiment, ``repro monitor replay --partitions``) finalize to the
    byte-identical report — that algebra, not this wrapper, is where
    the per-vantage series, failure rates, never-successful census,
    and transient-outage detection now live.
    """
    from ..monitor.reducers import AvailabilityReducer
    from ..monitor.replay import dataset_to_events
    reducer = AvailabilityReducer()
    return reducer.finalize(reducer.reduce(dataset_to_events(dataset)))


def _had_transient_outage(url: str, vantages: Sequence[str],
                          per_responder: Dict[Tuple[str, str], List[bool]],
                          min_run: int = 1) -> bool:
    """An *outage* is a failure run (>= min_run scan ticks) bounded by
    successes.  Real transient failures concentrate on a minority of
    flappy responders (see the world's noise model), which is what
    keeps this fraction near the paper's 36.8% rather than saturating."""
    for vantage in vantages:
        oks = per_responder.get((url, vantage), [])
        if not oks or not any(oks):
            continue
        first_ok = oks.index(True)
        last_ok = len(oks) - 1 - oks[::-1].index(True)
        run = 0
        for ok in oks[first_ok:last_ok + 1]:
            if not ok:
                run += 1
                if run >= min_run:
                    return True
            else:
                run = 0
    return False


def failures_by_kind(dataset: ScanDataset) -> Dict[ProbeOutcome, int]:
    """Count transport failures by kind (the Section-5.2 breakdown).

    Also reducer-backed: :class:`~repro.monitor.reducers
    .ResponseStatsReducer` tracks failure counts plus first-seen
    ordinals, so the dict comes back in the batch loop's first-seen
    insertion order from any partitioning.
    """
    from ..monitor.reducers import ResponseStatsReducer
    from ..monitor.replay import dataset_to_events
    reducer = ResponseStatsReducer()
    final = reducer.finalize(reducer.reduce(dataset_to_events(dataset)))
    return {ProbeOutcome[name]: count
            for name, count in final["failures_by_kind"].items()}
