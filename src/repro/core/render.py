"""Plain-text rendering of tables and series for the benchmark output.

The benchmark harness prints the same rows and series the paper's
tables and figures report; these helpers keep that output consistent.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """A fixed-width ASCII table."""
    string_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in string_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def render_series(points: Sequence[Tuple[object, float]], name: str,
                  max_points: int = 24, fmt: str = "{:.2f}") -> str:
    """A compact one-series dump, downsampled to *max_points* rows."""
    points = list(points)
    if len(points) > max_points:
        step = len(points) / max_points
        points = [points[int(i * step)] for i in range(max_points)]
    lines = [name]
    for x, y in points:
        lines.append(f"  {x}: {fmt.format(y)}")
    return "\n".join(lines)


def render_cdf(points: Sequence[Tuple[float, float]], name: str,
               probes: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99),
               ) -> str:
    """Summarize a CDF at fixed quantiles."""
    points = list(points)
    lines = [name]
    if not points:
        return name + " (empty)"
    for quantile in probes:
        index = min(len(points) - 1, int(quantile * len(points)))
        value = points[index][0]
        lines.append(f"  p{int(quantile * 100):02d}: {value}")
    return "\n".join(lines)


def pct(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"
