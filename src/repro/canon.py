"""Deterministic building blocks shared by configs and the runtime.

Everything the experiment runner relies on for reproducibility lives
here:

* :func:`canonical` — collapse configs/dataclasses into a canonical,
  JSON-serializable structure with stable key ordering, so two equal
  configs always serialize identically regardless of dict insertion
  order or repr details;
* :func:`stable_digest` — the content address derived from that
  canonical form (cache keys, shard identities, provenance records);
* :func:`derived_rng` — a seeded RNG stream keyed by explicit string
  parts, so independent shards can draw from non-overlapping,
  position-independent streams;
* :func:`split_ranges` — contiguous, gap-free partitioning of an index
  space into shard ranges.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import random
from typing import Any, List, Tuple


def canonical(obj: Any) -> Any:
    """Collapse *obj* into a canonical JSON-serializable structure.

    Dataclasses become ``{"__type__": name, **fields}``; mappings sort
    by key; sets sort by repr; tuples become lists; enums become their
    values.  Objects exposing ``to_dict()`` use it (tagged with their
    type name so two config classes with identical fields don't
    collide).
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return canonical(obj.value)
    to_dict = getattr(obj, "to_dict", None)
    if callable(to_dict) and not isinstance(obj, type):
        data = to_dict()
        tagged = {"__type__": type(obj).__name__}
        tagged.update({str(k): canonical(v) for k, v in data.items()})
        return {k: tagged[k] for k in sorted(tagged)}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        tagged = {"__type__": type(obj).__name__}
        for field in dataclasses.fields(obj):
            tagged[field.name] = canonical(getattr(obj, field.name))
        return {k: tagged[k] for k in sorted(tagged)}
    if isinstance(obj, dict):
        return {str(k): canonical(obj[k]) for k in sorted(obj, key=str)}
    if isinstance(obj, (set, frozenset)):
        return sorted(canonical(v) for v in obj)
    if isinstance(obj, (list, tuple)):
        return [canonical(v) for v in obj]
    if isinstance(obj, bytes):
        return obj.hex()
    raise TypeError(f"cannot canonicalize {type(obj).__name__}: {obj!r}")


def canonical_json(obj: Any) -> str:
    """The canonical JSON text of *obj* (sorted keys, no whitespace)."""
    return json.dumps(canonical(obj), sort_keys=True, separators=(",", ":"))


def stable_digest(obj: Any, length: int = 16) -> str:
    """A stable hex content address for *obj* (first *length* hex chars)."""
    digest = hashlib.sha256(canonical_json(obj).encode()).hexdigest()
    return digest[:length]


def derived_rng(*parts: object) -> random.Random:
    """A seeded RNG keyed by the given parts.

    String seeding uses Python's hash-randomization-free path, so the
    stream is identical across processes and platforms — the property
    shard workers rely on.
    """
    return random.Random("|".join(str(part) for part in parts))


def stable_seed(*parts: object) -> int:
    """A process-independent integer seed keyed by the given parts.

    The replacement for ``hash(name) & mask`` idioms: builtin
    ``hash()`` on strings varies with hash randomization, which
    silently forks RNG streams (and thus generated key material)
    across processes.
    """
    text = "|".join(str(part) for part in parts)
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:4], "big")


def split_ranges(total: int, parts: int) -> List[Tuple[int, int]]:
    """Partition ``range(total)`` into *parts* contiguous [lo, hi) ranges.

    Ranges cover the space exactly with sizes differing by at most one;
    empty ranges are dropped (so ``parts > total`` yields ``total``
    singleton ranges).
    """
    parts = max(1, parts)
    base, extra = divmod(total, parts)
    ranges: List[Tuple[int, int]] = []
    lo = 0
    for index in range(parts):
        hi = lo + base + (1 if index < extra else 0)
        if hi > lo:
            ranges.append((lo, hi))
        lo = hi
    return ranges
