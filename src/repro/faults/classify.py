"""Deterministic fault classification for the supervised runtime.

PR 3's injectors perturb the *simulated* network; this module is about
faults in the *real* execution substrate — a shard worker that raises,
crashes, or hangs.  The supervisor
(:class:`repro.runtime.supervisor.SupervisedExecutor`) must decide,
deterministically, whether a failed attempt is worth retrying:

* :data:`FaultClass.TRANSIENT` — retry with capped backoff.  Flaky
  substrate: timeouts, dropped connections, interrupted syscalls.
* :data:`FaultClass.PERMANENT` — quarantine immediately.  The shard
  itself is wrong (bad payload, missing entrypoint, assertion); a
  retry would fail identically and waste the budget.
* :data:`FaultClass.POISON` — quarantine immediately *and* flag the
  shard as worker-killing.  Resource exhaustion and repeated worker
  crashes land here: re-running the shard endangers the pool.

Classification is by exception *type name* (a string), not by type
object, because failures cross a process boundary — the supervisor
sees ``(type name, message)`` from the worker's pipe, never the live
exception.  The registry is a plain dict so embedders can hook their
own exception taxonomies with :func:`register_fault_class`.
"""

from __future__ import annotations

import enum
from typing import Dict, List


class FaultClass(enum.Enum):
    """What a failed shard attempt means for the retry budget."""

    TRANSIENT = "transient"
    PERMANENT = "permanent"
    POISON = "poison"


class TransientShardError(RuntimeError):
    """A shard failure that is expected to succeed on retry.

    Workers (and the chaos harness) raise this to signal "substrate
    hiccup, try again"; the supervisor classifies it TRANSIENT.
    """


class PermanentShardError(RuntimeError):
    """A shard failure that will recur on every retry.

    Raised for semantic failures — a retry with the same payload would
    fail identically, so the supervisor quarantines immediately.
    """


#: Exception type name → class.  Names, not types: failures arrive
#: over a process boundary as strings.
_FAULT_CLASSES: Dict[str, FaultClass] = {
    # Substrate hiccups: worth retrying.
    "TransientShardError": FaultClass.TRANSIENT,
    "TimeoutError": FaultClass.TRANSIENT,
    "ConnectionError": FaultClass.TRANSIENT,
    "ConnectionResetError": FaultClass.TRANSIENT,
    "ConnectionRefusedError": FaultClass.TRANSIENT,
    "ConnectionAbortedError": FaultClass.TRANSIENT,
    "BrokenPipeError": FaultClass.TRANSIENT,
    "InterruptedError": FaultClass.TRANSIENT,
    "EOFError": FaultClass.TRANSIENT,
    # Shard-is-wrong failures: retries are wasted work.
    "PermanentShardError": FaultClass.PERMANENT,
    # Worker-killing failures: re-running endangers the pool.
    "MemoryError": FaultClass.POISON,
    "RecursionError": FaultClass.POISON,
    "SystemExit": FaultClass.POISON,
    "KeyboardInterrupt": FaultClass.POISON,
}

#: Everything not registered is PERMANENT: an unknown exception is a
#: bug in the shard until proven flaky, and burning the retry budget
#: on it delays the quarantine verdict without changing it.
_DEFAULT_CLASS = FaultClass.PERMANENT


def classify_exception(type_name: str) -> FaultClass:
    """The fault class of an exception *type name* (e.g. ``"OSError"``)."""
    return _FAULT_CLASSES.get(type_name, _DEFAULT_CLASS)


def register_fault_class(type_name: str, fault_class: FaultClass) -> None:
    """Register (or override) the class of an exception type name."""
    _FAULT_CLASSES[type_name] = fault_class


def fault_class_names() -> List[str]:
    """The registered exception type names, sorted."""
    return sorted(_FAULT_CLASSES)
