"""Named client resilience policies for OCSP fetching.

The paper's Section-6 browser analysis hinges on what a client does
when an OCSP fetch fails: most browsers soft-fail, Firefox hard-fails
Must-Staple certificates, and Chrome never fetches at all (CRLSets).
A :class:`ClientPolicy` makes that axis explicit and parameterizes the
resilience machinery in :class:`repro.ocsp.OCSPClient`: per-attempt
timeout budgets judged against ``FetchResult.elapsed_ms``, bounded
retries with deterministic backoff, failover across every advertised
responder URL, and optional CRL fallback.

Retries advance the simulated clock by the backoff schedule — the
simulated network is a pure function of ``(request, vantage, now)``,
so retrying at the same instant would be a no-op by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class ClientPolicy:
    """How aggressively a relying party pursues revocation status."""

    name: str
    #: False models CRLSet-style clients that never send OCSP requests.
    check_revocation: bool = True
    #: An attempt slower than this (per ``FetchResult.elapsed_ms``)
    #: counts as a timeout even if bytes eventually arrived.
    attempt_timeout_ms: Optional[float] = None
    #: Stop starting new attempts once the summed budget passes this.
    total_timeout_ms: Optional[float] = None
    #: Re-tries of one URL beyond the first attempt.
    retries_per_url: int = 0
    #: Base backoff in seconds; retry *i* waits ``backoff_s * 2**i``.
    backoff_s: int = 2
    #: Try every URL in ``certificate.ocsp_urls``, not just the first.
    failover: bool = True
    #: Fall back to the certificate's CRL distribution points when
    #: every OCSP attempt failed.
    crl_fallback: bool = False
    #: Must-Staple semantics: a connection with no verified status is
    #: broken rather than allowed through.
    hard_fail: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """Stable field mapping."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClientPolicy":
        """Rebuild from :meth:`to_dict` output."""
        return cls(**{spec.name: data[spec.name]
                      for spec in fields(cls) if spec.name in data})

    def backoff_schedule(self, attempts: int) -> List[int]:
        """Cumulative seconds-after-*now* for each of *attempts* tries;
        the first entry is always 0 (try immediately)."""
        waits = [0]
        for attempt in range(attempts - 1):
            waits.append(waits[-1] + self.backoff_s * 2 ** attempt)
        return waits


#: The pre-fault-injection client behaviour: one attempt per URL, all
#: URLs tried in order, no timeouts, no CRL fallback, soft-fail.
DEFAULT_POLICY = ClientPolicy(name="default")

#: Firefox's soft-fail fetch: short per-attempt patience, no retries,
#: connection proceeds without revocation info on failure.
FIREFOX_SOFT_FAIL = ClientPolicy(
    name="firefox-soft-fail",
    attempt_timeout_ms=2_000.0,
    total_timeout_ms=10_000.0,
)

#: The Must-Staple hard-fail stance (Firefox with the flag enforced):
#: patient, retries with backoff, CRL fallback — and the connection
#: breaks when everything fails.
MUST_STAPLE_HARD_FAIL = ClientPolicy(
    name="must-staple-hard-fail",
    attempt_timeout_ms=10_000.0,
    total_timeout_ms=30_000.0,
    retries_per_url=1,
    crl_fallback=True,
    hard_fail=True,
)

#: Chrome-style: revocation is handled out of band (CRLSets); the
#: client never issues an OCSP request.
NO_CHECK = ClientPolicy(name="no-check", check_revocation=False)

POLICIES: Dict[str, ClientPolicy] = {
    policy.name: policy
    for policy in (DEFAULT_POLICY, FIREFOX_SOFT_FAIL, MUST_STAPLE_HARD_FAIL,
                   NO_CHECK)
}


def client_policy(name: str) -> ClientPolicy:
    """Look up a named policy."""
    if name not in POLICIES:
        raise KeyError(f"unknown client policy: {name!r} "
                       f"(known: {', '.join(sorted(POLICIES))})")
    return POLICIES[name]


def policy_names() -> List[str]:
    """The catalogue, stable order."""
    return list(POLICIES)


def for_browser(browser) -> ClientPolicy:
    """Map a Table-2 :class:`repro.browser.BrowserPolicy` onto the
    client policy matching its observed fetch behaviour."""
    if browser.respects_must_staple:
        return MUST_STAPLE_HARD_FAIL
    if browser.fallback_own_ocsp:
        return FIREFOX_SOFT_FAIL
    return NO_CHECK
