"""Chaos experiments: scenario sweeps through the shared runtime.

Two registry entries live here, planned/executed/merged exactly like
every other experiment (content-addressed shards, byte-identical
merges at any worker count):

* ``chaos-availability`` — the Figure-3 hourly scan repeated under
  each fault scenario, reporting availability and added latency per
  scenario;
* ``chaos-client-outcomes`` — a scenario × client-policy grid of
  resilient OCSP lookups, reporting how many connections succeed,
  soft-fail, get rescued by the CRL fallback, or would break under a
  Must-Staple hard-fail.

Shard payloads carry scenario *names*; workers rebuild the plan from
the catalogue, so cache keys stay small and stable.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..canon import split_ranges
from ..simnet import DAY, HTTPResponse, Network
from ..simnet.http import split_url
from .policy import client_policy
from .scenarios import FaultyNetwork, scenario

_WORKERS = "repro.faults.experiments"


# ---------------------------------------------------------------------------
# shard workers
# ---------------------------------------------------------------------------

def _crl_service(authority):
    """Serve the authority's CRL, rebuilt (and cached) once per day."""
    built: Dict[int, bytes] = {}

    def handle(request, now: int) -> HTTPResponse:
        epoch = now - now % DAY
        if epoch not in built:
            built[epoch] = authority.build_crl(epoch).der
        return HTTPResponse(status_code=200, body=built[epoch],
                            headers={"Content-Type": "application/pkix-crl"})

    return handle


def crl_bindings(world) -> Network:
    """A side network binding every authority's CRL distribution point.

    The measurement world advertises CRL URLs in its certificates but
    never binds them (the paper's scans are OCSP-only); the chaos
    client experiments need them reachable for the CRL-fallback
    policies.  Bindings live in a *separate* Network consulted by
    :class:`FaultyNetwork`, so the shared world stays untouched.
    """
    extra = Network()
    bound = set()
    for site in world.sites:
        crl_url = getattr(site.authority, "crl_url", None)
        if not crl_url:
            continue
        host = split_url(crl_url)[1]
        if host in bound:
            continue
        bound.add(host)
        origin = extra.add_origin(f"crl:{host}", site.region,
                                  _crl_service(site.authority))
        extra.bind(host, origin)
    return extra


def chaos_scan_shard(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """One contiguous target range of one scenario's hourly scan.

    Mirrors :func:`repro.runtime.runners.scan_shard` with the world's
    network wrapped in the scenario's :class:`FaultyNetwork` — the
    ``baseline`` scenario is the empty plan and reproduces the plain
    scan byte-for-byte.
    """
    from ..runtime.configs import ScanCampaignConfig
    from ..runtime.runners import _world_for
    from ..runtime.sharding import campaign_window
    from ..scanner.hourly import HourlyScanner
    from ..scanner.io import record_to_dict
    from ..simnet.vantage import VANTAGE_POINTS
    config = ScanCampaignConfig.from_dict(payload["campaign"])
    world = _world_for(payload["campaign"]["world"])
    plan = scenario(payload["scenario"], seed=payload["fault_seed"])
    network = FaultyNetwork(world.network, plan)
    vantages = list(config.vantages or VANTAGE_POINTS)
    lo, hi = payload["lo"], payload["hi"]
    scanner = HourlyScanner(world, vantages=vantages,
                            interval=config.interval, network=network)
    targets = world.scan_targets()[lo:hi]
    start, end = campaign_window(config)

    rows: List[Dict[str, Any]] = []
    now = start
    while now < end:
        for ti, target in enumerate(targets, start=lo):
            if target.certificate.validity.not_after < now:
                continue
            for vi, vantage in enumerate(vantages):
                row = record_to_dict(scanner.probe(target, vantage, now))
                row["ti"] = ti
                row["vi"] = vi
                rows.append(row)
        now += config.interval
    return rows


def chaos_client_shard(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """One (scenario, policy) cell of the client-outcome grid."""
    from ..ocsp import OCSPClient
    from ..runtime.runners import _world_for
    from ..simnet.vantage import VANTAGE_POINTS
    world = _world_for(payload["world"])
    plan = scenario(payload["scenario"], seed=payload["fault_seed"])
    policy = client_policy(payload["policy"])
    network = FaultyNetwork(world.network, plan, extra=crl_bindings(world))
    vantages = list(payload.get("vantages") or VANTAGE_POINTS)
    targets = world.scan_targets()

    rows: List[Dict[str, Any]] = []
    for vantage in vantages:
        client = OCSPClient(network, vantage=vantage, policy=policy)
        for ts in payload["times"]:
            counts = {"ok": 0, "soft_fail": 0, "broken": 0,
                      "crl_rescue": 0, "no_check": 0}
            attempts = 0
            timeouts = 0
            latency_ms = 0.0
            for target in targets:
                result = client.check(target.certificate,
                                      target.site.authority.certificate, ts)
                attempts += len(result.attempts)
                timeouts += result.timeouts
                latency_ms += result.total_elapsed_ms
                if result.skipped:
                    counts["no_check"] += 1
                elif result.via_crl:
                    counts["crl_rescue"] += 1
                elif result.ok:
                    counts["ok"] += 1
                elif policy.hard_fail:
                    counts["broken"] += 1
                else:
                    counts["soft_fail"] += 1
            rows.append({"vantage": vantage, "ts": ts,
                         "connections": len(targets), **counts,
                         "attempts": attempts, "timeouts": timeouts,
                         "latency_ms": round(latency_ms, 3)})
    return rows


# ---------------------------------------------------------------------------
# shard planners
# ---------------------------------------------------------------------------

def chaos_scan_shards(config) -> List:
    """Scenario-major target-range shards (a pure function of config)."""
    from ..runtime.executor import ShardSpec
    campaign = config.campaign.to_dict()
    n_targets = (config.campaign.world.n_responders
                 * config.campaign.world.certs_per_responder)
    return [
        ShardSpec(worker=f"{_WORKERS}:chaos_scan_shard",
                  payload={"campaign": campaign, "scenario": name,
                           "fault_seed": config.fault_seed,
                           "lo": lo, "hi": hi},
                  label=f"chaos[{name}][{lo}:{hi}]")
        for name in config.scenarios
        for lo, hi in split_ranges(n_targets, config.campaign.target_chunks)
    ]


def chaos_client_shards(config) -> List:
    """One shard per (scenario, policy) grid cell."""
    from ..runtime.executor import ShardSpec
    return [
        ShardSpec(worker=f"{_WORKERS}:chaos_client_shard",
                  payload={"world": config.world.to_dict(), "scenario": name,
                           "policy": policy, "times": list(config.times),
                           "vantages": (list(config.vantages)
                                        if config.vantages else None),
                           "fault_seed": config.fault_seed},
                  label=f"chaos[{name}][{policy}]")
        for name in config.scenarios
        for policy in config.policies
    ]


# ---------------------------------------------------------------------------
# experiment runners
# ---------------------------------------------------------------------------

def run_chaos_availability(ctx, config) -> Dict[str, Any]:
    """Figures 3/4 extended: availability under each fault scenario."""
    from ..core.availability import analyze_availability
    from ..runtime.sharding import merge_scan_rows
    from ..scanner.results import ProbeOutcome
    outputs = ctx.run_shards(chaos_scan_shards(config))
    chunks = len(outputs) // len(config.scenarios)

    rows: List[Dict[str, Any]] = []
    series: Dict[str, Any] = {}
    scenarios_summary: Dict[str, Any] = {}
    datasets = {}
    for index, name in enumerate(config.scenarios):
        shard_rows = outputs[index * chunks:(index + 1) * chunks]
        dataset = merge_scan_rows(config.campaign, shard_rows)
        datasets[name] = dataset
        report = analyze_availability(dataset)
        mean_ms = (sum(r.elapsed_ms for r in dataset.records)
                   / len(dataset.records)) if dataset.records else 0.0
        # Figure-5 layer: transport succeeded but the response didn't
        # verify (stale/tampered bodies fail *here*, not in Figure 3).
        usable = sum(1 for r in dataset.records
                     if r.outcome is ProbeOutcome.OK)
        unusable = (100.0 * (1.0 - usable / len(dataset.records))
                    if dataset.records else 0.0)
        for vantage, points in report.success_series.items():
            series[f"{name}/{vantage}"] = points
            rows += [{"scenario": name, "timestamp": ts, "vantage": vantage,
                      "success_pct": pct} for ts, pct in points]
        scenarios_summary[name] = {
            "overall_failure_rate": report.overall_failure_rate,
            "unusable_rate": round(unusable, 6),
            "mean_elapsed_ms": round(mean_ms, 3),
            "never_successful_anywhere":
                len(report.never_successful_anywhere),
        }

    baseline = scenarios_summary.get("baseline")
    if baseline is not None:
        for name, entry in scenarios_summary.items():
            entry["added_latency_ms"] = round(
                entry["mean_elapsed_ms"] - baseline["mean_elapsed_ms"], 3)
            entry["added_failure_rate"] = round(
                entry["overall_failure_rate"]
                - baseline["overall_failure_rate"], 6)
            entry["added_unusable_rate"] = round(
                entry["unusable_rate"] - baseline["unusable_rate"], 6)

    return {
        "rows": rows,
        "series": series,
        "summary": {"scenarios": scenarios_summary,
                    "probes_per_scenario": (len(datasets[config.scenarios[0]])
                                            if config.scenarios else 0)},
        "artifacts": {"datasets": datasets},
    }


def run_chaos_client_outcomes(ctx, config) -> Dict[str, Any]:
    """The scenario × client-policy resilience grid."""
    specs = chaos_client_shards(config)
    outputs = ctx.run_shards(specs)

    rows: List[Dict[str, Any]] = []
    grid: Dict[str, Any] = {}
    cells = [(name, policy) for name in config.scenarios
             for policy in config.policies]
    for (name, policy), shard_rows in zip(cells, outputs):
        connections = sum(row["connections"] for row in shard_rows)
        totals = {key: sum(row[key] for row in shard_rows)
                  for key in ("ok", "soft_fail", "broken", "crl_rescue",
                              "no_check", "attempts", "timeouts")}
        latency = sum(row["latency_ms"] for row in shard_rows)
        for row in shard_rows:
            rows.append({"scenario": name, "policy": policy, **row})
        proceeded = connections - totals["broken"]
        grid[f"{name}/{policy}"] = {
            "connections": connections,
            "ok_fraction": totals["ok"] / connections if connections else 0.0,
            "broken_fraction":
                totals["broken"] / connections if connections else 0.0,
            "crl_rescue_fraction":
                totals["crl_rescue"] / connections if connections else 0.0,
            "soft_fail_fraction":
                totals["soft_fail"] / connections if connections else 0.0,
            "no_check_fraction":
                totals["no_check"] / connections if connections else 0.0,
            #: Connections that loaded the page (however unsafely).
            "proceed_fraction":
                proceeded / connections if connections else 0.0,
            "mean_attempts":
                totals["attempts"] / connections if connections else 0.0,
            "timeouts": totals["timeouts"],
            "mean_latency_ms":
                round(latency / connections, 3) if connections else 0.0,
        }

    # The headline the tentpole asks for: the fraction of connections
    # a Must-Staple hard-fail would break, per scenario.
    hard_fail_broken = {
        name: grid[f"{name}/{policy}"]["broken_fraction"]
        for name in config.scenarios
        for policy in config.policies
        if client_policy(policy).hard_fail
    }
    return {
        "rows": rows,
        "series": {"hard_fail_broken": sorted(hard_fail_broken.items())},
        "summary": {"grid": grid, "hard_fail_broken": hard_fail_broken},
    }
