"""Fault plans and the network wrapper that enacts them.

A :class:`FaultPlan` is a named, digest-stable composition of
injectors.  :class:`FaultyNetwork` wraps any object with the
``fetch(vantage, request, now)`` shape — normally a
:class:`repro.simnet.Network` — and applies the plan *around* it: the
inner network is never modified, and an empty plan is a byte-identical
passthrough (the chaos experiments' baseline scenario reproduces the
Figure 3/4 numbers exactly because of this).

The module also carries the named scenario catalogue the chaos
experiments sweep; each scenario is anchored at
``MEASUREMENT_START`` so plans serialize to the same digest on every
machine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..canon import stable_digest
from ..simnet import (
    DAY,
    HOUR,
    MEASUREMENT_START,
    FailureKind,
    FetchResult,
    HTTPResponse,
    Network,
)
from ..simnet.http import split_url
from ..simnet.network import DNS_RTT_MS
from .injectors import (
    Blackout,
    BodyTamper,
    Decision,
    DnsFlap,
    ErrorBurst,
    Injector,
    LatencySpike,
    RequestDrop,
    StaleServe,
    injector_from_dict,
)


@dataclass
class FaultPlan:
    """A named, serializable composition of fault injectors."""

    name: str
    injectors: Tuple[Injector, ...] = ()
    seed: int = 0

    @property
    def is_empty(self) -> bool:
        """True for the do-nothing (baseline) plan."""
        return not self.injectors

    def to_dict(self) -> Dict[str, Any]:
        """Stable field mapping."""
        return {
            "name": self.name,
            "seed": self.seed,
            "injectors": [injector.to_dict() for injector in self.injectors],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            seed=data.get("seed", 0),
            injectors=tuple(injector_from_dict(entry)
                            for entry in data.get("injectors", ())),
        )

    def plan_digest(self) -> str:
        """Content address of this plan — cache-key material."""
        return stable_digest(self.to_dict())


def _tampered_body(mode: str, body: bytes) -> bytes:
    """Rewrite one successful OCSP body per the tamper *mode*."""
    from ..ocsp.response import ResponseStatus, encode_error_response
    if mode == "malformed":
        return b"<html><body>502 Bad Gateway</body></html>"
    if mode == "truncated":
        return body[: len(body) // 2]
    if mode == "unauthorized":
        return encode_error_response(ResponseStatus.UNAUTHORIZED)
    if mode == "try_later":
        return encode_error_response(ResponseStatus.TRY_LATER)
    raise ValueError(f"unknown tamper mode: {mode!r}")


class FaultyNetwork:
    """A :class:`repro.simnet.Network` wrapper that enacts a fault plan.

    *extra* optionally supplies additional hostname bindings (e.g. CRL
    distribution points the measurement world never bound) consulted
    before the inner network — again without mutating either network.

    With an empty plan and no extra bindings, ``fetch`` returns the
    inner network's :class:`FetchResult` object unchanged.
    """

    def __init__(self, inner, plan: Optional[FaultPlan] = None,
                 extra: Optional[Network] = None) -> None:
        self.inner = inner
        self.plan = plan or FaultPlan(name="baseline")
        self.extra = extra

    def _route(self, vantage: str, request, now: int) -> FetchResult:
        """Dispatch to the extra bindings when they cover the host."""
        if self.extra is not None and \
                self.extra.get_binding(request.host) is not None:
            return self.extra.fetch(vantage, request, now)
        return self.inner.fetch(vantage, request, now)

    def fetch(self, vantage: str, request, now: int) -> FetchResult:
        """One exchange through the plan, then the wrapped network."""
        if self.plan.is_empty:
            return self._route(vantage, request, now)

        host = split_url(request.url)[1]
        failing: Optional[Decision] = None
        delay_ms = 0.0
        tamper: Optional[str] = None
        serve_age: Optional[int] = None
        for injector in self.plan.injectors:
            decision = injector.decide(request.url, host, vantage, now,
                                       self.plan.seed)
            if decision is None:
                continue
            delay_ms += decision.delay_ms
            if decision.fail is not None and failing is None:
                failing = decision
            if decision.tamper is not None:
                tamper = decision.tamper
            if decision.serve_age is not None and serve_age is None:
                serve_age = decision.serve_age

        if failing is not None:
            return self._failed(vantage, request, now, failing, delay_ms)

        result = self._route(vantage, request, now)
        if serve_age is not None and result.ok:
            # Stale serving is a *freshness* fault, not a transport
            # one: the exchange happens now (same outages, noise, and
            # latency as the baseline), but the responder answers from
            # a cache written `serve_age` ago — so verification sees an
            # expired window while Figure-3-style availability doesn't
            # move.
            stale = self._route(vantage, request, now - serve_age)
            if stale.ok:
                result = replace(result, response=stale.response)
        if delay_ms:
            result = replace(result,
                             elapsed_ms=round(result.elapsed_ms + delay_ms, 3))
        if tamper is not None and result.ok:
            response = HTTPResponse(
                status_code=result.response.status_code,
                body=_tampered_body(tamper, result.response.body),
                headers=dict(result.response.headers),
            )
            result = replace(result, response=response)
        return result

    def _failed(self, vantage: str, request, now: int, decision: Decision,
                delay_ms: float) -> FetchResult:
        """Materialize an injected failure with honest path costs."""
        kind = decision.fail
        if kind is FailureKind.DNS:
            # The resolver round trip happens; nothing after it does.
            elapsed = DNS_RTT_MS
        else:
            # Charge the exchange the wrapped network would have
            # billed, so injected TCP/TLS/HTTP failures carry the
            # vantage's real path latency.
            elapsed = self._route(vantage, request, now).elapsed_ms
        response = None
        if kind is FailureKind.HTTP:
            response = HTTPResponse(status_code=decision.status_code)
        return FetchResult(
            url=request.url, vantage=vantage, started_at=now,
            elapsed_ms=round(elapsed + delay_ms, 3),
            failure=kind, response=response,
        )

    def __getattr__(self, name: str):
        # Everything that is not fetch/plan/extra quacks like the
        # wrapped network (bindings, origins, noise, ...).
        return getattr(self.inner, name)


# ---------------------------------------------------------------------------
# the named scenario catalogue
# ---------------------------------------------------------------------------

_T0 = MEASUREMENT_START


def _baseline() -> Tuple[Injector, ...]:
    return ()


def _responder_brownout() -> Tuple[Injector, ...]:
    # 5xx for two hours in every seven, plus a 5% request-loss floor —
    # the "degraded but not dark" shape of the paper's brownouts.  The
    # seven-hour period is deliberately coprime with the scan cadences
    # (6h/12h/24h) so sampling walks through the burst instead of
    # aliasing onto it.
    return (
        ErrorBurst(host_prefixes=("ocsp",), status_code=503,
                   period=7 * HOUR, duty=2 * HOUR, phase=_T0),
        RequestDrop(host_prefixes=("ocsp",), rate=0.05),
    )


def _regional_blackout() -> Tuple[Injector, ...]:
    # A Comodo-style event: every responder dark for 12 hours on day
    # one, visible only from three vantages (region-scoped, as the
    # paper's Digicert/Seoul and Certum/Sydney events were).
    return (
        Blackout(host_prefixes=("ocsp",), failure="TCP",
                 vantages=("Oregon", "Sydney", "Seoul"),
                 start=_T0 + 6 * HOUR, end=_T0 + 18 * HOUR),
    )


def _heavy_tail_latency() -> Tuple[Injector, ...]:
    # Distant vantages pay a base penalty plus a Pareto tail — the
    # Sao-Paulo/Sydney tail-latency effect of Section 5.
    return (
        LatencySpike(vantages=("Sao-Paulo", "Sydney"),
                     added_ms=150.0, tail_ms=400.0, tail_exponent=1.5),
    )


def _stale_responder() -> Tuple[Injector, ...]:
    # CNNIC redux: responders serve five-day-old (signed, once-valid)
    # responses, so verification fails EXPIRED everywhere.
    return (StaleServe(host_prefixes=("ocsp",), age=5 * DAY),)


def _flaky_dns() -> Tuple[Injector, ...]:
    return (DnsFlap(host_prefixes=("ocsp",), period=4 * HOUR, duty=HOUR),)


def _unauthorized_burst() -> Tuple[Injector, ...]:
    # A third of requests get an (unsigned) "unauthorized" error
    # response — transport succeeds, verification cannot.
    return (BodyTamper(host_prefixes=("ocsp",), mode="unauthorized",
                       rate=0.35),)


def _packet_loss() -> Tuple[Injector, ...]:
    return (RequestDrop(rate=0.15),)


SCENARIOS: Dict[str, Callable[[], Tuple[Injector, ...]]] = {
    "baseline": _baseline,
    "responder-brownout": _responder_brownout,
    "regional-blackout": _regional_blackout,
    "heavy-tail-latency": _heavy_tail_latency,
    "stale-responder": _stale_responder,
    "flaky-dns": _flaky_dns,
    "unauthorized-burst": _unauthorized_burst,
    "packet-loss": _packet_loss,
}


def scenario(name: str, seed: int = 0) -> FaultPlan:
    """Build one named scenario's plan."""
    if name not in SCENARIOS:
        raise KeyError(f"unknown fault scenario: {name!r} "
                       f"(known: {', '.join(sorted(SCENARIOS))})")
    return FaultPlan(name=name, injectors=SCENARIOS[name](), seed=seed)


def scenario_names() -> List[str]:
    """The catalogue, stable order."""
    return list(SCENARIOS)
