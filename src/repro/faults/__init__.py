"""repro.faults — deterministic fault injection and client resilience.

Three layers:

* :mod:`repro.faults.injectors` / :mod:`repro.faults.scenarios` — a
  catalogue of named, digest-stable :class:`FaultPlan`\\ s whose
  injectors are pure functions of ``(request, vantage, now, seed)``,
  enacted by :class:`FaultyNetwork` *around* an untouched
  :class:`repro.simnet.Network`;
* :mod:`repro.faults.policy` — named client resilience policies
  (timeout budgets, retries, multi-URL failover, CRL fallback)
  matching the paper's browser behaviors;
* :mod:`repro.faults.experiments` — the ``chaos-availability`` and
  ``chaos-client-outcomes`` runtime experiments sweeping
  scenario × policy grids;
* :mod:`repro.faults.classify` — deterministic classification of
  *execution* faults (raised exceptions, by type name) into
  transient / permanent / poison, consumed by the supervised shard
  executor's retry-or-quarantine decisions.

:mod:`repro.faults.experiments` is intentionally *not* imported here:
it pulls in the runtime/datasets stack, which itself imports
``repro.ocsp`` — whose client lazily imports this package's policies.
"""

from .classify import (
    FaultClass,
    PermanentShardError,
    TransientShardError,
    classify_exception,
    fault_class_names,
    register_fault_class,
)
from .injectors import (
    Blackout,
    BodyTamper,
    Decision,
    DnsFlap,
    ErrorBurst,
    Injector,
    LatencySpike,
    RequestDrop,
    StaleServe,
    injector_from_dict,
    unit_draw,
)
from .policy import (
    DEFAULT_POLICY,
    FIREFOX_SOFT_FAIL,
    MUST_STAPLE_HARD_FAIL,
    NO_CHECK,
    POLICIES,
    ClientPolicy,
    client_policy,
    for_browser,
    policy_names,
)
from .scenarios import (
    SCENARIOS,
    FaultPlan,
    FaultyNetwork,
    scenario,
    scenario_names,
)

__all__ = [
    "Blackout",
    "BodyTamper",
    "ClientPolicy",
    "DEFAULT_POLICY",
    "Decision",
    "DnsFlap",
    "ErrorBurst",
    "FIREFOX_SOFT_FAIL",
    "FaultClass",
    "FaultPlan",
    "FaultyNetwork",
    "Injector",
    "LatencySpike",
    "MUST_STAPLE_HARD_FAIL",
    "NO_CHECK",
    "POLICIES",
    "PermanentShardError",
    "RequestDrop",
    "SCENARIOS",
    "StaleServe",
    "TransientShardError",
    "classify_exception",
    "client_policy",
    "fault_class_names",
    "for_browser",
    "injector_from_dict",
    "policy_names",
    "register_fault_class",
    "scenario",
    "scenario_names",
    "unit_draw",
]
