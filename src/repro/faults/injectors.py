"""Fault injectors: the composable pieces of a fault plan.

Each injector is a declarative description of one failure mode from
the paper's Section-5 observations — scheduled origin blackouts (the
Comodo multi-CNAME event), per-vantage latency spikes with heavy-tail
inflation, seeded probabilistic request drops, stale served responses
(CNNIC's perpetually expired responders), tampered OCSP bodies, HTTP
5xx bursts, and DNS flaps.

An injector never touches the wrapped network; it only *decides*, and
every decision is a pure function of ``(request, vantage, now, seed)``
plus the injector's own declared fields.  Probabilistic injectors draw
from a keyed blake2b hash (the same construction
:meth:`repro.datasets.world.MeasurementWorld._noise` uses), so two
processes — or two shards of one chaos experiment — always agree on
which requests fail.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional, Tuple, Type

from ..simnet import HOUR, FailureKind


def unit_draw(seed: int, *parts: object) -> float:
    """A deterministic draw in [0, 1) keyed on *seed* and *parts*."""
    material = "|".join(str(part) for part in (seed, *parts))
    digest = hashlib.blake2b(material.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2 ** 64


@dataclass
class Decision:
    """What one injector wants done to one request.

    ``fail`` short-circuits the exchange at the named layer;
    ``status_code`` is the HTTP status when ``fail`` is HTTP-level;
    ``delay_ms`` adds latency; ``tamper`` rewrites a successful OCSP
    body; ``serve_age`` serves the origin's (signed, once-valid)
    response from *age* seconds ago instead of a current one.
    """

    fail: Optional[FailureKind] = None
    status_code: int = 503
    delay_ms: float = 0.0
    tamper: Optional[str] = None
    serve_age: Optional[int] = None


@dataclass
class Injector:
    """Shared scoping fields: which hosts/vantages/instants to hit.

    ``hosts`` matches hostname suffixes ("comodo.test" hits every
    responder in the family — the multi-CNAME sharing that made the
    Comodo event wide); ``host_prefixes`` matches hostname prefixes
    ("ocsp" spares CRL endpoints); ``vantages`` scopes regionally the
    way the paper's Digicert/Seoul and Certum/Sydney events were;
    ``start``/``end`` bound the active window (end-exclusive, matching
    :class:`repro.simnet.OutageWindow`).
    """

    kind = "base"

    hosts: Optional[Tuple[str, ...]] = None
    host_prefixes: Optional[Tuple[str, ...]] = None
    vantages: Optional[Tuple[str, ...]] = None
    start: Optional[int] = None
    end: Optional[int] = None

    def matches(self, host: str, vantage: str, now: int) -> bool:
        """True when this injector is in scope for (host, vantage, now)."""
        if self.start is not None and now < self.start:
            return False
        if self.end is not None and now >= self.end:
            return False
        if self.vantages is not None and vantage not in self.vantages:
            return False
        if self.hosts is not None and not host.endswith(tuple(self.hosts)):
            return False
        if self.host_prefixes is not None and \
                not host.startswith(tuple(self.host_prefixes)):
            return False
        return True

    def decide(self, url: str, host: str, vantage: str, now: int,
               seed: int) -> Optional[Decision]:
        """The injector's verdict for one request (None = no effect)."""
        raise NotImplementedError

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Stable field mapping, tagged with the injector kind."""
        data: Dict[str, Any] = {"kind": self.kind}
        for spec in fields(self):
            value = getattr(self, spec.name)
            data[spec.name] = list(value) if isinstance(value, tuple) else value
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Injector":
        """Rebuild one injector from :meth:`to_dict` output."""
        kwargs = {}
        for spec in fields(cls):
            if spec.name not in data:
                continue
            value = data[spec.name]
            kwargs[spec.name] = tuple(value) if isinstance(value, list) else value
        return cls(**kwargs)


@dataclass
class Blackout(Injector):
    """A scheduled origin outage (the Comodo event, composable).

    Unlike :class:`repro.simnet.OutageWindow` this lives outside the
    network, so plans can layer outages over worlds whose schedules are
    already fixed.
    """

    kind = "blackout"

    failure: str = "TCP"
    status_code: int = 503

    def decide(self, url, host, vantage, now, seed):
        if not self.matches(host, vantage, now):
            return None
        return Decision(fail=FailureKind[self.failure],
                        status_code=self.status_code)


@dataclass
class LatencySpike(Injector):
    """Added latency with optional heavy-tail (Pareto) inflation."""

    kind = "latency"

    added_ms: float = 100.0
    tail_ms: float = 0.0
    tail_exponent: float = 1.5

    def decide(self, url, host, vantage, now, seed):
        if not self.matches(host, vantage, now):
            return None
        delay = self.added_ms
        if self.tail_ms > 0:
            draw = unit_draw(seed, self.kind, host, vantage, now)
            # Pareto with unit minimum, shifted so the median request
            # sees little of it and the tail sees a lot.
            inflation = (1.0 - draw) ** (-1.0 / self.tail_exponent) - 1.0
            delay += self.tail_ms * inflation
        return Decision(delay_ms=round(delay, 3))


@dataclass
class RequestDrop(Injector):
    """Seeded probabilistic request loss."""

    kind = "drop"

    rate: float = 0.1
    failure: str = "TCP"

    def decide(self, url, host, vantage, now, seed):
        if not self.matches(host, vantage, now):
            return None
        if unit_draw(seed, self.kind, host, vantage, now) < self.rate:
            return Decision(fail=FailureKind[self.failure])
        return None


@dataclass
class ErrorBurst(Injector):
    """Periodic HTTP 5xx bursts (responder brownouts)."""

    kind = "burst"

    status_code: int = 503
    period: int = 6 * HOUR
    duty: int = HOUR
    phase: int = 0

    def decide(self, url, host, vantage, now, seed):
        if not self.matches(host, vantage, now):
            return None
        if (now - self.phase) % self.period < self.duty:
            return Decision(fail=FailureKind.HTTP,
                            status_code=self.status_code)
        return None


@dataclass
class DnsFlap(Injector):
    """Alternating DNS resolution failures, phase-shifted per host."""

    kind = "dnsflap"

    period: int = 4 * HOUR
    duty: int = HOUR

    def decide(self, url, host, vantage, now, seed):
        if not self.matches(host, vantage, now):
            return None
        # Hosts flap out of phase with each other, as real zones do.
        phase = int(unit_draw(seed, self.kind, host) * self.period)
        if (now + phase) % self.period < self.duty:
            return Decision(fail=FailureKind.DNS)
        return None


@dataclass
class StaleServe(Injector):
    """Serve the response the origin produced *age* seconds ago.

    The replayed body is genuinely signed and was once valid — exactly
    CNNIC's "perpetually stale" behaviour: clients see EXPIRED from
    the verifier, not a transport failure.
    """

    kind = "stale"

    age: int = 5 * 24 * HOUR

    def decide(self, url, host, vantage, now, seed):
        if not self.matches(host, vantage, now):
            return None
        return Decision(serve_age=self.age)


@dataclass
class BodyTamper(Injector):
    """Rewrite successful OCSP bodies: ``malformed`` / ``truncated`` /
    ``unauthorized`` / ``try_later`` (the paper's Figure-5 classes)."""

    kind = "tamper"

    mode: str = "malformed"
    rate: float = 1.0

    def decide(self, url, host, vantage, now, seed):
        if not self.matches(host, vantage, now):
            return None
        if self.rate >= 1.0 or \
                unit_draw(seed, self.kind, host, vantage, now) < self.rate:
            return Decision(tamper=self.mode)
        return None


INJECTOR_KINDS: Dict[str, Type[Injector]] = {
    cls.kind: cls
    for cls in (Blackout, LatencySpike, RequestDrop, ErrorBurst, DnsFlap,
                StaleServe, BodyTamper)
}


def injector_from_dict(data: Dict[str, Any]) -> Injector:
    """Rebuild any injector from its kind-tagged mapping."""
    kind = data.get("kind")
    if kind not in INJECTOR_KINDS:
        raise KeyError(f"unknown injector kind: {kind!r}")
    return INJECTOR_KINDS[kind].from_dict(data)
