"""Seeded, structure-aware DER mutation families.

Every mutant is a pure function of ``(document, mutation_id, seed)``
(plus the fixed donor set for splicing): the family is selected by
``mutation_id`` round-robin and all randomness comes from
``derived_rng(seed, "hostile", mutation_id)``, so any shard of any run
regenerates byte-identical mutants — the property the hostile-corpus
experiment's cache keys and cross-worker merges rest on.

The families mirror how real-web DER goes wrong (and how Frankencert-
style adversarial testing damages it on purpose): truncation at element
boundaries, length octets that lie in either direction, identifier-
octet flips, subtrees transplanted between document types, corrupted
OIDs/times/signatures, BER indefinite lengths, and the two classic
resource attacks — nesting bombs and announced-length bombs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..asn1 import encoder, tags
from ..canon import derived_rng
from .tlv import (
    TLVNode,
    element_spans,
    encode_forest,
    flatten,
    flatten_slots,
    parse_forest,
)

#: Mutation family names, in round-robin order.  Appending here is
#: cheap; reordering or removing entries changes every mutant stream.
FAMILIES: Tuple[str, ...] = (
    "truncate",
    "length-inflate",
    "length-deflate",
    "tag-flip",
    "splice",
    "oid-corrupt",
    "time-corrupt",
    "sig-corrupt",
    "bitflip",
    "ber-indefinite",
    "depth-bomb",
    "length-bomb",
)


@dataclass(frozen=True)
class Mutant:
    """One labelled hostile document."""

    family: str
    mutation_id: int
    der: bytes


def mutate(document: bytes, mutation_id: int, seed: int,
           donors: Sequence[bytes] = ()) -> Mutant:
    """Produce the ``mutation_id``-th mutant of *document* under *seed*.

    *donors* supplies foreign documents for the splice family (falling
    back to self-splicing when empty).
    """
    document = bytes(document)
    family = FAMILIES[mutation_id % len(FAMILIES)]
    rng = derived_rng(seed, "hostile", mutation_id)
    der = _MUTATORS[family](document, rng, tuple(donors) or (document,))
    return Mutant(family=family, mutation_id=mutation_id, der=der)


# ---------------------------------------------------------------------------
# family implementations — each (document, rng, donors) -> bytes
# ---------------------------------------------------------------------------

def _bitflip(document: bytes, rng: random.Random,
             donors: Sequence[bytes]) -> bytes:
    """Flip one random bit anywhere in the document."""
    data = bytearray(document)
    position = rng.randrange(len(data))
    data[position] ^= 1 << rng.randrange(8)
    return bytes(data)


def _truncate(document: bytes, rng: random.Random,
              donors: Sequence[bytes]) -> bytes:
    """Cut the document at a random element boundary."""
    boundaries = set()
    for offset, header_len, content_len in element_spans(document):
        boundaries.add(offset)
        boundaries.add(offset + header_len)
        boundaries.add(offset + header_len + content_len)
    boundaries -= {0, len(document)}
    if not boundaries:
        return document[:1]
    return document[:rng.choice(sorted(boundaries))]


def _length_inflate(document: bytes, rng: random.Random,
                    donors: Sequence[bytes]) -> bytes:
    """Announce more content than one element actually carries."""
    tree = parse_forest(document)
    node = rng.choice(flatten(tree))
    node.length_override = _natural_length(node) + rng.randint(1, 255)
    return encode_forest(tree)


def _length_deflate(document: bytes, rng: random.Random,
                    donors: Sequence[bytes]) -> bytes:
    """Announce less content than one element actually carries."""
    tree = parse_forest(document)
    node = rng.choice(flatten(tree))
    natural = _natural_length(node)
    node.length_override = (natural - rng.randint(1, natural)) if natural else 1
    return encode_forest(tree)


def _tag_flip(document: bytes, rng: random.Random,
              donors: Sequence[bytes]) -> bytes:
    """Flip the class bits or the constructed bit of one element."""
    tree = parse_forest(document)
    node = rng.choice(flatten(tree))
    mask = rng.choice((tags.CONSTRUCTED, tags.CLASS_APPLICATION,
                       tags.CLASS_CONTEXT, tags.CLASS_PRIVATE, 0x01))
    node.tag ^= mask
    if node.tag & tags.TAG_NUMBER_MASK == 0x1F:
        node.tag ^= 0x01  # keep the tag single-octet parseable
    return encode_forest(tree)


def _splice(document: bytes, rng: random.Random,
            donors: Sequence[bytes]) -> bytes:
    """Replace a random subtree with one from a donor document."""
    tree = parse_forest(document)
    donor_tree = parse_forest(rng.choice(list(donors)))
    graft = rng.choice(flatten(donor_tree))
    container, index = rng.choice(flatten_slots(tree))
    container[index] = graft
    return encode_forest(tree)


def _oid_corrupt(document: bytes, rng: random.Random,
                 donors: Sequence[bytes]) -> bytes:
    """Damage one OBJECT IDENTIFIER's content octets."""
    tree = parse_forest(document)
    oids = [node for node in flatten(tree)
            if node.tag == tags.OBJECT_IDENTIFIER and node.content]
    if not oids:
        return _bitflip(document, rng, donors)
    node = rng.choice(oids)
    mode = rng.randrange(3)
    if mode == 0:  # scramble one arc byte
        data = bytearray(node.content)
        data[rng.randrange(len(data))] = rng.randrange(256)
        node.content = bytes(data)
    elif mode == 1:  # dangling continuation bit — arc never terminates
        node.content += b"\x80"
    else:  # drop the final arc byte
        node.content = node.content[:-1]
    return encode_forest(tree)


def _time_corrupt(document: bytes, rng: random.Random,
                  donors: Sequence[bytes]) -> bytes:
    """Damage one UTCTime/GeneralizedTime string."""
    tree = parse_forest(document)
    times = [node for node in flatten(tree)
             if node.tag in (tags.UTC_TIME, tags.GENERALIZED_TIME)
             and node.content]
    if not times:
        return _bitflip(document, rng, donors)
    node = rng.choice(times)
    data = bytearray(node.content)
    data[rng.randrange(len(data))] = rng.choice(b"0123456789Zz+. ")
    node.content = bytes(data)
    return encode_forest(tree)


def _sig_corrupt(document: bytes, rng: random.Random,
                 donors: Sequence[bytes]) -> bytes:
    """Flip one bit inside the last BIT STRING (the signatureValue)."""
    tree = parse_forest(document)
    bit_strings = [node for node in flatten(tree)
                   if node.tag == tags.BIT_STRING and len(node.content) > 1]
    if not bit_strings:
        return _bitflip(document, rng, donors)
    node = bit_strings[-1]
    data = bytearray(node.content)
    position = 1 + rng.randrange(len(data) - 1)  # keep the unused-bits octet
    data[position] ^= 1 << rng.randrange(8)
    node.content = bytes(data)
    return encode_forest(tree)


def _ber_indefinite(document: bytes, rng: random.Random,
                    donors: Sequence[bytes]) -> bytes:
    """Re-encode one constructed element with BER indefinite length."""
    tree = parse_forest(document)
    constructed = [node for node in flatten(tree) if node.constructed]
    if not constructed:
        return _bitflip(document, rng, donors)
    rng.choice(constructed).indefinite = True
    return encode_forest(tree)


def _depth_bomb(document: bytes, rng: random.Random,
                donors: Sequence[bytes]) -> bytes:
    """Bury the document under hundreds of nested SEQUENCEs."""
    depth = rng.randrange(200, 2000)
    body = document
    for _ in range(depth):
        body = encoder.encode_tlv(tags.SEQUENCE, body)
    return body


def _length_bomb(document: bytes, rng: random.Random,
                 donors: Sequence[bytes]) -> bytes:
    """Announce an absurd length over a small buffer."""
    if rng.randrange(2):
        # 8 length octets announcing up to 2**63 bytes of content.
        announced = (1 << 62) + rng.randrange(1 << 32)
        header = bytes([tags.SEQUENCE, 0x88]) + announced.to_bytes(8, "big")
    else:
        # 127 length octets — over any sane decoder's cap.
        header = bytes([tags.SEQUENCE, 0xFF]) + bytes(127)
    return header + document


_MUTATORS: Dict[str, Callable[[bytes, random.Random, Sequence[bytes]], bytes]] = {
    "truncate": _truncate,
    "length-inflate": _length_inflate,
    "length-deflate": _length_deflate,
    "tag-flip": _tag_flip,
    "splice": _splice,
    "oid-corrupt": _oid_corrupt,
    "time-corrupt": _time_corrupt,
    "sig-corrupt": _sig_corrupt,
    "bitflip": _bitflip,
    "ber-indefinite": _ber_indefinite,
    "depth-bomb": _depth_bomb,
    "length-bomb": _length_bomb,
}


def _natural_length(node: TLVNode) -> int:
    """The true encoded size of a node's content."""
    if node.children is not None:
        return len(encode_forest(node.children))
    return len(node.content)
