"""Seed documents and mutant classification for the hostile corpus.

:func:`seed_world` mints one canonical well-formed document per kind
(leaf certificate, OCSP response, CRL) from the simulated PKI — the
same recipe the lint self-test uses, under a hostile-specific seed —
and :func:`classify_mutant` pushes a mutated document through the full
consumer stack in pipeline order:

1. **parse** — the scanner-layer entrypoint for the kind
   (``Certificate.from_der`` / ``OCSPResponse.from_der`` /
   ``CertificateList.from_der``);
2. **lint** — :class:`repro.lint.LintEngine` with full context;
3. **verify** — signature/window verification
   (:func:`repro.ocsp.verify.verify_response` for OCSP, which is the
   scanner's verification layer, and ``verify_signature`` for
   certificates/CRLs).

The outcome taxonomy deliberately separates ``parse_error`` (a typed
:class:`~repro.asn1.errors.ASN1Error` — the hardened pipeline working
as designed) from ``unexpected_exception`` (any other exception type —
the bug class this experiment exists to hunt; the acceptance criterion
is that its count is zero).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from ..asn1.errors import ASN1Error
from ..ca import CertificateAuthority, OCSPResponder
from ..crypto import KeyPool
from ..lint.engine import (
    KIND_CERTIFICATE,
    KIND_CRL,
    KIND_OCSP,
    LintContext,
    LintEngine,
)
from ..lint.findings import Severity
from ..ocsp import CertID, OCSPRequest
from ..ocsp.verify import verify_response
from ..simnet.clock import DAY, MEASUREMENT_START

from ..x509 import Certificate, CertificateList
from .tlv import tlv_fixed_point

#: Document kinds, in shard-plan order.
KINDS: Tuple[str, ...] = ("certificate", "ocsp", "crl")

#: Classification outcomes, in pipeline order.
OUTCOMES: Tuple[str, ...] = (
    "parse_error",
    "lint_error",
    "verify_failed",
    "survived",
    "unexpected_exception",
)

#: The reference time every hostile run pins (mutants carry real
#: validity windows minted relative to it).
DEFAULT_REFERENCE_TIME = MEASUREMENT_START + DAY

_LINT_KIND = {
    "certificate": KIND_CERTIFICATE,
    "ocsp": KIND_OCSP,
    "crl": KIND_CRL,
}

@dataclass
class SeedWorld:
    """The well-formed originals plus the context needed to verify them."""

    reference_time: int
    documents: Dict[str, bytes]
    leaf: Certificate
    issuer: Certificate
    cert_id: CertID

    @property
    def donors(self) -> Tuple[bytes, ...]:
        """Splice donors, in stable kind order."""
        return tuple(self.documents[kind] for kind in KINDS)

#: Per-process memo — shard workers re-enter with the same reference
#: time, and 512-bit keygen is the expensive part.
_SEED_MEMO: Dict[int, SeedWorld] = {}

def seed_world(reference_time: int = DEFAULT_REFERENCE_TIME) -> SeedWorld:
    """Mint (once per process) the canonical seed documents."""
    world = _SEED_MEMO.get(reference_time)
    if world is not None:
        return world
    pool = KeyPool(size=4, bits=512, seed=11)
    url = "http://ocsp.hostile.test"
    root = CertificateAuthority.create_root(
        "Hostile Root", ocsp_url=url, key_pool=pool,
        not_before=reference_time - 3 * 365 * DAY)
    issuing = root.create_intermediate("Hostile CA", url, key_pool=pool)
    issuing.crl_url = "http://crl.hostile.test/ca.crl"
    leaf = issuing.issue_leaf("mutant.hostile.example", pool.take(),
                              not_before=reference_time - DAY,
                              must_staple=True)
    cert_id = CertID.for_certificate(leaf, issuing.certificate)
    responder = OCSPResponder(issuing, url,
                              epoch_start=reference_time - 30 * DAY)
    response_der = responder.handle(
        OCSPRequest.for_single(cert_id).encode(), reference_time).body
    crl = issuing.build_crl(reference_time)
    world = SeedWorld(
        reference_time=reference_time,
        documents={
            "certificate": leaf.der,
            "ocsp": response_der,
            "crl": crl.der,
        },
        leaf=leaf,
        issuer=issuing.certificate,
        cert_id=cert_id,
    )
    _SEED_MEMO[reference_time] = world
    return world

def _parse(kind: str, der: bytes):
    if kind == "certificate":
        return Certificate.from_der(der)
    if kind == "ocsp":
        from ..ocsp import OCSPResponse
        return OCSPResponse.from_der(der)
    if kind == "crl":
        return CertificateList.from_der(der)
    raise KeyError(f"unknown document kind: {kind!r}")

def classify_mutant(kind: str, der: bytes, world: SeedWorld) -> Dict[str, Any]:
    """Classify one mutant through parse → lint → verify.

    Returns a JSON-ready row: ``outcome`` plus attribution
    (``error_class``/``error_detail``/``error_offset``), the input
    size, and — for documents that parsed — whether the TLV
    decode→re-encode→decode fixed point holds.
    """
    row: Dict[str, Any] = {
        "outcome": "survived",
        "error_class": None,
        "error_detail": None,
        "error_offset": None,
        "size": len(der),
        "fixed_point": None,
    }

    # 1. parse (the scanner layer's entrypoint for this kind).
    try:
        parsed = _parse(kind, der)
    except ASN1Error as exc:
        row.update(outcome="parse_error", error_class=type(exc).__name__,
                   error_detail=str(exc)[:200],
                   error_offset=getattr(exc, "offset", None))
        return row
    except Exception as exc:  # repro: allow-broad-except -- non-ASN1Error escapes from the parser are the bug class this experiment hunts; they become classified rows
        row.update(outcome="unexpected_exception",
                   error_class=type(exc).__name__,
                   error_detail=f"parse: {exc}"[:200])
        return row

    row["fixed_point"] = tlv_fixed_point(der)

    # 2. lint, with the full issuer/cert-id context.
    try:
        context = LintContext(reference_time=world.reference_time,
                              issuer=world.issuer, cert_id=world.cert_id)
        findings = LintEngine().lint_der(der, _LINT_KIND[kind],
                                         f"hostile/{kind}", context)
        lint_errors = [f for f in findings if f.severity >= Severity.ERROR]
    except Exception as exc:  # repro: allow-broad-except -- lint-layer escapes on hostile input are findings, not failures; classified as unexpected_exception rows
        row.update(outcome="unexpected_exception",
                   error_class=type(exc).__name__,
                   error_detail=f"lint: {exc}"[:200])
        return row

    # 3. verify (the scanner's verification layer).
    try:
        verified = _verify(kind, der, parsed, world)
    except ASN1Error as exc:
        # Lazily-decoded substructure failed during verification: the
        # document is malformed, just discovered late.
        row.update(outcome="parse_error", error_class=type(exc).__name__,
                   error_detail=f"verify: {exc}"[:200],
                   error_offset=getattr(exc, "offset", None))
        return row
    except Exception as exc:  # repro: allow-broad-except -- verifier escapes on hostile input are findings, not failures; classified as unexpected_exception rows
        row.update(outcome="unexpected_exception",
                   error_class=type(exc).__name__,
                   error_detail=f"verify: {exc}"[:200])
        return row

    if lint_errors:
        first = lint_errors[0]
        row.update(outcome="lint_error", error_class=first.rule_id,
                   error_detail=first.message[:200])
    elif not verified:
        row["outcome"] = "verify_failed"
    return row

def _verify(kind: str, der: bytes, parsed, world: SeedWorld) -> bool:
    if kind == "certificate":
        return parsed.verify_signature(world.issuer.public_key)
    if kind == "ocsp":
        check = verify_response(der, world.cert_id, world.issuer,
                                world.reference_time)
        return check.ok
    # CRL: signature plus freshness at the pinned reference time.
    return (parsed.verify_signature(world.issuer.public_key)
            and parsed.is_fresh(world.reference_time))
