"""Greedy minimization of crashing inputs (ddmin-lite).

When the hostile corpus surfaces a document that makes a parser raise
something outside the :class:`~repro.asn1.errors.ASN1Error` hierarchy,
the failing input is shrunk before it is frozen into
``tests/data/hostile/`` — a 40-byte regression input documents the bug;
a 4 KB mutant obscures it.

The algorithm is the classic delta-debugging loop restricted to chunk
*removal*: repeatedly try deleting ever-smaller chunks, keeping any
deletion that preserves the predicate.  Fully deterministic — chunk
order is fixed, no randomness — so minimizing the same crasher twice
yields the same bytes.
"""

from __future__ import annotations

from typing import Callable


def minimize(data: bytes, predicate: Callable[[bytes], bool],
             min_chunk: int = 1, max_rounds: int = 64) -> bytes:
    """Shrink *data* while ``predicate(data)`` stays True.

    *predicate* must be True for the input (callers should assert this;
    the function returns *data* unchanged otherwise).  The predicate is
    expected to swallow its own exceptions — e.g. "parsing this raises
    RecursionError" — since arbitrary byte deletions will produce
    arbitrarily malformed candidates.
    """
    data = bytes(data)
    if not predicate(data):
        return data
    chunk = max(min_chunk, len(data) // 2)
    for _ in range(max_rounds):
        if len(data) <= min_chunk:
            break
        shrunk = False
        offset = 0
        while offset < len(data):
            candidate = data[:offset] + data[offset + chunk:]
            if candidate and predicate(candidate):
                data = candidate
                shrunk = True
                # Retry the same offset: the next chunk slid into place.
            else:
                offset += chunk
        if chunk == min_chunk and not shrunk:
            break
        if not shrunk:
            chunk = max(min_chunk, chunk // 2)
    return data
