"""The ``hostile-corpus`` experiment: mutation-survival matrix.

Registered in the shared runtime like every other experiment: the
shard plan is a pure function of the config (kind-major contiguous
mutation-id ranges), shard payloads carry only the config scalars
(workers re-mint the seed documents, memoized per process), and the
merge is positional — so the classification matrix is byte-identical
at any worker count.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..canon import split_ranges

_WORKERS = "repro.hostile.experiments"


# ---------------------------------------------------------------------------
# shard worker
# ---------------------------------------------------------------------------

def hostile_shard(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Mutate-and-classify one contiguous mutation-id range of one kind."""
    from .corpus import classify_mutant, seed_world
    from .mutate import mutate
    world = seed_world(payload["reference_time"])
    kind = payload["kind"]
    document = world.documents[kind]
    donors = world.donors
    rows: List[Dict[str, Any]] = []
    for mutation_id in range(payload["lo"], payload["hi"]):
        mutant = mutate(document, mutation_id, payload["seed"], donors=donors)
        row = classify_mutant(kind, mutant.der, world)
        rows.append({"kind": kind, "mutation_id": mutation_id,
                     "family": mutant.family, **row})
    return rows


# ---------------------------------------------------------------------------
# shard planner
# ---------------------------------------------------------------------------

def hostile_shards(config) -> List:
    """Kind-major mutation-id ranges (a pure function of config)."""
    from ..runtime.executor import ShardSpec
    return [
        ShardSpec(worker=f"{_WORKERS}:hostile_shard",
                  payload={"kind": kind, "seed": config.seed,
                           "reference_time": config.reference_time,
                           "lo": lo, "hi": hi},
                  label=f"hostile[{kind}][{lo}:{hi}]")
        for kind in config.kinds
        for lo, hi in split_ranges(config.mutants_per_kind, config.chunks)
    ]


# ---------------------------------------------------------------------------
# experiment runner
# ---------------------------------------------------------------------------

def run_hostile_corpus(ctx, config) -> Dict[str, Any]:
    """Fan the mutant budget out, then fold the survival matrix."""
    from .corpus import OUTCOMES
    from .mutate import FAMILIES
    outputs = ctx.run_shards(hostile_shards(config))
    rows = [row for shard_rows in outputs for row in shard_rows]

    matrix: Dict[str, Dict[str, int]] = {
        family: {outcome: 0 for outcome in OUTCOMES} for family in FAMILIES}
    by_kind: Dict[str, Dict[str, int]] = {
        kind: {outcome: 0 for outcome in OUTCOMES} for kind in config.kinds}
    totals = {outcome: 0 for outcome in OUTCOMES}
    fixed_point_failures = 0
    unexpected: List[Dict[str, Any]] = []
    for row in rows:
        outcome = row["outcome"]
        matrix[row["family"]][outcome] += 1
        by_kind[row["kind"]][outcome] += 1
        totals[outcome] += 1
        if row["outcome"] == "survived" and row["fixed_point"] is False:
            fixed_point_failures += 1
        if outcome == "unexpected_exception":
            unexpected.append({"kind": row["kind"],
                               "mutation_id": row["mutation_id"],
                               "family": row["family"],
                               "error_class": row["error_class"],
                               "error_detail": row["error_detail"]})

    mutants = len(rows)
    series = {
        "survived_by_family": sorted(
            (family, counts["survived"]) for family, counts in matrix.items()),
        "parse_error_by_family": sorted(
            (family, counts["parse_error"])
            for family, counts in matrix.items()),
    }
    return {
        "rows": rows,
        "series": series,
        "summary": {
            "mutants": mutants,
            "matrix": matrix,
            "by_kind": by_kind,
            "outcomes": totals,
            "survival_rate": (round(totals["survived"] / mutants, 6)
                              if mutants else 0.0),
            "fixed_point_failures": fixed_point_failures,
            "unexpected_exceptions": len(unexpected),
            "unexpected_detail": unexpected[:50],
        },
        "artifacts": {},
    }
