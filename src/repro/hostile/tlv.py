"""A lenient TLV tree model of DER, built for mutation.

The strict :class:`repro.asn1.Reader` refuses anything non-canonical,
which is the right behaviour for a verifier but useless for a mutation
engine that must *round-trip* documents it is about to damage.  This
module parses DER into a mutable tree of :class:`TLVNode` and
serializes it back, with two deliberate lies available per node:

* ``length_override`` — announce a length other than the content's
  true size (the length-inflate/deflate mutation families);
* ``indefinite`` — emit the BER indefinite-length form (``0x80`` …
  ``0x00 0x00``), which DER forbids.

Parsing is bounded exactly like the hardened Reader: nesting depth and
element counts are capped, so the fixed-point harness can be pointed at
arbitrary mutants (including depth bombs) and still fail with a typed
:class:`~repro.asn1.errors.ASN1Error`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..asn1 import encoder, tags
from ..asn1.errors import (
    ASN1Error,
    DecodeError,
    LimitExceededError,
    TruncatedError,
)

#: Same rationale as :data:`repro.asn1.decoder.MAX_DEPTH`.
MAX_TREE_DEPTH = 64

#: Same rationale as :data:`repro.asn1.decoder.MAX_ELEMENTS`.
MAX_TREE_ELEMENTS = 100_000


@dataclass
class TLVNode:
    """One TLV element; constructed nodes carry children, not content."""

    tag: int
    content: bytes = b""
    children: Optional[List["TLVNode"]] = None
    #: When set, the serializer announces this length instead of the
    #: content's true size (the content bytes are emitted in full).
    length_override: Optional[int] = None
    #: When True, the serializer emits BER indefinite-length form.
    indefinite: bool = False

    @property
    def constructed(self) -> bool:
        """True when this node was parsed as a constructed element."""
        return self.children is not None


def _read_header(data: bytes, offset: int, end: int) -> Tuple[int, int, int]:
    """Return ``(tag, header_len, content_len)`` for the TLV at *offset*."""
    if offset + 2 > end:
        raise TruncatedError("input ends inside TLV header", offset=offset)
    tag = data[offset]
    if tag & tags.TAG_NUMBER_MASK == 0x1F:
        raise DecodeError("multi-octet tag numbers are not supported",
                          offset=offset)
    first_len = data[offset + 1]
    if first_len < 0x80:
        return tag, 2, first_len
    if first_len == 0x80:
        raise DecodeError("indefinite length is not parseable as DER",
                          offset=offset + 1)
    n_octets = first_len & 0x7F
    if n_octets > 8:
        raise LimitExceededError(
            f"length uses {n_octets} octets (cap 8)", offset=offset + 1)
    if offset + 2 + n_octets > end:
        raise TruncatedError("input ends inside length octets",
                             offset=offset + 1)
    length = int.from_bytes(data[offset + 2:offset + 2 + n_octets], "big")
    return tag, 2 + n_octets, length


def parse_forest(data: bytes, start: int = 0, end: Optional[int] = None,
                 _depth: int = 0, _budget: Optional[List[int]] = None,
                 ) -> List[TLVNode]:
    """Parse a run of sibling TLVs into a list of nodes.

    Length octets need not be minimal (the tree is for mutation, not
    verification), but structural soundness is enforced: every
    announced length must fit its window, and the depth/element caps
    apply.
    """
    data = bytes(data)
    if end is None:
        end = len(data)
    if _depth > MAX_TREE_DEPTH:
        raise LimitExceededError(
            f"TLV tree deeper than {MAX_TREE_DEPTH} levels", offset=start)
    budget = [0] if _budget is None else _budget
    nodes: List[TLVNode] = []
    offset = start
    while offset < end:
        budget[0] += 1
        if budget[0] > MAX_TREE_ELEMENTS:
            raise LimitExceededError(
                f"more than {MAX_TREE_ELEMENTS} elements in one document",
                offset=offset)
        tag, header_len, content_len = _read_header(data, offset, end)
        content_start = offset + header_len
        content_end = content_start + content_len
        if content_end > end:
            raise TruncatedError(
                f"content length {content_len} exceeds remaining "
                f"{end - content_start} bytes", offset=offset)
        if tags.is_constructed(tag):
            children = parse_forest(data, content_start, content_end,
                                    _depth=_depth + 1, _budget=budget)
            nodes.append(TLVNode(tag=tag, children=children))
        else:
            nodes.append(TLVNode(tag=tag,
                                 content=data[content_start:content_end]))
        offset = content_end
    return nodes


def encode_node(node: TLVNode) -> bytes:
    """Serialize one node, honouring its override/indefinite lies."""
    if node.children is not None:
        content = encode_forest(node.children)
    else:
        content = node.content
    if node.indefinite:
        return bytes([node.tag]) + b"\x80" + content + b"\x00\x00"
    length = (len(content) if node.length_override is None
              else node.length_override)
    return bytes([node.tag]) + encoder.encode_length(length) + content


def encode_forest(nodes: List[TLVNode]) -> bytes:
    """Serialize a sibling run back to bytes."""
    return b"".join(encode_node(node) for node in nodes)


def flatten(nodes: List[TLVNode]) -> List[TLVNode]:
    """Every node of the forest, pre-order (an explicit-stack walk)."""
    out: List[TLVNode] = []
    stack = list(reversed(nodes))
    while stack:
        node = stack.pop()
        out.append(node)
        if node.children is not None:
            stack.extend(reversed(node.children))
    return out


def flatten_slots(nodes: List[TLVNode]) -> List[Tuple[List[TLVNode], int]]:
    """Every node as a ``(container_list, index)`` slot, pre-order.

    Slots let a mutator *replace* a node in place (subtree splicing)
    without threading parent pointers through the tree.
    """
    out: List[Tuple[List[TLVNode], int]] = []
    stack: List[Tuple[List[TLVNode], int]] = [
        (nodes, i) for i in reversed(range(len(nodes)))]
    while stack:
        container, index = stack.pop()
        out.append((container, index))
        node = container[index]
        if node.children is not None:
            stack.extend((node.children, i)
                         for i in reversed(range(len(node.children))))
    return out


def element_spans(data: bytes) -> List[Tuple[int, int, int]]:
    """``(offset, header_len, content_len)`` for every element, by offset.

    Walks the raw bytes with an explicit stack (no recursion), raising
    the usual typed errors on malformed input — callers feed it valid
    documents (truncation points) or crashers under a try/except.
    """
    data = bytes(data)
    spans: List[Tuple[int, int, int]] = []
    stack: List[Tuple[int, int, int]] = [(0, len(data), 0)]
    while stack:
        start, end, depth = stack.pop()
        offset = start
        while offset < end:
            if len(spans) > MAX_TREE_ELEMENTS:
                raise LimitExceededError(
                    f"more than {MAX_TREE_ELEMENTS} elements in one document",
                    offset=offset)
            tag, header_len, content_len = _read_header(data, offset, end)
            content_start = offset + header_len
            content_end = content_start + content_len
            if content_end > end:
                raise TruncatedError(
                    f"content length {content_len} exceeds remaining "
                    f"{end - content_start} bytes", offset=offset)
            spans.append((offset, header_len, content_len))
            if tags.is_constructed(tag) and depth < MAX_TREE_DEPTH:
                stack.append((content_start, content_end, depth + 1))
            offset = content_end
    spans.sort()
    return spans


def tlv_fixed_point(der: bytes) -> bool:
    """True when decode→re-encode→decode is a fixed point for *der*.

    The differential invariant for survivors: a document our parsers
    accept must round-trip through the TLV layer to stable bytes.
    Returns False when either decode fails or the two encodings differ.
    """
    try:
        first = encode_forest(parse_forest(der))
        second = encode_forest(parse_forest(first))
    except ASN1Error:
        return False
    return first == second
