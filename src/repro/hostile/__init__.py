"""Structure-aware DER mutation and hostile-corpus survival testing.

The paper's scanners ingest bytes from the real web, where malformed
DER is routine — Figure 5's first error class is literally "malformed
response".  This package manufactures that hostility deterministically:

* :mod:`repro.hostile.tlv` — a lenient TLV tree model of DER with a
  serializer that can lie (length overrides, indefinite lengths);
* :mod:`repro.hostile.mutate` — Frankencert-style mutation families
  (truncation at element boundaries, length inflation/deflation, tag
  flips, subtree splicing across documents, OID/time/signature
  corruption, BER-ification, depth/length bombs), each mutant a pure
  function of ``(document, mutation_id, seed)``;
* :mod:`repro.hostile.corpus` — canonical seed documents minted from
  the simulated PKI, plus the scan→lint→verify classification of each
  mutant and the decode→re-encode→decode fixed-point harness;
* :mod:`repro.hostile.minimize` — greedy byte-range minimization of
  crashing inputs for the frozen regression corpus;
* :mod:`repro.hostile.experiments` — the ``hostile-corpus`` registry
  entry: a sharded survival/classification matrix (mutation family ×
  outcome) merged byte-identically at any worker count.
"""

from .mutate import FAMILIES, Mutant, mutate
from .corpus import KINDS, OUTCOMES, classify_mutant, seed_world
from .tlv import TLVNode, encode_forest, parse_forest, tlv_fixed_point

__all__ = [
    "FAMILIES",
    "KINDS",
    "Mutant",
    "OUTCOMES",
    "TLVNode",
    "classify_mutant",
    "encode_forest",
    "mutate",
    "parse_forest",
    "seed_world",
    "tlv_fixed_point",
]
