"""Content-addressed artifact cache for shard outputs.

Each shard's output (a list of JSON-able row dicts) is stored under a
key derived from the shard's *content*: the worker entrypoint, the
full shard payload (which embeds the experiment's config), and the
code version.  Any change to the experiment id's config, the worker,
or the code yields a different key — invalidation is automatic and
there is nothing to expire.

Files are JSON-lines in the same spirit as :mod:`repro.scanner.io`'s
scan files: a header object first, then one row per line.  Writes are
atomic (temp file + rename) so concurrent workers can share a cache
directory.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List, Optional

from .. import __version__
from ..canon import stable_digest

#: Bump the schema component when the shard row format changes — old
#: cache entries become unreachable rather than misread.
SCHEMA_VERSION = 1
CODE_VERSION = f"{__version__}+shard{SCHEMA_VERSION}"

_HEADER_FORMAT = "repro-shard"


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro-experiments``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache",
                        "repro-experiments")


def shard_key(worker: str, payload: Dict[str, Any]) -> str:
    """The content address of one shard's output."""
    return stable_digest({
        "worker": worker,
        "payload": payload,
        "code": CODE_VERSION,
    }, length=32)


class ArtifactCache:
    """Store and retrieve shard outputs by content address."""

    def __init__(self, root: Optional[str] = None, enabled: bool = True) -> None:
        self.root = root or default_cache_dir()
        self.enabled = enabled

    def _path(self, key: str) -> str:
        # Two-level fanout keeps directory listings sane at scale.
        return os.path.join(self.root, key[:2], f"{key}.jsonl")

    def load(self, key: str) -> Optional[List[Dict[str, Any]]]:
        """The cached rows for *key*, or None on a miss.

        Unreadable or wrong-format entries count as misses — the shard
        recomputes and overwrites them.
        """
        if not self.enabled:
            return None
        try:
            with open(self._path(key)) as stream:
                header = json.loads(stream.readline())
                if header.get("format") != _HEADER_FORMAT:
                    return None
                if header.get("version") != SCHEMA_VERSION:
                    return None
                return [json.loads(line) for line in stream if line.strip()]
        except (OSError, ValueError):
            return None

    def store(self, key: str, worker: str,
              rows: List[Dict[str, Any]]) -> None:
        """Persist *rows* under *key* (atomic; no-op when disabled)."""
        if not self.enabled:
            return
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        header = {"format": _HEADER_FORMAT, "version": SCHEMA_VERSION,
                  "key": key, "worker": worker, "rows": len(rows)}
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as stream:
                stream.write(json.dumps(header) + "\n")
                for row in rows:
                    stream.write(json.dumps(row, sort_keys=True) + "\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
