"""Content-addressed artifact cache for shard outputs.

Each shard's output (a list of JSON-able row dicts) is stored under a
key derived from the shard's *content*: the worker entrypoint, the
full shard payload (which embeds the experiment's config), and the
code version.  Any change to the experiment id's config, the worker,
or the code yields a different key — invalidation is automatic and
there is nothing to expire.

Files are JSON-lines in the same spirit as :mod:`repro.scanner.io`'s
scan files: a header object first, then one row per line.  Writes are
atomic (temp file + rename) so concurrent workers can share a cache
directory.

Integrity: the header carries the row count *and* a SHA-256 digest of
the payload lines, both checked on every load.  A truncated, tampered,
or otherwise malformed entry is never silently served as fewer rows —
it is moved into a ``corrupt/`` quarantine directory (preserving the
evidence for post-mortems) and reported as a miss, so the shard simply
recomputes.  ``repro cache stats|verify|gc`` exposes the same
machinery from the command line.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .. import __version__
from ..canon import stable_digest

#: Bump the schema component when the shard row format changes — old
#: cache entries become unreachable rather than misread.  v2 added the
#: payload digest to the header.
SCHEMA_VERSION = 2
CODE_VERSION = f"{__version__}+shard{SCHEMA_VERSION}"

_HEADER_FORMAT = "repro-shard"

#: Quarantine subdirectory for entries that failed integrity checks.
CORRUPT_DIR = "corrupt"


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro-experiments``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache",
                        "repro-experiments")


def shard_key(worker: str, payload: Dict[str, Any]) -> str:
    """The content address of one shard's output."""
    return stable_digest({
        "worker": worker,
        "payload": payload,
        "code": CODE_VERSION,
    }, length=32)


def _payload_digest(lines: List[str]) -> str:
    """The integrity digest over an entry's serialized row lines."""
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()[:32]


@dataclass
class CacheStats:
    """What ``repro cache stats`` reports."""

    root: str
    entries: int = 0
    bytes: int = 0
    rows: int = 0
    corrupt_entries: int = 0
    corrupt_bytes: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """Stable field mapping."""
        return {
            "root": self.root,
            "entries": self.entries,
            "bytes": self.bytes,
            "rows": self.rows,
            "corrupt_entries": self.corrupt_entries,
            "corrupt_bytes": self.corrupt_bytes,
        }


@dataclass
class VerifyReport:
    """What ``repro cache verify`` reports."""

    checked: int = 0
    ok: int = 0
    #: Keys whose entries failed an integrity check (now quarantined).
    corrupt: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.corrupt

    def to_dict(self) -> Dict[str, Any]:
        """Stable field mapping."""
        return {"checked": self.checked, "ok": self.ok,
                "corrupt": list(self.corrupt)}


class ArtifactCache:
    """Store and retrieve shard outputs by content address."""

    def __init__(self, root: Optional[str] = None, enabled: bool = True) -> None:
        self.root = root or default_cache_dir()
        self.enabled = enabled

    def _path(self, key: str) -> str:
        # Two-level fanout keeps directory listings sane at scale.
        return os.path.join(self.root, key[:2], f"{key}.jsonl")

    def _corrupt_dir(self) -> str:
        return os.path.join(self.root, CORRUPT_DIR)

    def _quarantine(self, path: str) -> None:
        """Move a bad entry into ``corrupt/`` instead of deleting it —
        the bytes are evidence, and leaving them in place would make
        every future load re-fail the same checks."""
        corrupt_dir = self._corrupt_dir()
        try:
            os.makedirs(corrupt_dir, exist_ok=True)
            os.replace(path, os.path.join(corrupt_dir,
                                          os.path.basename(path)))
        except OSError:
            # Quarantine is best-effort: a concurrent recompute may
            # have already overwritten (or another process moved) it.
            pass

    @staticmethod
    def _parse(raw: str) -> Optional[List[Dict[str, Any]]]:
        """Parse and integrity-check one entry; None means corrupt.

        A well-formed entry has a valid header whose ``rows`` count
        matches the number of payload lines and whose ``digest``
        matches their bytes.  Anything else — truncation at a line
        boundary included — is corruption, never a short read.
        """
        lines = raw.split("\n")
        try:
            header = json.loads(lines[0])
        except ValueError:
            return None
        if not isinstance(header, dict):
            return None
        if header.get("format") != _HEADER_FORMAT:
            return None
        if header.get("version") != SCHEMA_VERSION:
            return None
        body = [line for line in lines[1:] if line.strip()]
        if header.get("rows") != len(body):
            return None
        if header.get("digest") != _payload_digest(body):
            return None
        try:
            rows = [json.loads(line) for line in body]
        except ValueError:
            return None
        return rows

    def load(self, key: str) -> Optional[List[Dict[str, Any]]]:
        """The cached rows for *key*, or None on a miss.

        A missing file is a plain miss.  A file that fails any
        integrity check is quarantined into ``corrupt/`` and reported
        as a miss — the shard recomputes and stores a fresh entry.
        """
        if not self.enabled:
            return None
        path = self._path(key)
        try:
            with open(path) as stream:
                raw = stream.read()
        except OSError:
            return None
        rows = self._parse(raw)
        if rows is None:
            self._quarantine(path)
            return None
        return rows

    def store(self, key: str, worker: str,
              rows: List[Dict[str, Any]]) -> None:
        """Persist *rows* under *key* (atomic; no-op when disabled)."""
        if not self.enabled:
            return
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        lines = [json.dumps(row, sort_keys=True) for row in rows]
        header = {"format": _HEADER_FORMAT, "version": SCHEMA_VERSION,
                  "key": key, "worker": worker, "rows": len(rows),
                  "digest": _payload_digest(lines)}
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as stream:
                stream.write(json.dumps(header) + "\n")
                for line in lines:
                    stream.write(line + "\n")
            os.replace(tmp, path)
        except BaseException:  # repro: allow-broad-except -- tmp-file cleanup must run even on KeyboardInterrupt; the exception is re-raised
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- maintenance (the `repro cache` CLI sits on these) ------------

    def entries(self) -> Iterator[Tuple[str, str]]:
        """Yield ``(key, path)`` for every live entry, sorted by key."""
        try:
            fanout = sorted(os.listdir(self.root))
        except OSError:
            return
        for sub in fanout:
            if sub == CORRUPT_DIR:
                continue
            subdir = os.path.join(self.root, sub)
            if not os.path.isdir(subdir):
                continue
            for name in sorted(os.listdir(subdir)):
                if name.endswith(".jsonl"):
                    yield name[:-len(".jsonl")], os.path.join(subdir, name)

    def stats(self) -> CacheStats:
        """Entry/byte/row totals, live and quarantined."""
        report = CacheStats(root=self.root)
        for _key, path in self.entries():
            try:
                with open(path) as stream:
                    raw = stream.read()
            except OSError:
                continue
            report.entries += 1
            report.bytes += len(raw.encode())
            try:
                header = json.loads(raw.split("\n", 1)[0])
                report.rows += int(header.get("rows", 0))
            except (ValueError, TypeError):
                pass
        corrupt_dir = self._corrupt_dir()
        if os.path.isdir(corrupt_dir):
            for name in os.listdir(corrupt_dir):
                path = os.path.join(corrupt_dir, name)
                try:
                    report.corrupt_bytes += os.path.getsize(path)
                    report.corrupt_entries += 1
                except OSError:
                    pass
        return report

    def verify(self) -> VerifyReport:
        """Integrity-check every live entry; quarantine failures."""
        report = VerifyReport()
        for key, path in self.entries():
            report.checked += 1
            try:
                with open(path) as stream:
                    raw = stream.read()
            except OSError:
                report.corrupt.append(key)
                continue
            if self._parse(raw) is None:
                self._quarantine(path)
                report.corrupt.append(key)
            else:
                report.ok += 1
        return report

    def gc(self, everything: bool = False,
           max_age_s: Optional[float] = None,
           dry_run: bool = False,
           now: Optional[float] = None) -> Tuple[int, int]:
        """Collect the ``corrupt/`` quarantine (and, with *everything*,
        all live entries too); returns ``(files removed, bytes freed)``.

        By default every quarantined entry goes; with *max_age_s* only
        quarantined entries older than that many seconds (by mtime,
        against *now*) are removed, so fresh evidence survives routine
        collections while the quarantine can no longer grow without
        bound.  *now* must accompany *max_age_s* — this module never
        reads the wall clock itself (pass
        :func:`repro.runtime.dist.now_s`, as the CLI does).  With
        *dry_run* nothing is deleted; the returned totals are what a
        real collection would have removed.
        """
        if max_age_s is not None and now is None:
            raise ValueError("gc(max_age_s=...) needs an explicit 'now' "
                             "(this module never reads the wall clock)")
        removed = 0
        freed = 0

        def _unlink(path: str) -> None:
            nonlocal removed, freed
            try:
                size = os.path.getsize(path)
                if not dry_run:
                    os.unlink(path)
                freed += size
                removed += 1
            except OSError:
                pass

        corrupt_dir = self._corrupt_dir()
        if os.path.isdir(corrupt_dir):
            for name in sorted(os.listdir(corrupt_dir)):
                path = os.path.join(corrupt_dir, name)
                if max_age_s is not None:
                    try:
                        age = now - os.path.getmtime(path)
                    except OSError:
                        continue
                    if age < max_age_s:
                        continue
                _unlink(path)
        if everything:
            for _key, path in list(self.entries()):
                _unlink(path)
        return removed, freed
