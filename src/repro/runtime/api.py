"""The unified entrypoint: ``run_experiment()``.

Every paper artefact runs through the same call::

    result = run_experiment("fig3", workers=4)

which resolves the experiment's runner from the registry, builds its
default config (or takes an explicit one), plans shards, executes them
serially or in a process pool against the content-addressed artifact
cache, and returns an :class:`~repro.runtime.result.ExperimentResult`
carrying rows, series, summary scalars, provenance, and timings.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from .cache import CODE_VERSION, ArtifactCache
from .configs import default_config
from .executor import ShardExecutor, ShardSpec
from .result import ExperimentResult, Provenance, RunManifest, ShardRecord
from .supervisor import SupervisedExecutor


class RunContext:
    """What a runner sees: an executor plus accumulated provenance.

    Runners call :meth:`run_shards` any number of times (the consistency
    runner once, a scan runner once per campaign); the context records
    every shard so the final provenance covers all work performed.
    """

    def __init__(self, experiment_id: str, executor: ShardExecutor) -> None:
        self.experiment_id = experiment_id
        self.executor = executor
        self.shard_records: List[ShardRecord] = []

    def run_shards(self, specs: List[ShardSpec]) -> List[List[Dict[str, Any]]]:
        """Execute *specs* (cache-first); returns rows per spec, in
        spec order."""
        outputs, records = self.executor.run(specs)
        base = len(self.shard_records)
        for record in records:
            record.index += base
        self.shard_records.extend(records)
        return outputs


def run_experiment(experiment_id: str,
                   config: Optional[Any] = None,
                   workers: int = 1,
                   cache: bool = True,
                   cache_dir: Optional[str] = None,
                   scale: Optional[Any] = None,
                   supervise: bool = False,
                   allow_partial: bool = False,
                   shard_timeout: Optional[float] = None,
                   max_retries: int = 2) -> ExperimentResult:
    """Run one registered experiment end to end.

    Parameters
    ----------
    experiment_id:
        A registry id (``"fig3"``, ``"tbl1"``, ``"sec8-readiness"``, ...).
    config:
        The experiment's run config; defaults to
        :func:`repro.runtime.configs.default_config` at *scale*.
    workers:
        Process count for shard execution.  Output is byte-identical
        for every value — parallelism only changes the wall clock.
    cache / cache_dir:
        Artifact-cache switches.  With an unchanged config and code
        version, a warm rerun restores every shard from cache and
        executes nothing.
    scale:
        Optional :class:`repro.core.figures.FigureScale` used when
        *config* is omitted.
    supervise:
        Run shards under :class:`~repro.runtime.supervisor.
        SupervisedExecutor`: each completed shard persists to the
        cache immediately (so interrupted runs resume for free),
        crashed/hung workers restart, transient failures retry, and
        the result carries a :class:`~repro.runtime.result.
        RunManifest` recording every attempt.
    allow_partial:
        With *supervise*: finish in degraded mode when shards are
        quarantined instead of raising
        :class:`~repro.runtime.supervisor.ShardQuarantinedError`;
        the manifest says exactly what is missing and why.
    shard_timeout:
        With *supervise*: per-shard wall-clock seconds before a
        worker is declared hung, killed, and the shard retried.
    max_retries:
        With *supervise*: extra attempts per shard beyond the first.
    """
    from ..core.experiments import experiment as lookup
    entry = lookup(experiment_id)          # raises KeyError on unknown id
    runner = entry.resolve_runner()
    if config is None:
        config = default_config(experiment_id, scale=scale)

    artifact_cache = ArtifactCache(root=cache_dir, enabled=cache)
    if supervise:
        executor: Any = SupervisedExecutor(
            workers=workers, cache=artifact_cache,
            shard_timeout=shard_timeout, max_retries=max_retries,
            allow_partial=allow_partial)
    else:
        executor = ShardExecutor(workers=workers, cache=artifact_cache)
    ctx = RunContext(experiment_id, executor)

    started = time.perf_counter()
    payload = runner(ctx, config)
    total_s = time.perf_counter() - started

    provenance = Provenance(
        experiment_id=experiment_id,
        config_digest=config.config_digest(),
        code_version=CODE_VERSION,
        workers=executor.workers,
        shards=ctx.shard_records)
    timings = {
        "total_s": total_s,
        "shard_ms_total": sum(record.elapsed_ms
                              for record in ctx.shard_records),
    }
    manifest = None
    if supervise:
        manifest = RunManifest(experiment_id=experiment_id,
                               workers=executor.workers,
                               shards=executor.manifest_shards)
    return ExperimentResult(
        experiment_id=experiment_id,
        rows=payload.get("rows", []),
        series=payload.get("series", {}),
        summary=payload.get("summary", {}),
        provenance=provenance,
        timings=timings,
        artifacts=payload.get("artifacts", {}),
        manifest=manifest)
