"""The unified entrypoint: ``run_experiment()``.

Every paper artefact runs through the same call::

    result = run_experiment("fig3", workers=4)

which resolves the experiment's runner from the registry, builds its
default config (or takes an explicit one), plans shards, executes them
serially or in a process pool against the content-addressed artifact
cache, and returns an :class:`~repro.runtime.result.ExperimentResult`
carrying rows, series, summary scalars, provenance, and timings.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Union

from .cache import CODE_VERSION, ArtifactCache
from .configs import QueueTuning, default_config
from .executor import ShardExecutor, ShardSpec
from .result import ExperimentResult, Provenance, RunManifest, ShardRecord
from .supervisor import SupervisedExecutor
from .transport import ShardTransport


class RunContext:
    """What a runner sees: an executor plus accumulated provenance.

    Runners call :meth:`run_shards` any number of times (the consistency
    runner once, a scan runner once per campaign); the context records
    every shard so the final provenance covers all work performed.
    """

    def __init__(self, experiment_id: str, executor: ShardExecutor) -> None:
        self.experiment_id = experiment_id
        self.executor = executor
        self.shard_records: List[ShardRecord] = []

    def run_shards(self, specs: List[ShardSpec]) -> List[List[Dict[str, Any]]]:
        """Execute *specs* (cache-first); returns rows per spec, in
        spec order."""
        outputs, records = self.executor.run(specs)
        base = len(self.shard_records)
        for record in records:
            record.index += base
        self.shard_records.extend(records)
        return outputs


def run_experiment(experiment_id: str,
                   config: Optional[Any] = None,
                   workers: int = 1,
                   cache: bool = True,
                   cache_dir: Optional[str] = None,
                   scale: Optional[Any] = None,
                   supervise: bool = False,
                   allow_partial: bool = False,
                   shard_timeout: Optional[float] = None,
                   max_retries: int = 2,
                   transport: Union[None, str, ShardTransport] = None,
                   queue_dir: Optional[str] = None,
                   listen: Optional[str] = None,
                   queue_tuning: Optional[QueueTuning] = None,
                   spawn_workers: Optional[bool] = None,
                   lifecycle: Optional[Callable[[str, Dict[str, Any]],
                                                None]] = None
                   ) -> ExperimentResult:
    """Run one registered experiment end to end.

    Parameters
    ----------
    experiment_id:
        A registry id (``"fig3"``, ``"tbl1"``, ``"sec8-readiness"``, ...).
    config:
        The experiment's run config; defaults to
        :func:`repro.runtime.configs.default_config` at *scale*.
    workers:
        Process count for shard execution.  Output is byte-identical
        for every value — parallelism only changes the wall clock.
    cache / cache_dir:
        Artifact-cache switches.  With an unchanged config and code
        version, a warm rerun restores every shard from cache and
        executes nothing.
    scale:
        Optional :class:`repro.core.figures.FigureScale` used when
        *config* is omitted.
    supervise:
        Run shards under :class:`~repro.runtime.supervisor.
        SupervisedExecutor`: each completed shard persists to the
        cache immediately (so interrupted runs resume for free),
        crashed/hung workers restart, transient failures retry, and
        the result carries a :class:`~repro.runtime.result.
        RunManifest` recording every attempt.
    allow_partial:
        With *supervise*: finish in degraded mode when shards are
        quarantined instead of raising
        :class:`~repro.runtime.supervisor.ShardQuarantinedError`;
        the manifest says exactly what is missing and why.
    shard_timeout:
        With *supervise*: per-shard wall-clock seconds before a
        worker is declared hung, killed, and the shard retried.
    max_retries:
        With *supervise*: extra attempts per shard beyond the first.
    transport:
        How supervised shard attempts reach compute.  ``None``/
        ``"pipe"`` is the per-host pipe pool; ``"jobqueue"`` publishes
        the plan into *queue_dir* as claimable job files for
        independent ``repro worker`` processes (implies *supervise*);
        ``"socket"`` listens on *listen* for ``repro worker
        --connect`` workers dialing in over TCP — no shared
        filesystem needed (implies *supervise*); a
        :class:`~repro.runtime.transport.ShardTransport` instance is
        used as-is (caller owns and closes it).  Every transport
        yields byte-identical merges — topology changes scheduling,
        never content.
    queue_dir:
        The shared queue directory for ``transport="jobqueue"``.
    listen:
        ``host:port`` to bind for ``transport="socket"`` (default
        ``127.0.0.1:0`` — an ephemeral port the spawned fleet is
        pointed at automatically).
    queue_tuning:
        Lease/poll tunables shared by the jobqueue and socket
        transports (a :class:`~repro.runtime.configs.QueueTuning`;
        deliberately NOT cache-key material).
    spawn_workers:
        With ``transport="jobqueue"``/``"socket"``: start *workers*
        local ``repro worker`` subprocesses for the duration of the
        run (default True).  Pass False when an external fleet drains
        the queue or dials the coordinator.
    lifecycle:
        Optional telemetry callback ``(state, info)`` — wired to the
        monitor's ``worker`` event kind by the CLI.
    """
    from ..core.experiments import experiment as lookup
    entry = lookup(experiment_id)          # raises KeyError on unknown id
    runner = entry.resolve_runner()
    if config is None:
        config = default_config(experiment_id, scale=scale)

    artifact_cache = ArtifactCache(root=cache_dir, enabled=cache)
    tuning = queue_tuning or QueueTuning()
    transport_obj: Optional[ShardTransport] = None
    owns_transport = False
    worker_procs: List[Any] = []
    if transport == "jobqueue" or (transport is None
                                   and queue_dir is not None):
        from .dist import JobQueueTransport, spawn_local_workers
        if queue_dir is None:
            raise ValueError("transport='jobqueue' needs a queue_dir")
        supervise = True
        transport_obj = JobQueueTransport(
            queue_dir, lease_s=tuning.lease_s,
            shard_timeout=shard_timeout, poll_s=tuning.poll_s,
            reclaim_grace_s=tuning.reclaim_grace_s)
        owns_transport = True
        if spawn_workers is None or spawn_workers:
            worker_procs = spawn_local_workers(
                queue_dir, workers, cache_dir=artifact_cache.root,
                cache_enabled=cache, poll_s=tuning.poll_s)
    elif transport == "socket":
        from .sock import SocketTransport, parse_address, \
            spawn_socket_workers
        host, port = parse_address(listen or "127.0.0.1:0")
        supervise = True
        transport_obj = SocketTransport(
            host=host, port=port, lease_s=tuning.lease_s,
            shard_timeout=shard_timeout, poll_s=tuning.poll_s,
            reclaim_grace_s=tuning.reclaim_grace_s)
        owns_transport = True
        if spawn_workers is None or spawn_workers:
            worker_procs = spawn_socket_workers(
                transport_obj.host, transport_obj.port, workers,
                cache_dir=artifact_cache.root, cache_enabled=cache)
    elif isinstance(transport, ShardTransport):
        supervise = True
        transport_obj = transport
    elif transport not in (None, "pipe"):
        raise ValueError(f"unknown transport: {transport!r}")

    if supervise:
        executor: Any = SupervisedExecutor(
            workers=workers, cache=artifact_cache,
            shard_timeout=shard_timeout, max_retries=max_retries,
            allow_partial=allow_partial, transport=transport_obj,
            lifecycle=lifecycle)
    else:
        executor = ShardExecutor(workers=workers, cache=artifact_cache)
    ctx = RunContext(experiment_id, executor)

    started = time.perf_counter()
    try:
        payload = runner(ctx, config)
    finally:
        if transport == "socket":
            # Close first: the stop broadcast is what tells dialed-in
            # workers to exit instead of redialing a dead port.
            if owns_transport and transport_obj is not None:
                transport_obj.close()
            if worker_procs:
                from .dist import join_workers
                join_workers(worker_procs)
        else:
            if worker_procs:
                from .dist import join_workers, stop_workers
                stop_workers(queue_dir)
                join_workers(worker_procs)
            if owns_transport and transport_obj is not None:
                transport_obj.close()
    total_s = time.perf_counter() - started

    provenance = Provenance(
        experiment_id=experiment_id,
        config_digest=config.config_digest(),
        code_version=CODE_VERSION,
        workers=executor.workers,
        shards=ctx.shard_records)
    timings = {
        "total_s": total_s,
        "shard_ms_total": sum(record.elapsed_ms
                              for record in ctx.shard_records),
    }
    manifest = None
    if supervise:
        manifest = RunManifest(experiment_id=experiment_id,
                               workers=executor.workers,
                               shards=executor.manifest_shards)
    return ExperimentResult(
        experiment_id=experiment_id,
        rows=payload.get("rows", []),
        series=payload.get("series", {}),
        summary=payload.get("summary", {}),
        provenance=provenance,
        timings=timings,
        artifacts=payload.get("artifacts", {}),
        manifest=manifest)
