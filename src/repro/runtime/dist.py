"""Filesystem job-queue transport: the supervised runtime, multi-node.

The coordinator (:class:`JobQueueTransport`, driven by
:class:`~repro.runtime.supervisor.SupervisedExecutor`) publishes the
shard plan as claimable job files in a shared queue directory;
independent ``repro worker`` processes (:class:`QueueWorker`) —
potentially on many hosts sharing the queue and artifact-cache
directories — claim jobs, compute them, and publish result envelopes.
Everything is plain files and atomic renames, so the only
infrastructure a fleet needs is a shared filesystem.

Queue directory layout::

    todo/<job>.json      claimable job documents, one per attempt
    claimed/<job>.json   the same document, after a worker won it
    leases/<job>.json    {owner, claimed_at, expires_at}, heartbeat-renewed
    results/<job>.json   result envelopes (rows inline, digest-checked)
    stop                 marker file: workers drain and exit

The protocol, state by state:

* **claim** — a worker atomically renames ``todo/J.json`` to
  ``claimed/J.json``.  :func:`os.replace` admits exactly one winner;
  the loser gets ``FileNotFoundError`` and simply tries the next job,
  which is also the whole work-stealing story: a fast host finishes
  early, polls again, and takes whatever is unleased — no scheduler
  needs to model host speeds.
* **lease** — the winner writes a lease with a deadline and renews it
  from a heartbeat thread.  The heartbeat stops renewing once the
  job's wall-clock budget (the supervisor's ``shard_timeout``) is
  exhausted, so a *hung* worker's lease expires just like a *dead*
  worker's does.
* **reclaim** — the coordinator treats an expired (or never-written)
  lease as a failed attempt: it retracts the claim, reports ``crash``
  or ``hang`` to the supervisor, and the supervisor's existing
  ``classify_exception`` retry/quarantine policy decides whether a
  fresh job (a new ticket) is published or the shard is quarantined.
* **result** — rows ride inline in a digest-checked envelope *and*
  land in the content-addressed cache under exactly the same key the
  single-host runtime uses, so a campaign SIGKILLed at any point —
  coordinator or workers — resumes to the same bytes.

Stale attempts are harmless by construction: every dispatch gets a
fresh ticket and job id, a zombie's late envelope matches no
outstanding ticket and is swept, and because workers are pure
functions of their payloads a duplicated computation produces
identical rows anyway.  Topology changes scheduling, never content.

This module is the runtime's one home for wall-clock reads and
sleeps (`now_s`): leases are real-time contracts between real
processes, unlike everything the shards compute.  The determinism
lint allowlists exactly this file for ``time.time()``/``time.sleep()``
the same way it does the chaos harness's injected faults.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional

from ..canon import stable_digest
from .cache import ArtifactCache
from .executor import ShardSpec, resolve_worker
from .transport import AttemptOutcome, ShardTransport

QUEUE_FORMAT = "repro-job"
QUEUE_VERSION = 1

#: Queue-directory substructure.
TODO_DIR = "todo"
CLAIMED_DIR = "claimed"
LEASE_DIR = "leases"
RESULT_DIR = "results"
STOP_MARKER = "stop"

#: Default lease duration; a dead worker is detected within about one
#: lease of its last heartbeat.
DEFAULT_LEASE_S = 2.0
#: Default poll cadence for idle workers and the coordinator.
DEFAULT_POLL_S = 0.05


def now_s() -> float:
    """The runtime's single blessed wall-clock read.

    Leases are deadlines shared between independent processes on a
    real filesystem — unlike shard content, they genuinely live on the
    wall clock.  Confining the read here keeps the determinism lint's
    allowlist to one file.
    """
    return time.time()


# ---------------------------------------------------------------------------
# pure protocol functions (plan + merge contracts in `repro analyze`)
# ---------------------------------------------------------------------------

def job_name(ticket: int, key: str = "") -> str:
    """The job id for dispatch *ticket*: unique per attempt, sorts in
    ticket order so idle workers drain the plan front to back."""
    return f"{ticket:08d}-{key[:12] if key else 'nokey'}"


def job_document(ticket: int, worker: str, payload: Dict[str, Any],
                 key: str = "", label: str = "",
                 timeout: Optional[float] = None,
                 lease_s: float = DEFAULT_LEASE_S) -> Dict[str, Any]:
    """One claimable job file's content (pure; JSON-able).

    ``digest`` binds the job to its work content — a result envelope
    must echo it, so an envelope can never be credited to a job whose
    payload it did not compute.
    """
    return {
        "format": QUEUE_FORMAT,
        "version": QUEUE_VERSION,
        "job": job_name(ticket, key),
        "ticket": ticket,
        "worker": worker,
        "payload": payload,
        "key": key,
        "label": label,
        "timeout": timeout,
        "lease_s": lease_s,
        "digest": stable_digest({"worker": worker, "payload": payload},
                                length=16),
    }


def queue_shards(specs: List[ShardSpec],
                 timeout: Optional[float] = None,
                 lease_s: float = DEFAULT_LEASE_S,
                 first_ticket: int = 0) -> List[Dict[str, Any]]:
    """The job-queue plan for *specs*: one job document per shard.

    Pure (a ``plan`` contract in ``repro analyze``): the documents
    depend only on the specs and the scheduling parameters, never on
    worker count or topology — which is exactly why cache keys, and
    therefore merged bytes, are identical at any fleet size.
    """
    return [
        job_document(first_ticket + index, spec.worker, spec.payload,
                     spec.key(), spec.label, timeout, lease_s)
        for index, spec in enumerate(specs)
    ]


def classify_expiry(elapsed_s: float,
                    timeout: Optional[float]) -> str:
    """What an expired lease means (pure; shared by every lease-based
    transport — the filesystem queue and the socket coordinator).

    An attempt that outlived its wall-clock budget before its lease
    lapsed stopped heartbeating *on purpose* — that is a ``hang``;
    anything else went silent early, which is what death (or a network
    partition) looks like — a ``crash``.  Either way the supervisor's
    ``classify_exception`` policy decides retry vs. quarantine.
    """
    return "hang" if timeout is not None \
        and elapsed_s >= float(timeout) else "crash"


def merge_job_results(envelopes: List[Dict[str, Any]],
                      expected: Dict[str, Dict[str, Any]]
                      ) -> List[Dict[str, Any]]:
    """The authoritative envelope per outstanding ticket (pure).

    *expected* maps ``str(ticket)`` to the job document it was
    dispatched as.  Envelopes that are malformed, name no outstanding
    ticket, or fail the job/digest echo are dropped — that is what
    makes a reclaimed zombie's late result inert.  If duplicates
    survive (two attempts raced to completion before a reclaim), the
    smallest ``(outcome, owner)`` wins; the choice is deterministic
    and content-neutral because workers are pure functions of the
    payload, so rival ``ok`` envelopes carry identical rows.
    """
    chosen: Dict[int, Dict[str, Any]] = {}
    valid = []
    for envelope in envelopes:
        if not isinstance(envelope, dict):
            continue
        ticket = envelope.get("ticket")
        document = expected.get(str(ticket))
        if document is None:
            continue
        if envelope.get("job") != document.get("job"):
            continue
        if envelope.get("digest") != document.get("digest"):
            continue
        outcome = envelope.get("outcome")
        if outcome not in ("ok", "error"):
            continue
        if outcome == "ok" and not isinstance(envelope.get("rows"), list):
            continue
        valid.append(envelope)
    valid.sort(key=lambda env: (env["ticket"],
                                0 if env["outcome"] == "ok" else 1,
                                str(env.get("owner", ""))))
    for envelope in valid:
        chosen.setdefault(envelope["ticket"], envelope)
    return [chosen[ticket] for ticket in sorted(chosen)]


# ---------------------------------------------------------------------------
# filesystem plumbing
# ---------------------------------------------------------------------------

def _write_atomic(path: str, document: Dict[str, Any]) -> None:
    """Publish *document* at *path* via temp-file + rename, so readers
    only ever see whole documents."""
    directory = os.path.dirname(path)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as stream:
            stream.write(json.dumps(document, sort_keys=True))
        os.replace(tmp, path)
    except BaseException:  # repro: allow-broad-except -- tmp-file cleanup must run even on KeyboardInterrupt; the exception is re-raised
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _read_json(path: str) -> Optional[Dict[str, Any]]:
    """Parse a JSON document, or None if missing/partial/foreign."""
    try:
        with open(path) as stream:
            document = json.load(stream)
    except (OSError, ValueError):
        return None
    return document if isinstance(document, dict) else None


def _unlink_quiet(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


class QueuePaths:
    """Path arithmetic for one queue directory."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.todo = os.path.join(root, TODO_DIR)
        self.claimed = os.path.join(root, CLAIMED_DIR)
        self.leases = os.path.join(root, LEASE_DIR)
        self.results = os.path.join(root, RESULT_DIR)
        self.stop_marker = os.path.join(root, STOP_MARKER)

    def ensure(self) -> None:
        for directory in (self.todo, self.claimed, self.leases,
                          self.results):
            os.makedirs(directory, exist_ok=True)

    def todo_path(self, job: str) -> str:
        return os.path.join(self.todo, f"{job}.json")

    def claimed_path(self, job: str) -> str:
        return os.path.join(self.claimed, f"{job}.json")

    def lease_path(self, job: str) -> str:
        return os.path.join(self.leases, f"{job}.json")

    def result_path(self, job: str) -> str:
        return os.path.join(self.results, f"{job}.json")

    def stop_requested(self) -> bool:
        return os.path.exists(self.stop_marker)


# ---------------------------------------------------------------------------
# the worker side (`repro worker`)
# ---------------------------------------------------------------------------

class QueueWorker:
    """One claim → compute → publish loop over a shared queue.

    Workers are interchangeable and stateless between jobs: everything
    durable lives in the queue directory and the artifact cache, so
    any number can join or die at any time.  A worker never decides a
    shard's fate — it reports, the coordinator disposes.
    """

    def __init__(self, queue_dir: str, worker_id: str,
                 cache: Optional[ArtifactCache] = None,
                 poll_s: float = DEFAULT_POLL_S,
                 events: Optional[Any] = None) -> None:
        self.paths = QueuePaths(queue_dir)
        self.worker_id = worker_id
        self.cache = cache if cache is not None \
            else ArtifactCache(enabled=False)
        self.poll_s = poll_s
        #: Optional :class:`repro.monitor.events.EventLogWriter`;
        #: receives ``worker`` lifecycle events (telemetry, not content).
        self.events = events

    # -- lifecycle ----------------------------------------------------

    def run(self, max_jobs: Optional[int] = None,
            idle_exit_s: Optional[float] = None) -> int:
        """Poll until stopped; returns the number of jobs executed.

        Exits on the queue's ``stop`` marker, after *max_jobs*
        executions, or after *idle_exit_s* seconds without finding
        anything claimable.
        """
        self.paths.ensure()
        done = 0
        idle_since: Optional[float] = None
        while not self.paths.stop_requested():
            if max_jobs is not None and done >= max_jobs:
                break
            job = self.claim_next()
            if job is None:
                now = now_s()
                if idle_exit_s is not None:
                    if idle_since is None:
                        idle_since = now
                    elif now - idle_since >= idle_exit_s:
                        break
                time.sleep(self.poll_s)
                continue
            idle_since = None
            self.execute(job)
            done += 1
        return done

    def claim_next(self) -> Optional[Dict[str, Any]]:
        """Claim the first available job, or None if nothing is there.

        The atomic rename is the whole mutual-exclusion story: exactly
        one claimant's ``os.replace`` succeeds; losers skip to the next
        candidate (work stealing between heterogeneous-speed hosts
        falls out of this loop for free).
        """
        try:
            names = sorted(os.listdir(self.paths.todo))
        except OSError:
            return None
        for name in names:
            if not name.endswith(".json"):
                continue
            job_id = name[:-len(".json")]
            claimed = self.paths.claimed_path(job_id)
            try:
                os.replace(self.paths.todo_path(job_id), claimed)
            except FileNotFoundError:
                continue  # lost the claim race; back off to the next job
            except OSError:
                continue
            job = _read_json(claimed)
            if job is None or job.get("format") != QUEUE_FORMAT:
                _unlink_quiet(claimed)
                continue
            self._write_lease(job, claimed_at=now_s(), renewals=0)
            return job
        return None

    def execute(self, job: Dict[str, Any]) -> Dict[str, Any]:
        """Run one claimed job and publish its result envelope.

        The heartbeat thread renews the lease while compute is in
        flight; the envelope is published atomically *before* the
        claim and lease are released, so there is no instant at which
        the job looks both unowned and unfinished.
        """
        claimed_at = now_s()
        stop = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat, args=(job, claimed_at, stop),
            daemon=True)
        heartbeat.start()
        self._emit("claim", job)
        envelope: Dict[str, Any] = {
            "job": job["job"], "ticket": job["ticket"],
            "digest": job.get("digest"), "owner": self.worker_id,
        }
        key = job.get("key") or ""
        started = time.perf_counter()
        try:
            rows = self.cache.load(key) if key else None
            cached = rows is not None
            if rows is None:
                rows = resolve_worker(job["worker"])(job["payload"])
            envelope.update(outcome="ok", rows=rows, cached=cached)
        except BaseException as exc:  # repro: allow-broad-except -- worker-fleet firewall; the coordinator classifies the failure by exception name
            envelope.update(outcome="error", type=type(exc).__name__,
                            message=str(exc))
        finally:
            stop.set()
        envelope["elapsed_ms"] = (time.perf_counter() - started) * 1000.0
        if envelope["outcome"] == "ok" and key:
            # Same key, same bytes as the single-host runtime: this is
            # what lets a killed campaign resume on any topology.
            self.cache.store(key, job["worker"], envelope["rows"])
        self.paths.ensure()
        _write_atomic(self.paths.result_path(job["job"]), envelope)
        _unlink_quiet(self.paths.claimed_path(job["job"]))
        _unlink_quiet(self.paths.lease_path(job["job"]))
        heartbeat.join(timeout=1.0)
        self._emit("done" if envelope["outcome"] == "ok" else "error", job)
        return envelope

    # -- leases -------------------------------------------------------

    def _write_lease(self, job: Dict[str, Any], claimed_at: float,
                     renewals: int) -> None:
        _write_atomic(self.paths.lease_path(job["job"]), {
            "job": job["job"],
            "owner": self.worker_id,
            "claimed_at": claimed_at,
            "expires_at": now_s() + float(job.get("lease_s")
                                          or DEFAULT_LEASE_S),
            "renewals": renewals,
        })

    def _heartbeat(self, job: Dict[str, Any], claimed_at: float,
                   stop: threading.Event) -> None:
        """Renew the lease until compute finishes — or stop renewing.

        Two deliberate silences: once the job's wall-clock budget is
        exhausted we let the lease lapse so the coordinator reclaims a
        *hang* exactly as it reclaims a death; and once the claim file
        disappears (the coordinator already reclaimed us) renewing
        would only fight the reclaim, so the attempt is forfeit.
        """
        lease_s = float(job.get("lease_s") or DEFAULT_LEASE_S)
        interval = max(0.05, lease_s / 3.0)
        timeout = job.get("timeout")
        renewals = 0
        while not stop.wait(interval):
            if timeout is not None \
                    and now_s() - claimed_at > float(timeout):
                return
            if not os.path.exists(self.paths.claimed_path(job["job"])):
                return
            renewals += 1
            self._write_lease(job, claimed_at, renewals)

    # -- telemetry ----------------------------------------------------

    def _emit(self, state: str, job: Dict[str, Any]) -> None:
        if self.events is None:
            return
        self.events.append("worker", ts=int(now_s()), data={
            "worker": self.worker_id, "state": state,
            "shard": job.get("label") or job["job"]})


# ---------------------------------------------------------------------------
# the coordinator side (a ShardTransport)
# ---------------------------------------------------------------------------

class JobQueueTransport(ShardTransport):
    """The coordinator's view of the queue, as a shard transport.

    One coordinator owns one queue directory: construction resets the
    queue (a fresh coordinator inherits whatever a dead predecessor
    left mid-flight; completed shards come back from the artifact
    cache, so coordinator death costs at most the shards that were in
    flight).  The supervisor keeps all retry/quarantine policy; this
    class only moves attempts and detects their deaths.
    """

    def __init__(self, queue_dir: str,
                 lease_s: float = DEFAULT_LEASE_S,
                 shard_timeout: Optional[float] = None,
                 poll_s: float = DEFAULT_POLL_S,
                 reclaim_grace_s: Optional[float] = None) -> None:
        self.paths = QueuePaths(queue_dir)
        self.lease_s = float(lease_s)
        self.shard_timeout = shard_timeout
        self.poll_s = poll_s
        #: How long a claim may sit without a visible lease before it
        #: counts as dead — covers the claim-to-first-lease write
        #: window of a worker killed at the worst possible instant.
        self.reclaim_grace_s = reclaim_grace_s \
            if reclaim_grace_s is not None else max(2.0 * self.lease_s, 1.0)
        #: ticket -> dispatched job document.
        self.outstanding: Dict[int, Dict[str, Any]] = {}
        #: job id -> when we first saw it claimed-but-unleased.
        self._unleased_since: Dict[str, float] = {}
        self._reset()

    def _reset(self) -> None:
        self.paths.ensure()
        _unlink_quiet(self.paths.stop_marker)
        for directory in (self.paths.todo, self.paths.claimed,
                          self.paths.leases, self.paths.results):
            try:
                names = os.listdir(directory)
            except OSError:
                continue
            for name in names:
                _unlink_quiet(os.path.join(directory, name))

    # -- interface ----------------------------------------------------

    def slots(self) -> int:
        # The queue itself is the buffer: publish the whole plan and
        # let however many workers exist steal from it.
        return 1_000_000_000

    def dispatch(self, ticket: int, worker: str,
                 payload: Dict[str, Any], key: str = "",
                 label: str = "") -> None:
        job = job_document(ticket, worker, payload, key, label,
                           self.shard_timeout, self.lease_s)
        self.paths.ensure()
        _write_atomic(self.paths.todo_path(job["job"]), job)
        self.outstanding[ticket] = job

    def poll(self, timeout_s: float) -> List[AttemptOutcome]:
        deadline = time.perf_counter() + timeout_s
        while True:
            outcomes = self._collect_results()
            outcomes.extend(self._reclaim_expired())
            remaining = deadline - time.perf_counter()
            if outcomes or remaining <= 0:
                return outcomes
            time.sleep(min(self.poll_s, remaining))

    def close(self) -> None:
        # Workers are not ours to kill — `stop_workers` is the explicit
        # fleet-shutdown signal, sent by whoever spawned the fleet.
        pass

    # -- results ------------------------------------------------------

    def _collect_results(self) -> List[AttemptOutcome]:
        try:
            names = sorted(os.listdir(self.paths.results))
        except OSError:
            return []
        envelopes: List[Dict[str, Any]] = []
        for name in names:
            if not name.endswith(".json"):
                continue
            envelope = _read_json(os.path.join(self.paths.results, name))
            if envelope is not None:
                envelopes.append(envelope)
        expected = {str(ticket): job
                    for ticket, job in self.outstanding.items()}
        outcomes: List[AttemptOutcome] = []
        for envelope in merge_job_results(envelopes, expected):
            job = self.outstanding.pop(envelope["ticket"])
            self._release(job["job"])
            if envelope["outcome"] == "ok":
                outcomes.append(AttemptOutcome(
                    ticket=envelope["ticket"], outcome="ok",
                    rows=envelope["rows"],
                    elapsed_ms=float(envelope.get("elapsed_ms", 0.0)),
                    owner=str(envelope.get("owner", ""))))
            else:
                outcomes.append(AttemptOutcome(
                    ticket=envelope["ticket"], outcome="error",
                    type_name=str(envelope.get("type", "")),
                    message=str(envelope.get("message", "")),
                    elapsed_ms=float(envelope.get("elapsed_ms", 0.0)),
                    owner=str(envelope.get("owner", ""))))
        # Sweep stale envelopes: anything naming a job no longer
        # outstanding is a reclaimed zombie's late echo.
        live = {job["job"] for job in self.outstanding.values()}
        for name in names:
            if not name.endswith(".json"):
                continue
            if name[:-len(".json")] not in live:
                _unlink_quiet(os.path.join(self.paths.results, name))
        return outcomes

    def _release(self, job_id: str) -> None:
        self._unleased_since.pop(job_id, None)
        _unlink_quiet(self.paths.claimed_path(job_id))
        _unlink_quiet(self.paths.lease_path(job_id))

    # -- lease reclaim ------------------------------------------------

    def _reclaim_expired(self) -> List[AttemptOutcome]:
        """Expired leases become ``crash``/``hang`` attempt outcomes.

        Retracting the claim file is what defuses the racing zombie:
        its heartbeat checks the claim before renewing, so deleting it
        wins any renewal race within one heartbeat interval — and even
        a renewal that lands after our lease read only delays the next
        reclaim, never resurrects the ticket we already retired.
        """
        outcomes: List[AttemptOutcome] = []
        now = now_s()
        for ticket, job in sorted(self.outstanding.items()):
            job_id = job["job"]
            if not os.path.exists(self.paths.claimed_path(job_id)):
                # Still in todo/ (or mid-claim): nothing to time out.
                self._unleased_since.pop(job_id, None)
                continue
            lease = _read_json(self.paths.lease_path(job_id))
            owner = ""
            if lease is None:
                first = self._unleased_since.setdefault(job_id, now)
                if now - first < self.reclaim_grace_s:
                    continue
                elapsed_s = now - first
                outcome = "crash"
                detail = "claimed but never leased"
            else:
                self._unleased_since.pop(job_id, None)
                if float(lease.get("expires_at", 0.0)) > now:
                    continue
                owner = str(lease.get("owner", ""))
                elapsed_s = now - float(lease.get("claimed_at", now))
                outcome = classify_expiry(elapsed_s, job.get("timeout"))
                detail = f"lease expired (owner {owner or 'unknown'})"
            del self.outstanding[ticket]
            self._release(job_id)
            outcomes.append(AttemptOutcome(
                ticket=ticket, outcome=outcome,
                message=f"{detail} after {elapsed_s:.2f}s",
                elapsed_ms=elapsed_s * 1000.0, owner=owner))
        return outcomes


# ---------------------------------------------------------------------------
# local fleet helpers (`repro run --transport jobqueue` sits on these)
# ---------------------------------------------------------------------------

def spawn_local_workers(queue_dir: str, count: int,
                        cache_dir: Optional[str] = None,
                        cache_enabled: bool = True,
                        poll_s: float = DEFAULT_POLL_S,
                        events_dir: Optional[str] = None
                        ) -> List["subprocess.Popen"]:
    """Start *count* ``repro worker`` subprocesses against *queue_dir*.

    The children inherit this interpreter and get ``src`` on their
    ``PYTHONPATH``, so the helper works from a source checkout exactly
    like the CI smokes do.  Callers own the processes: send
    :func:`stop_workers` and then :func:`join_workers` to wind down.
    """
    src_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    processes = []
    for index in range(count):
        worker_id = f"local-{index}"
        command = [sys.executable, "-m", "repro", "worker",
                   "--queue-dir", queue_dir, "--id", worker_id,
                   "--poll", str(poll_s)]
        if not cache_enabled:
            command.append("--no-cache")
        elif cache_dir:
            command.extend(["--cache-dir", cache_dir])
        if events_dir:
            command.extend(["--events",
                            os.path.join(events_dir,
                                         f"{worker_id}.events.jsonl")])
        processes.append(subprocess.Popen(command, env=env))
    return processes


def stop_workers(queue_dir: str) -> None:
    """Write the ``stop`` marker: workers drain their current job and
    exit their poll loop."""
    paths = QueuePaths(queue_dir)
    os.makedirs(queue_dir, exist_ok=True)
    with open(paths.stop_marker, "w") as stream:
        stream.write("stop\n")


def join_workers(processes: List["subprocess.Popen"],
                 timeout_s: float = 5.0) -> None:
    """Wait for a local fleet to exit; escalate to kill on stragglers
    (a worker wedged inside a hung shard cannot drain politely)."""
    for process in processes:
        try:
            process.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            process.kill()
            try:
                process.wait(timeout=timeout_s)
            except subprocess.TimeoutExpired:
                pass
