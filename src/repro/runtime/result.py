"""The unified experiment result: rows, series, provenance, timings.

Every experiment — a figure, a table, a section statistic, an
extension study — returns the same :class:`ExperimentResult` shape, so
the CLI, the benchmark harness, and :mod:`repro.core.figures` can
consume any artefact without per-figure wiring.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class ShardRecord:
    """Provenance for one executed (or cache-restored) work unit."""

    index: int
    label: str
    key: str
    cached: bool
    elapsed_ms: float
    rows: int

    def to_dict(self) -> Dict[str, Any]:
        """Stable field mapping."""
        return {
            "index": self.index,
            "label": self.label,
            "key": self.key,
            "cached": self.cached,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "rows": self.rows,
        }


@dataclass
class ShardAttempt:
    """One try at computing a shard under supervision."""

    #: 1-based attempt number within this run (resumed runs restart
    #: their own numbering; the chaos markers carry cross-run state).
    attempt: int
    #: ``ok`` | ``error`` | ``crash`` | ``hang``.
    outcome: str
    #: The :class:`repro.faults.FaultClass` value for failed attempts
    #: ("" when the attempt succeeded).
    fault_class: str = ""
    #: ``TypeName: message`` for raised exceptions, or a supervisor
    #: note (exit code, timeout) for crashes and hangs.
    error: str = ""
    elapsed_ms: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        """Stable field mapping."""
        return {
            "attempt": self.attempt,
            "outcome": self.outcome,
            "fault_class": self.fault_class,
            "error": self.error,
            "elapsed_ms": round(self.elapsed_ms, 3),
        }


@dataclass
class ShardState:
    """The supervised lifecycle of one shard: every attempt, the final
    outcome, and — for quarantined shards — why."""

    index: int
    label: str
    key: str
    #: ``cached`` | ``computed`` | ``quarantined``.
    outcome: str
    rows: int = 0
    attempts: List[ShardAttempt] = field(default_factory=list)
    quarantine_reason: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """Stable field mapping."""
        return {
            "index": self.index,
            "label": self.label,
            "key": self.key,
            "outcome": self.outcome,
            "rows": self.rows,
            "attempts": [attempt.to_dict() for attempt in self.attempts],
            "quarantine_reason": self.quarantine_reason,
        }


@dataclass
class RunManifest:
    """Provenance of a supervised run: what every shard went through.

    Partial results always carry this, so a degraded-mode completion
    (``allow_partial=True``) is distinguishable from a clean one, and
    a follow-up invocation knows exactly which shards to recompute —
    the quarantined/missing ones; everything else is in the cache.
    """

    experiment_id: str = ""
    workers: int = 1
    shards: List[ShardState] = field(default_factory=list)

    @property
    def cached(self) -> int:
        return sum(1 for shard in self.shards if shard.outcome == "cached")

    @property
    def computed(self) -> int:
        return sum(1 for shard in self.shards if shard.outcome == "computed")

    @property
    def retried(self) -> int:
        """Shards that needed more than one attempt."""
        return sum(1 for shard in self.shards if len(shard.attempts) > 1)

    def quarantined(self) -> List[ShardState]:
        """The shards that did not produce rows this run."""
        return [shard for shard in self.shards
                if shard.outcome == "quarantined"]

    @property
    def complete(self) -> bool:
        """True when every shard produced rows (cached or computed)."""
        return not self.quarantined()

    def to_dict(self) -> Dict[str, Any]:
        """Stable field mapping."""
        return {
            "experiment_id": self.experiment_id,
            "workers": self.workers,
            "cached": self.cached,
            "computed": self.computed,
            "retried": self.retried,
            "quarantined": [shard.index for shard in self.quarantined()],
            "complete": self.complete,
            "shards": [shard.to_dict() for shard in self.shards],
        }


@dataclass
class Provenance:
    """Where a result came from: inputs, code, and work performed."""

    experiment_id: str
    config_digest: str
    code_version: str
    workers: int
    shards: List[ShardRecord] = field(default_factory=list)

    @property
    def executed_shards(self) -> int:
        """Shards actually computed this run."""
        return sum(1 for shard in self.shards if not shard.cached)

    @property
    def cached_shards(self) -> int:
        """Shards restored from the artifact cache."""
        return sum(1 for shard in self.shards if shard.cached)

    def to_dict(self) -> Dict[str, Any]:
        """Stable field mapping."""
        return {
            "experiment_id": self.experiment_id,
            "config_digest": self.config_digest,
            "code_version": self.code_version,
            "workers": self.workers,
            "executed_shards": self.executed_shards,
            "cached_shards": self.cached_shards,
            "shards": [shard.to_dict() for shard in self.shards],
        }


def _json_safe(value: Any) -> Any:
    """Replace non-JSON floats (the Figure-8 infinities) recursively."""
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        return value
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


@dataclass
class ExperimentResult:
    """What :func:`repro.runtime.run_experiment` returns.

    ``rows`` is the artefact's tabular data (one dict per row, JSON
    serializable), ``series`` its named point series (Figure 3's
    per-vantage success curves, CDFs, ...), ``summary`` the headline
    scalars the paper quotes.  ``artifacts`` carries live Python
    objects (the merged :class:`ScanDataset`, the corpus, reports) for
    callers that keep analysing in-process; they never enter the cache.
    """

    experiment_id: str
    rows: List[Dict[str, Any]]
    series: Dict[str, List[Any]]
    summary: Dict[str, Any]
    provenance: Provenance
    timings: Dict[str, float] = field(default_factory=dict)
    artifacts: Dict[str, Any] = field(default_factory=dict, repr=False)
    #: Populated by supervised runs only (``supervise=True``).
    manifest: Optional[RunManifest] = None

    @property
    def cache_status(self) -> str:
        """``hit`` (all shards cached), ``miss`` (none), ``partial``,
        or ``off`` (cache disabled)."""
        shards = self.provenance.shards
        if not shards or all(s.key == "" for s in shards):
            return "off"
        if all(shard.cached for shard in shards):
            return "hit"
        if any(shard.cached for shard in shards):
            return "partial"
        return "miss"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe document (artifacts excluded by design)."""
        document = {
            "experiment_id": self.experiment_id,
            "cache": self.cache_status,
            "rows": _json_safe(self.rows),
            "series": _json_safe(self.series),
            "summary": _json_safe(self.summary),
            "provenance": self.provenance.to_dict(),
            "timings": {k: round(v, 3) for k, v in self.timings.items()},
        }
        if self.manifest is not None:
            document["manifest"] = self.manifest.to_dict()
        return document
