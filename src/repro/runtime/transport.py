"""Worker transports: how shard attempts reach compute and come back.

:class:`~repro.runtime.supervisor.SupervisedExecutor` owns *policy* —
retry budgets, backoff, quarantine, cache persistence, the manifest —
and delegates *mechanism* to a :class:`ShardTransport`: something that
can take dispatched attempts and eventually report, for each, one
:class:`AttemptOutcome` (``ok`` / ``error`` / ``crash`` / ``hang``).

Three implementations exist:

* :class:`PipePoolTransport` (here) — the original per-host pool of
  supervised worker processes talking over pipes, with EOF crash
  detection, per-shard wall-clock timeouts, and lazy worker spawning;
* :class:`~repro.runtime.dist.JobQueueTransport` — a filesystem-backed
  job queue where independent ``repro worker`` processes (potentially
  on many hosts sharing the queue and artifact-cache directories)
  claim shards via atomic-rename leases;
* :class:`~repro.runtime.sock.SocketTransport` — the same job/lease/
  envelope documents over framed TCP for fleets without a shared
  filesystem: workers dial in with ``repro worker --connect``, leases
  are heartbeat frames, and a hostile wire degrades to typed protocol
  errors, never divergent bytes.

The contract that keeps every topology byte-identical: transports move
*attempts*, never *content*.  A transport may reorder, retry-signal,
or duplicate work, but rows are pure functions of their payloads and
the supervisor reorders results into spec order, so the merged bytes
cannot depend on which transport (or how many machines) carried them.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .executor import resolve_worker

#: Outcome tags a transport may report (mirrors ShardAttempt.outcome).
ATTEMPT_OUTCOMES = ("ok", "error", "crash", "hang")


@dataclass(frozen=True)
class AttemptOutcome:
    """What one dispatched attempt came back with.

    ``ticket`` echoes the dispatch ticket, ``outcome`` is one of
    :data:`ATTEMPT_OUTCOMES`; ``rows`` is set for ``ok``, ``type_name``
    / ``message`` for the rest.  ``owner`` names the worker that
    carried the attempt (pool slot or queue worker id) — provenance
    for the monitor's lifecycle events, never content.
    """

    ticket: int
    outcome: str
    rows: Optional[List[Dict[str, Any]]] = None
    type_name: str = ""
    message: str = ""
    elapsed_ms: float = 0.0
    owner: str = ""


class ShardTransport:
    """The interface a supervised run drives (abstract).

    The supervisor calls :meth:`slots` to learn how many attempts it
    may dispatch right now, :meth:`dispatch` to hand one over,
    :meth:`poll` to collect finished outcomes (blocking at most
    ``timeout_s``), and :meth:`close` exactly once at the end.  A
    dispatched ticket is owed exactly one outcome; hang detection is
    the transport's job (it owns the clocks), retry policy is not.
    """

    def slots(self) -> int:
        """How many more attempts may be dispatched right now."""
        raise NotImplementedError

    def dispatch(self, ticket: int, worker: str,
                 payload: Dict[str, Any], key: str = "",
                 label: str = "") -> None:
        """Hand one attempt to the transport (must not block on work)."""
        raise NotImplementedError

    def poll(self, timeout_s: float) -> List[AttemptOutcome]:
        """Outcomes that completed since the last poll (may be empty)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release workers/files; outstanding attempts are abandoned."""
        raise NotImplementedError


def _worker_loop(conn) -> None:
    """Body of one pooled worker process.

    Receives ``(ticket, worker, payload)`` tasks over *conn*, answers
    with ``("ok", ticket, rows, ms)`` or ``("error", ticket,
    type_name, message, ms)``.  Exits on the ``None`` sentinel — or on
    EOF, which is what a dead parent looks like, so orphaned workers
    die instead of spinning.
    """
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        ticket, worker, payload = task
        started = time.perf_counter()
        try:
            rows = resolve_worker(worker)(payload)
        except BaseException as exc:  # repro: allow-broad-except -- worker-process firewall; the parent classifies the failure by exception name
            conn.send(("error", ticket, type(exc).__name__, str(exc),
                       (time.perf_counter() - started) * 1000.0))
        else:
            conn.send(("ok", ticket, rows,
                       (time.perf_counter() - started) * 1000.0))


class _Worker:
    """One pooled worker process plus its command pipe."""

    def __init__(self, context) -> None:
        self.conn, child_conn = multiprocessing.Pipe()
        self.process = context.Process(target=_worker_loop,
                                       args=(child_conn,), daemon=True)
        self.process.start()
        # The parent must not hold the child's pipe end open, or EOF
        # (our crash detector) would never be delivered.
        child_conn.close()
        self.ticket: Optional[int] = None
        self.started = 0.0

    @property
    def owner(self) -> str:
        return f"pool:pid{self.process.pid}"

    def assign(self, ticket: int, worker: str,
               payload: Dict[str, Any]) -> None:
        self.ticket = ticket
        self.started = time.perf_counter()
        self.conn.send((ticket, worker, payload))

    def shutdown(self) -> None:
        """Best-effort graceful stop, then force-kill."""
        try:
            self.conn.send(None)
        except (OSError, ValueError):
            pass
        self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=1.0)
        self.conn.close()

    def kill(self) -> None:
        self.process.kill()
        self.process.join(timeout=5.0)
        self.conn.close()


class PipePoolTransport(ShardTransport):
    """The per-host pipe pool, factored out of the PR-4 supervisor.

    Workers are spawned lazily up to *workers*, so a 2-shard run under
    an 8-worker budget starts 2 processes, exactly as before.  A
    worker that dies mid-shard (EOF on its pipe) is replaced and the
    attempt reported as ``crash``; one that outlives *shard_timeout*
    is killed, replaced, and reported as ``hang``.
    """

    def __init__(self, workers: int = 1,
                 shard_timeout: Optional[float] = None) -> None:
        self.max_workers = max(1, workers)
        self.shard_timeout = shard_timeout
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError:
            self._context = multiprocessing.get_context()
        self._workers: List[_Worker] = []

    # -- interface -----------------------------------------------------

    def slots(self) -> int:
        idle = sum(1 for w in self._workers if w.ticket is None)
        return idle + (self.max_workers - len(self._workers))

    def dispatch(self, ticket: int, worker: str,
                 payload: Dict[str, Any], key: str = "",
                 label: str = "") -> None:
        while True:
            slot = self._idle_worker()
            try:
                slot.assign(ticket, worker, payload)
            except (OSError, ValueError):
                # The idle worker died between shards: replace it and
                # assign again — dispatch must not lose the attempt.
                self._replace(slot)
                continue
            return

    def poll(self, timeout_s: float) -> List[AttemptOutcome]:
        outcomes: List[AttemptOutcome] = []
        busy = [w for w in self._workers if w.ticket is not None]
        # Idle pipes are never readable, so waiting on them when
        # nothing is busy is a bounded idle tick, not a spin.
        conns = [w.conn for w in (busy or self._workers)]
        if not conns:
            return outcomes
        for conn in multiprocessing.connection.wait(conns,
                                                    timeout=timeout_s):
            slot = next(w for w in self._workers if w.conn is conn)
            ticket = slot.ticket
            if ticket is None:
                continue
            owner = slot.owner
            try:
                message = slot.conn.recv()
            except (EOFError, OSError):
                # Worker process died mid-shard: restart it and report
                # the attempt as a crash.
                elapsed = (time.perf_counter() - slot.started) * 1000.0
                exitcode = slot.process.exitcode
                self._replace(slot)
                outcomes.append(AttemptOutcome(
                    ticket=ticket, outcome="crash",
                    message=f"worker exited (code {exitcode})",
                    elapsed_ms=elapsed, owner=owner))
                continue
            slot.ticket = None
            if message[0] == "ok":
                _tag, _ticket, rows, elapsed_ms = message
                outcomes.append(AttemptOutcome(
                    ticket=ticket, outcome="ok", rows=rows,
                    elapsed_ms=elapsed_ms, owner=owner))
            else:
                _tag, _ticket, type_name, text, elapsed_ms = message
                outcomes.append(AttemptOutcome(
                    ticket=ticket, outcome="error", type_name=type_name,
                    message=text, elapsed_ms=elapsed_ms, owner=owner))
        if self.shard_timeout is not None:
            now = time.perf_counter()
            for slot in list(self._workers):
                ticket = slot.ticket
                if ticket is None or now - slot.started <= self.shard_timeout:
                    continue
                # Hung shard: kill the worker, restart, report.
                elapsed = (now - slot.started) * 1000.0
                owner = slot.owner
                self._replace(slot)
                outcomes.append(AttemptOutcome(
                    ticket=ticket, outcome="hang",
                    message=(f"exceeded shard timeout "
                             f"({self.shard_timeout:g}s)"),
                    elapsed_ms=elapsed, owner=owner))
        return outcomes

    def close(self) -> None:
        for slot in self._workers:
            slot.shutdown()
        self._workers = []

    # -- pool plumbing -------------------------------------------------

    def _idle_worker(self) -> _Worker:
        for slot in self._workers:
            if slot.ticket is None:
                return slot
        slot = _Worker(self._context)
        self._workers.append(slot)
        return slot

    def _replace(self, slot: _Worker) -> None:
        slot.kill()
        self._workers[self._workers.index(slot)] = _Worker(self._context)
