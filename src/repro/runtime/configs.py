"""Per-experiment run configurations.

Each experiment's runner takes one small config dataclass; every
config serializes stably (``to_dict``/``from_dict``/``config_digest``)
because configs travel inside shard payloads and become cache-key
material.  :func:`default_config` maps an experiment id (plus an
optional :class:`~repro.core.figures.FigureScale`) to the config the
CLI, the figure generator, and the benchmarks use.

The shard *plan* is always a pure function of the config — never of
the worker count — so cache keys are stable across ``workers=`` values
and parallel output is structurally identical to serial output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..canon import stable_digest
from ..datasets.alexa import AlexaConfig
from ..datasets.corpus import CorpusConfig
from ..datasets.world import WorldConfig
from ..simnet import DAY, HOUR, MEASUREMENT_START


class _Config:
    """Shared digest/hash plumbing for the config dataclasses."""

    def config_digest(self) -> str:
        """Content address of this config."""
        return stable_digest(self)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.config_digest()))


@dataclass
class QueueTuning:
    """Lease/poll tunables for the multi-node transports
    (``repro run --transport jobqueue`` and ``--transport socket``).

    Deliberately **not** a :class:`_Config`: these knobs govern lease
    renewal and polling cadence — pure scheduling, shared between the
    coordinator and its worker fleet — and must never reach shard
    payloads or cache keys, or changing a heartbeat interval would
    invalidate every cached shard.  (The no-workers-in-cache-keys rule,
    applied to the transport layer.)
    """

    #: Lease duration; a dead worker is detected within about one
    #: lease of its last heartbeat.
    lease_s: float = 2.0
    #: Idle-poll cadence for workers and the coordinator.
    poll_s: float = 0.05
    #: How long a claim may sit without a visible lease before it
    #: counts as a dead claimant (None = derived from ``lease_s``).
    reclaim_grace_s: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        """Stable field mapping (CLI/debug display only)."""
        return {"lease_s": self.lease_s, "poll_s": self.poll_s,
                "reclaim_grace_s": self.reclaim_grace_s}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "QueueTuning":
        """Rebuild from :meth:`to_dict` output."""
        return cls(lease_s=data.get("lease_s", 2.0),
                   poll_s=data.get("poll_s", 0.05),
                   reclaim_grace_s=data.get("reclaim_grace_s"))


@dataclass
class ScanCampaignConfig(_Config):
    """One hourly-scan campaign (Figures 3, 5-9, §5.4, response size)."""

    world: WorldConfig = field(default_factory=WorldConfig)
    #: Vantage subset (None = all six).
    vantages: Optional[Tuple[str, ...]] = None
    interval: int = HOUR
    start: Optional[int] = None   # None = world.start
    end: Optional[int] = None     # None = world.end
    #: Contiguous target-range slices — the shard granularity (a
    #: config property, NOT tied to ``workers``).
    target_chunks: int = 8

    def to_dict(self) -> Dict[str, Any]:
        """Stable field mapping."""
        return {
            "world": self.world.to_dict(),
            "vantages": list(self.vantages) if self.vantages else None,
            "interval": self.interval,
            "start": self.start,
            "end": self.end,
            "target_chunks": self.target_chunks,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScanCampaignConfig":
        """Rebuild from :meth:`to_dict` output."""
        vantages = data.get("vantages")
        return cls(
            world=WorldConfig.from_dict(data["world"]),
            vantages=tuple(vantages) if vantages else None,
            interval=data["interval"],
            start=data.get("start"),
            end=data.get("end"),
            target_chunks=data.get("target_chunks", 8),
        )


@dataclass
class CorpusRunConfig(_Config):
    """Corpus generation + Section-4 deployment statistics."""

    corpus: CorpusConfig = field(default_factory=CorpusConfig)
    shards: int = 4

    def to_dict(self) -> Dict[str, Any]:
        """Stable field mapping."""
        return {"corpus": self.corpus.to_dict(), "shards": self.shards}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CorpusRunConfig":
        """Rebuild from :meth:`to_dict` output."""
        return cls(corpus=CorpusConfig.from_dict(data["corpus"]),
                   shards=data.get("shards", 4))


@dataclass
class AlexaRunConfig(_Config):
    """Alexa model generation + rank-binned adoption (Figures 2, 11)."""

    alexa: AlexaConfig = field(default_factory=AlexaConfig)
    shards: int = 4
    bin_width: int = 10_000

    def to_dict(self) -> Dict[str, Any]:
        """Stable field mapping."""
        return {"alexa": self.alexa.to_dict(), "shards": self.shards,
                "bin_width": self.bin_width}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AlexaRunConfig":
        """Rebuild from :meth:`to_dict` output."""
        return cls(alexa=AlexaConfig.from_dict(data["alexa"]),
                   shards=data.get("shards", 4),
                   bin_width=data.get("bin_width", 10_000))


@dataclass
class OutageImpactConfig(_Config):
    """Figure 4: Alexa domains unable to fetch OCSP, per vantage."""

    world: WorldConfig = field(default_factory=WorldConfig)
    seed: int = 11
    times: Tuple[int, ...] = ()
    vantages: Optional[Tuple[str, ...]] = None

    def to_dict(self) -> Dict[str, Any]:
        """Stable field mapping."""
        return {
            "world": self.world.to_dict(),
            "seed": self.seed,
            "times": list(self.times),
            "vantages": list(self.vantages) if self.vantages else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "OutageImpactConfig":
        """Rebuild from :meth:`to_dict` output."""
        vantages = data.get("vantages")
        return cls(world=WorldConfig.from_dict(data["world"]),
                   seed=data["seed"], times=tuple(data.get("times", ())),
                   vantages=tuple(vantages) if vantages else None)


@dataclass
class ConsistencyRunConfig(_Config):
    """Table 1 / Figure 10: the CRL↔OCSP cross-check."""

    scale: int = 40
    seed: int = 17

    def to_dict(self) -> Dict[str, Any]:
        """Stable field mapping."""
        return {"scale": self.scale, "seed": self.seed}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ConsistencyRunConfig":
        """Rebuild from :meth:`to_dict` output."""
        return cls(scale=data["scale"], seed=data.get("seed", 17))


@dataclass
class ReadinessConfig(_Config):
    """Section 8: the cross-principal verdict."""

    world: WorldConfig = field(default_factory=lambda: WorldConfig(
        n_responders=70, certs_per_responder=1))
    corpus: CorpusConfig = field(default_factory=lambda: CorpusConfig(
        size=5_000))
    scan_days: int = 3
    scan_interval: int = 6 * HOUR

    def to_dict(self) -> Dict[str, Any]:
        """Stable field mapping."""
        return {
            "world": self.world.to_dict(),
            "corpus": self.corpus.to_dict(),
            "scan_days": self.scan_days,
            "scan_interval": self.scan_interval,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ReadinessConfig":
        """Rebuild from :meth:`to_dict` output."""
        return cls(world=WorldConfig.from_dict(data["world"]),
                   corpus=CorpusConfig.from_dict(data["corpus"]),
                   scan_days=data["scan_days"],
                   scan_interval=data["scan_interval"])


@dataclass
class LatencyConfig(_Config):
    """Extension: direct vs CDN-fronted lookup latency."""

    world: WorldConfig = field(default_factory=lambda: WorldConfig(
        n_responders=60, certs_per_responder=1))
    hours: int = 12

    def to_dict(self) -> Dict[str, Any]:
        """Stable field mapping."""
        return {"world": self.world.to_dict(), "hours": self.hours}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LatencyConfig":
        """Rebuild from :meth:`to_dict` output."""
        return cls(world=WorldConfig.from_dict(data["world"]),
                   hours=data["hours"])


@dataclass
class AttackWindowConfig(_Config):
    """Extension: replay / strip-and-block attack windows."""

    seed: int = 6
    validities: Tuple[int, ...] = (2 * HOUR, DAY, 7 * DAY)
    horizon: int = 30 * DAY

    def to_dict(self) -> Dict[str, Any]:
        """Stable field mapping."""
        return {"seed": self.seed, "validities": list(self.validities),
                "horizon": self.horizon}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AttackWindowConfig":
        """Rebuild from :meth:`to_dict` output."""
        return cls(seed=data["seed"],
                   validities=tuple(data.get("validities", ())),
                   horizon=data.get("horizon", 30 * DAY))


@dataclass
class WhatIfRunConfig(_Config):
    """Extension: universal Must-Staple enforcement."""

    n_sites: int = 40

    def to_dict(self) -> Dict[str, Any]:
        """Stable field mapping."""
        return {"n_sites": self.n_sites}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WhatIfRunConfig":
        """Rebuild from :meth:`to_dict` output."""
        return cls(n_sites=data["n_sites"])


@dataclass
class SeedConfig(_Config):
    """Experiments with no tunable inputs beyond a seed (Tables 2/3,
    Figure 12, the multi-staple / alternatives / ablation studies)."""

    seed: int = 7

    def to_dict(self) -> Dict[str, Any]:
        """Stable field mapping."""
        return {"seed": self.seed}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SeedConfig":
        """Rebuild from :meth:`to_dict` output."""
        return cls(seed=data.get("seed", 7))


@dataclass
class ChaosAvailabilityConfig(_Config):
    """Chaos extension of Figures 3/4: the hourly scan swept across
    named fault scenarios (catalogue in :mod:`repro.faults`)."""

    campaign: ScanCampaignConfig = field(default_factory=ScanCampaignConfig)
    scenarios: Tuple[str, ...] = ("baseline",)
    #: Seed for every scenario's injector draws (scenario names travel
    #: in shard payloads; plans are rebuilt worker-side).
    fault_seed: int = 23

    def to_dict(self) -> Dict[str, Any]:
        """Stable field mapping."""
        return {
            "campaign": self.campaign.to_dict(),
            "scenarios": list(self.scenarios),
            "fault_seed": self.fault_seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChaosAvailabilityConfig":
        """Rebuild from :meth:`to_dict` output."""
        return cls(campaign=ScanCampaignConfig.from_dict(data["campaign"]),
                   scenarios=tuple(data.get("scenarios", ("baseline",))),
                   fault_seed=data.get("fault_seed", 23))


@dataclass
class ChaosClientConfig(_Config):
    """Chaos client-outcome grid: fault scenario × client policy."""

    world: WorldConfig = field(default_factory=WorldConfig)
    scenarios: Tuple[str, ...] = ("baseline",)
    policies: Tuple[str, ...] = ("firefox-soft-fail",)
    times: Tuple[int, ...] = ()
    vantages: Optional[Tuple[str, ...]] = None
    fault_seed: int = 23

    def to_dict(self) -> Dict[str, Any]:
        """Stable field mapping."""
        return {
            "world": self.world.to_dict(),
            "scenarios": list(self.scenarios),
            "policies": list(self.policies),
            "times": list(self.times),
            "vantages": list(self.vantages) if self.vantages else None,
            "fault_seed": self.fault_seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChaosClientConfig":
        """Rebuild from :meth:`to_dict` output."""
        vantages = data.get("vantages")
        return cls(world=WorldConfig.from_dict(data["world"]),
                   scenarios=tuple(data.get("scenarios", ("baseline",))),
                   policies=tuple(data.get("policies",
                                           ("firefox-soft-fail",))),
                   times=tuple(data.get("times", ())),
                   vantages=tuple(vantages) if vantages else None,
                   fault_seed=data.get("fault_seed", 23))


@dataclass
class HostileCorpusConfig(_Config):
    """Hostile-corpus survival matrix: seeded DER mutation × the full
    parse/lint/verify stack (:mod:`repro.hostile`)."""

    seed: int = 2018
    #: Fixed "now" for minting and verifying the seed documents.
    reference_time: int = MEASUREMENT_START + DAY
    #: Mutation ids 0..N-1 are generated per kind.
    mutants_per_kind: int = 2000
    kinds: Tuple[str, ...] = ("certificate", "ocsp", "crl")
    #: Contiguous mutation-id slices per kind — the shard granularity.
    chunks: int = 8

    def to_dict(self) -> Dict[str, Any]:
        """Stable field mapping."""
        return {
            "seed": self.seed,
            "reference_time": self.reference_time,
            "mutants_per_kind": self.mutants_per_kind,
            "kinds": list(self.kinds),
            "chunks": self.chunks,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HostileCorpusConfig":
        """Rebuild from :meth:`to_dict` output."""
        return cls(seed=data.get("seed", 2018),
                   reference_time=data.get("reference_time",
                                           MEASUREMENT_START + DAY),
                   mutants_per_kind=data.get("mutants_per_kind", 2000),
                   kinds=tuple(data.get("kinds",
                                        ("certificate", "ocsp", "crl"))),
                   chunks=data.get("chunks", 8))


@dataclass
class ServeLoadTestConfig(_Config):
    """Serve load test: daemon-path byte-identity plus warm-cache
    throughput over seeded corpus traffic (:mod:`repro.serve`)."""

    world: WorldConfig = field(default_factory=WorldConfig)
    seed: int = 6960
    #: Length of the synthesized request stream.
    requests: int = 4000
    #: Fraction of requests preferring the RFC 6960 A.1 GET transport.
    get_fraction: float = 0.25
    #: Fraction carrying a fresh nonce (cache-busting misses).
    nonce_fraction: float = 0.02
    #: SignQueue micro-batch bound.
    max_batch: int = 64
    #: Contiguous request-range slices — the identity-shard granularity.
    chunks: int = 8

    def to_dict(self) -> Dict[str, Any]:
        """Stable field mapping."""
        return {
            "world": self.world.to_dict(),
            "seed": self.seed,
            "requests": self.requests,
            "get_fraction": self.get_fraction,
            "nonce_fraction": self.nonce_fraction,
            "max_batch": self.max_batch,
            "chunks": self.chunks,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServeLoadTestConfig":
        """Rebuild from :meth:`to_dict` output."""
        return cls(world=WorldConfig.from_dict(data["world"]),
                   seed=data.get("seed", 6960),
                   requests=data.get("requests", 4000),
                   get_fraction=data.get("get_fraction", 0.25),
                   nonce_fraction=data.get("nonce_fraction", 0.02),
                   max_batch=data.get("max_batch", 64),
                   chunks=data.get("chunks", 8))


@dataclass
class MonitorConvergenceConfig(_Config):
    """Monitor convergence: shard-level reducer merges over one scan
    campaign's event log vs. the batch pipeline (:mod:`repro.monitor`).

    ``partitions`` is deliberately independent of the campaign's
    ``target_chunks``: the stream side slices the log differently than
    the batch side shards the scan, so convergence is evidence about
    the reducer algebra, not about sharing a partitioning.
    """

    campaign: ScanCampaignConfig = field(
        default_factory=ScanCampaignConfig)
    #: Event-log partition count (one reduce shard each).
    partitions: int = 5

    def to_dict(self) -> Dict[str, Any]:
        """Stable field mapping."""
        return {
            "campaign": self.campaign.to_dict(),
            "partitions": self.partitions,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MonitorConvergenceConfig":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            campaign=ScanCampaignConfig.from_dict(data["campaign"]),
            partitions=data.get("partitions", 5))


def default_config(experiment_id: str, scale: Optional[object] = None):
    """The config an experiment runs with absent an explicit one.

    *scale* is a :class:`repro.core.figures.FigureScale`; omitted, the
    small (sub-minute) scale applies.
    """
    from ..core.figures import FigureScale
    scale = scale or FigureScale.small()

    world = WorldConfig(n_responders=scale.n_responders,
                        certs_per_responder=scale.certs_per_responder,
                        seed=scale.seed)
    campaign = ScanCampaignConfig(
        world=world, interval=scale.scan_interval,
        start=MEASUREMENT_START,
        end=MEASUREMENT_START + scale.scan_days * DAY)

    if experiment_id in ("fig3", "fig5", "fig6", "fig7", "fig8", "fig9",
                         "ext-response-size"):
        return campaign
    if experiment_id == "sec5-freshness":
        # Freshness detection needs hourly cadence from one vantage —
        # producedAt lags are invisible to sparse scans.
        return ScanCampaignConfig(
            world=world, vantages=("Virginia",), interval=HOUR,
            start=MEASUREMENT_START, end=MEASUREMENT_START + 2 * DAY)
    if experiment_id == "sec4-deployment":
        return CorpusRunConfig(corpus=CorpusConfig(size=scale.corpus_size,
                                                   seed=scale.seed))
    if experiment_id in ("fig2", "fig11"):
        return AlexaRunConfig(alexa=AlexaConfig(size=scale.alexa_size,
                                                seed=scale.seed),
                              bin_width=50_000)
    if experiment_id == "fig4":
        stride = max(1, scale.scan_days // 8)
        times = tuple(MEASUREMENT_START + day * DAY
                      for day in range(0, scale.scan_days, stride))
        return OutageImpactConfig(world=world, seed=scale.seed + 4,
                                  times=times)
    if experiment_id in ("tbl1", "fig10"):
        return ConsistencyRunConfig(scale=scale.consistency_scale,
                                    seed=17)
    if experiment_id == "sec8-readiness":
        return ReadinessConfig(
            world=WorldConfig(n_responders=min(70, scale.n_responders),
                              certs_per_responder=1, seed=scale.seed),
            corpus=CorpusConfig(size=min(5_000, scale.corpus_size),
                                seed=scale.seed))
    if experiment_id == "ext-latency":
        return LatencyConfig(world=WorldConfig(
            n_responders=min(60, scale.n_responders),
            certs_per_responder=1, seed=scale.seed))
    if experiment_id == "ext-attack-window":
        return AttackWindowConfig()
    if experiment_id == "ext-whatif":
        return WhatIfRunConfig()
    if experiment_id == "chaos-availability":
        # A trimmed campaign: the scenario sweep multiplies the scan
        # cost, so cap the window and responder count independently of
        # the figure-scale knobs.
        chaos_world = WorldConfig(
            n_responders=min(40, scale.n_responders),
            certs_per_responder=1, seed=scale.seed)
        chaos_campaign = ScanCampaignConfig(
            world=chaos_world, interval=scale.scan_interval,
            start=MEASUREMENT_START,
            end=MEASUREMENT_START + min(3, scale.scan_days) * DAY,
            target_chunks=4)
        return ChaosAvailabilityConfig(
            campaign=chaos_campaign,
            scenarios=("baseline", "responder-brownout",
                       "regional-blackout", "heavy-tail-latency",
                       "stale-responder"))
    if experiment_id == "chaos-client-outcomes":
        return ChaosClientConfig(
            world=WorldConfig(n_responders=min(24, scale.n_responders),
                              certs_per_responder=1, seed=scale.seed),
            scenarios=("baseline", "regional-blackout",
                       "stale-responder", "packet-loss"),
            policies=("firefox-soft-fail", "must-staple-hard-fail",
                      "no-check"),
            times=(MEASUREMENT_START + HOUR,
                   MEASUREMENT_START + 9 * HOUR,
                   MEASUREMENT_START + 17 * HOUR))
    if experiment_id == "hostile-corpus":
        # Budget independent of the figure-scale knobs: 2000 mutants
        # per document kind covers every family ~166 times while
        # keeping the default run under a minute.
        return HostileCorpusConfig()
    if experiment_id == "serve-loadtest":
        # A smaller world than the figure campaigns: the load test
        # exercises the serving stack, not the measurement breadth,
        # and 4000 requests over ~3 dozen sites already drives the
        # cache through hits, nonce misses, and batch coalescing.
        return ServeLoadTestConfig(
            world=WorldConfig(n_responders=min(20, scale.n_responders),
                              certs_per_responder=2, seed=scale.seed))
    if experiment_id == "monitor-convergence":
        # The same campaign as fig3 at this scale, so the batch side's
        # scan shards come straight from the shared artifact cache;
        # the stream side re-reduces the log in 5 partitions.
        return MonitorConvergenceConfig(campaign=campaign)
    if experiment_id in ("tbl2", "tbl3", "fig12", "ext-multistaple",
                         "ext-alternatives", "abl-apache-patch",
                         "abl-parser", "abl-keysize"):
        return SeedConfig(seed=scale.seed)
    raise KeyError(f"no default config for experiment {experiment_id!r}")
