"""Shard execution: serial or multiprocessing, same bytes either way.

A :class:`ShardSpec` is a picklable description of one work unit — a
dotted ``module:function`` worker entrypoint plus a JSON-able payload.
The :class:`ShardExecutor` first satisfies what it can from the
artifact cache, then computes the misses serially (``workers=1``) or
in a process pool.  Because every worker is a pure function of its
payload, the execution strategy can never change the output — only
the wall clock.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..refs import resolve_ref
from .cache import ArtifactCache, shard_key
from .result import ShardRecord


def resolve_worker(dotted: str) -> Callable[[Dict[str, Any]], List[Dict[str, Any]]]:
    """Import a ``module:function`` worker entrypoint.

    Thin wrapper over :func:`repro.refs.resolve_ref` — the same
    resolution the static analyzer mirrors, so a worker ref that runs
    here but escapes the purity contract cannot exist.
    """
    try:
        return resolve_ref(dotted)
    except ValueError as exc:
        raise ValueError(f"worker {exc}") from None


@dataclass
class ShardSpec:
    """One independent, picklable unit of experiment work."""

    worker: str
    payload: Dict[str, Any] = field(default_factory=dict)
    label: str = ""

    def key(self) -> str:
        """The shard's content address in the artifact cache."""
        return shard_key(self.worker, self.payload)


def _execute(item: Tuple[int, str, str, Dict[str, Any]]
             ) -> Tuple[int, str, List[Dict[str, Any]], float]:
    """Run one shard (in this or a pool process); returns rows + ms.

    The cache key rides along untouched so the scheduling and storing
    sides of the run always agree on one computation of it.
    """
    index, key, worker, payload = item
    started = time.perf_counter()
    rows = resolve_worker(worker)(payload)
    return index, key, rows, (time.perf_counter() - started) * 1000.0


class ShardExecutor:
    """Run shard specs against a cache, serially or in parallel."""

    def __init__(self, workers: int = 1,
                 cache: Optional[ArtifactCache] = None) -> None:
        self.workers = max(1, workers)
        self.cache = cache if cache is not None else ArtifactCache(enabled=False)

    def run(self, specs: List[ShardSpec]
            ) -> Tuple[List[List[Dict[str, Any]]], List[ShardRecord]]:
        """Execute *specs*; returns (per-spec rows, provenance records).

        Output order always matches spec order, so callers' merges are
        independent of worker count and cache state.
        """
        outputs: List[Optional[List[Dict[str, Any]]]] = [None] * len(specs)
        records: List[Optional[ShardRecord]] = [None] * len(specs)

        pending: List[Tuple[int, str, str, Dict[str, Any]]] = []
        for index, spec in enumerate(specs):
            # One key computation per spec: the same value is threaded
            # through scheduling, cache writes, and provenance, so the
            # three can never disagree.
            key = spec.key() if self.cache.enabled else ""
            cached = self.cache.load(key) if key else None
            if cached is not None:
                outputs[index] = cached
                records[index] = ShardRecord(
                    index=index, label=spec.label, key=key, cached=True,
                    elapsed_ms=0.0, rows=len(cached))
            else:
                pending.append((index, key, spec.worker, spec.payload))

        if pending:
            if self.workers > 1 and len(pending) > 1:
                # fork shares the parent's imported modules; spawn works
                # too, just slower to start.
                try:
                    context = multiprocessing.get_context("fork")
                except ValueError:
                    context = multiprocessing.get_context()
                with context.Pool(min(self.workers, len(pending))) as pool:
                    results = pool.map(_execute, pending)
            else:
                results = [_execute(item) for item in pending]
            for index, key, rows, elapsed_ms in results:
                spec = specs[index]
                if key:
                    self.cache.store(key, spec.worker, rows)
                outputs[index] = rows
                records[index] = ShardRecord(
                    index=index, label=spec.label, key=key, cached=False,
                    elapsed_ms=elapsed_ms, rows=len(rows))

        return [rows if rows is not None else [] for rows in outputs], \
               [record for record in records if record is not None]
