"""Deterministic network-fault chaos for the socket transport.

The :mod:`repro.faults` idiom — injectors as declarative dataclasses
whose every decision is a pure function of a seed and explicit
coordinates — applied to our own wire protocol.  A
:class:`ChaosPlan` decides the fate of frame *i* of stream *s* from
``unit_draw(seed, kind, s, i)`` alone: no RNG state, no clock, so two
runs (or a test and its failure reproduction) mangle identically.

Fault families, mirroring what the paper's measurement campaigns met
on the real network: seeded frame **drop**, **delay-reorder** (a
frame held past its successors), **duplication**, **truncation
mid-frame** followed by a reset (the torn write), abrupt **connection
reset**, and a **black-hole partition** window (frames silently
eaten, the connection held open — the failure mode that makes
lease-based reclaim earn its keep).

The pure core is the decision/mangle layer (:func:`mangle_step` /
:func:`mangle_stream`) — certified effect-free by ``repro analyze``'s
``netchaos`` contract group.  :class:`ChaosProxy` is the deliberately
impure shell: a real TCP proxy that splits the byte stream into wire
frames and applies the plan between a coordinator and its workers, so
``tests/test_sock.py`` and the ``sock-smoke`` CI job can prove merged
bytes are invariant under wire hostility.
"""

from __future__ import annotations

import socket
import struct
import threading
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..canon import stable_digest
from ..faults.injectors import unit_draw
from .sock import LENGTH_BYTES, MAX_FRAME_BYTES, dial

#: One mangle action: ``("send", data)`` forwards bytes downstream,
#: ``("reset", b"")`` aborts the connection (RST, not FIN).
Action = Tuple[str, bytes]


@dataclass(frozen=True)
class FrameFate:
    """What happens to one wire frame (a pure decision record).

    ``hold`` delays delivery until that many later frames have passed
    (the reorder primitive); ``truncate_keep`` forwards only that
    fraction of the frame's bytes and implies a reset — a frame cut
    mid-write is unrecoverable for the stream, exactly like a real
    torn connection.
    """

    drop: bool = False
    duplicate: bool = False
    hold: int = 0
    truncate_keep: Optional[float] = None
    reset: bool = False


#: The do-nothing fate (shared; FrameFate is frozen).
PASS = FrameFate()


@dataclass(frozen=True)
class FrameDrop:
    """Silently eat a seeded fraction of frames."""

    kind = "drop"
    rate: float = 0.0

    def decide(self, seed: int, stream: str,
               index: int) -> Optional[FrameFate]:
        if unit_draw(seed, self.kind, stream, index) < self.rate:
            return FrameFate(drop=True)
        return None


@dataclass(frozen=True)
class FrameDelay:
    """Hold a seeded fraction of frames past 1..depth successors."""

    kind = "delay"
    rate: float = 0.0
    depth: int = 2

    def decide(self, seed: int, stream: str,
               index: int) -> Optional[FrameFate]:
        if unit_draw(seed, self.kind, stream, index) < self.rate:
            hold = 1 + int(unit_draw(seed, self.kind, "depth", stream,
                                     index) * max(1, self.depth))
            return FrameFate(hold=hold)
        return None


@dataclass(frozen=True)
class FrameDuplicate:
    """Deliver a seeded fraction of frames twice."""

    kind = "duplicate"
    rate: float = 0.0

    def decide(self, seed: int, stream: str,
               index: int) -> Optional[FrameFate]:
        if unit_draw(seed, self.kind, stream, index) < self.rate:
            return FrameFate(duplicate=True)
        return None


@dataclass(frozen=True)
class FrameTruncate:
    """Cut a seeded fraction of frames mid-write, then reset."""

    kind = "truncate"
    rate: float = 0.0
    keep: float = 0.5

    def decide(self, seed: int, stream: str,
               index: int) -> Optional[FrameFate]:
        if unit_draw(seed, self.kind, stream, index) < self.rate:
            return FrameFate(truncate_keep=self.keep, reset=True)
        return None


@dataclass(frozen=True)
class ConnectionReset:
    """Forward a seeded fraction of frames whole, then reset."""

    kind = "reset"
    rate: float = 0.0

    def decide(self, seed: int, stream: str,
               index: int) -> Optional[FrameFate]:
        if unit_draw(seed, self.kind, stream, index) < self.rate:
            return FrameFate(reset=True)
        return None


@dataclass(frozen=True)
class Partition:
    """Black-hole window: frames ``start <= i < start+length`` vanish
    while the connection stays open — the silent partition that only
    heartbeat-timed leases can detect."""

    kind = "partition"
    start: int = 0
    length: int = 0

    def decide(self, seed: int, stream: str,
               index: int) -> Optional[FrameFate]:
        if self.start <= index < self.start + self.length:
            return FrameFate(drop=True)
        return None


@dataclass(frozen=True)
class ChaosPlan:
    """A named, seeded composition of wire-fault injectors.

    First injector with an opinion wins — composition by priority,
    like a fault plan's scenario list.  ``decide`` is a pure function
    of ``(seed, stream, frame_index)``; *stream* is any stable label
    the harness chooses (direction plus connection ordinal in the
    proxy), so independent streams draw independently while staying
    reproducible.
    """

    name: str = "passthrough"
    seed: int = 0
    injectors: Tuple[Any, ...] = ()

    def decide(self, stream: str, index: int) -> FrameFate:
        for injector in self.injectors:
            fate = injector.decide(self.seed, stream, index)
            if fate is not None:
                return fate
        return PASS

    def plan_digest(self) -> str:
        """Content address of the plan (test/provenance labeling)."""
        return stable_digest(
            {"name": self.name, "seed": self.seed,
             "injectors": [dict(asdict(injector),
                                kind=injector.kind)
                           for injector in self.injectors]},
            length=12)


def netchaos_plan(name: str, seed: int = 0) -> ChaosPlan:
    """The named wire-fault catalogue (pure).

    ``passthrough`` is the control; ``hostile`` composes every family
    at once — the plan the sock-smoke CI job runs under.
    """
    catalogue: Dict[str, Tuple[Any, ...]] = {
        "passthrough": (),
        "drop": (FrameDrop(rate=0.08),),
        "reorder": (FrameDelay(rate=0.15, depth=3),),
        "duplicate": (FrameDuplicate(rate=0.12),),
        "truncate": (FrameTruncate(rate=0.04, keep=0.5),),
        "reset": (ConnectionReset(rate=0.04),),
        "partition": (Partition(start=4, length=6),),
        "hostile": (FrameTruncate(rate=0.01, keep=0.6),
                    ConnectionReset(rate=0.02),
                    FrameDrop(rate=0.04),
                    FrameDelay(rate=0.08, depth=2),
                    FrameDuplicate(rate=0.05)),
    }
    if name not in catalogue:
        known = ", ".join(sorted(catalogue))
        raise KeyError(f"unknown netchaos plan {name!r} (known: {known})")
    return ChaosPlan(name=name, seed=seed, injectors=catalogue[name])


def netchaos_plan_names() -> List[str]:
    """Every named plan, sorted (pure)."""
    return ["drop", "duplicate", "hostile", "partition", "passthrough",
            "reorder", "reset", "truncate"]


# ---------------------------------------------------------------------------
# the pure mangle engine
# ---------------------------------------------------------------------------

Held = Tuple[Tuple[int, bytes], ...]


def mangle_step(plan: ChaosPlan, stream: str, index: int, frame: bytes,
                held: Held) -> Tuple[List[Action], Held, bool]:
    """One frame through *plan*: ``(actions, held', closed)``.

    *held* threads the delayed-frame buffer between calls (entries are
    ``(due_index, data)``).  A pure state-transition function — the
    proxy below and :func:`mangle_stream` are both thin drivers over
    it, so unit tests certify exactly what the wire applies.
    """
    fate = plan.decide(stream, index)
    actions: List[Action] = []
    pending: List[Tuple[int, bytes]] = list(held)
    if fate.drop:
        pass
    elif fate.truncate_keep is not None:
        keep = int(len(frame) * fate.truncate_keep)
        if keep > 0:
            actions.append(("send", frame[:keep]))
    elif fate.hold > 0:
        pending.append((index + fate.hold, frame))
    else:
        actions.append(("send", frame))
        if fate.duplicate:
            actions.append(("send", frame))
    ready = [entry for entry in pending if entry[0] <= index]
    pending = [entry for entry in pending if entry[0] > index]
    for _due, data in ready:
        actions.append(("send", data))
    if fate.reset:
        actions.append(("reset", b""))
        return actions, (), True
    return actions, tuple(pending), False


def flush_held(held: Held) -> List[Action]:
    """End-of-stream: deliver whatever is still delayed, in order."""
    return [("send", data) for _due, data in sorted(held)]


def mangle_stream(plan: ChaosPlan, stream: str,
                  frames: List[bytes]) -> List[Action]:
    """A whole frame sequence through *plan* (pure; test harness).

    The reference semantics for what :class:`ChaosProxy` does to a
    live connection — byte-for-byte, since both drive
    :func:`mangle_step`.
    """
    actions: List[Action] = []
    held: Held = ()
    for index, frame in enumerate(frames):
        step_actions, held, closed = mangle_step(plan, stream, index,
                                                 frame, held)
        actions.extend(step_actions)
        if closed:
            return actions
    actions.extend(flush_held(held))
    return actions


# ---------------------------------------------------------------------------
# the impure shell: a real TCP proxy applying the plan
# ---------------------------------------------------------------------------

def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly *count* bytes, or None on EOF/error."""
    chunks: List[bytes] = []
    remaining = count
    while remaining > 0:
        try:
            chunk = sock.recv(remaining)
        except OSError:
            return None
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _read_wire_frame(sock: socket.socket) -> Optional[bytes]:
    """One raw frame (prefix included) off *sock*, or None."""
    prefix = _recv_exact(sock, LENGTH_BYTES)
    if prefix is None:
        return None
    length = int.from_bytes(prefix, "big")
    if length == 0 or length > MAX_FRAME_BYTES:
        return None                  # not our protocol: drop the pump
    payload = _recv_exact(sock, length)
    if payload is None:
        return None
    return prefix + payload


def _abort(sock: socket.socket) -> None:
    """Close with RST (SO_LINGER 0), the abrupt way."""
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0))
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


class ChaosProxy:
    """A frame-aware TCP proxy between workers and a coordinator.

    Workers dial the proxy; each accepted connection gets its own
    upstream dial and two pump threads (``c2s`` and ``s2c``), each
    keyed as ``{direction}/{connection_ordinal}`` so the plan's pure
    decisions stay reproducible per stream.  The proxy never invents
    bytes: every byte it forwards came off one side's wire, in frame
    units, mangled only as :func:`mangle_step` directs.
    """

    def __init__(self, upstream_host: str, upstream_port: int,
                 plan: ChaosPlan, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.upstream = (upstream_host, upstream_port)
        self.plan = plan
        self._lock = threading.Lock()
        self.counts: Dict[str, int] = {
            "connections": 0, "frames": 0, "sends": 0, "resets": 0}
        self._closed = False
        self._threads: List[threading.Thread] = []
        self._listener = socket.socket(socket.AF_INET,
                                       socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET,
                                  socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(32)
        self.host, self.port = self._listener.getsockname()[:2]

    def start(self) -> "ChaosProxy":
        thread = threading.Thread(target=self._accept_loop, daemon=True)
        thread.start()
        self._threads.append(thread)
        return self

    def stop(self) -> None:
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass

    def _count(self, key: str, amount: int = 1) -> None:
        with self._lock:
            self.counts[key] = self.counts.get(key, 0) + amount

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                client, _address = self._listener.accept()
            except OSError:
                return
            with self._lock:
                ordinal = self.counts["connections"]
                self.counts["connections"] += 1
            try:
                upstream = dial(*self.upstream, attempts=20)
            except OSError:
                _abort(client)
                continue
            for direction, src, dst in (("c2s", client, upstream),
                                        ("s2c", upstream, client)):
                thread = threading.Thread(
                    target=self._pump,
                    args=(f"{direction}/{ordinal}", src, dst),
                    daemon=True)
                thread.start()
                self._threads.append(thread)

    def _pump(self, stream: str, src: socket.socket,
              dst: socket.socket) -> None:
        held: Held = ()
        index = 0
        while not self._closed:
            frame = _read_wire_frame(src)
            if frame is None:
                break
            self._count("frames")
            actions, held, closed = mangle_step(self.plan, stream,
                                                index, frame, held)
            index += 1
            if not self._apply(actions, src, dst):
                return
            if closed:
                return
        # Clean EOF (or junk): flush delays, half-close downstream so
        # the endpoint sees the same end the source produced.
        self._apply(flush_held(held), src, dst)
        try:
            dst.shutdown(socket.SHUT_WR)
        except OSError:
            pass

    def _apply(self, actions: List[Action], src: socket.socket,
               dst: socket.socket) -> bool:
        for op, data in actions:
            if op == "send":
                try:
                    dst.sendall(data)
                except OSError:
                    return False
                self._count("sends")
            else:
                self._count("resets")
                _abort(dst)
                _abort(src)
                return False
        return True
