"""Shard planning: how each experiment's work splits into units.

Three families of parallelism, all content-preserving:

* **corpus / Alexa generation** shard by record-index range — safe
  because generation is record-addressed (each record draws from its
  own derived RNG stream);
* **hourly scans** shard by contiguous target range (all vantages
  inside one shard); every shard rebuilds the same deterministic
  world, so all shards share one outage schedule, and probes are pure
  functions of ``(vantage, request, now)``.  Target ranges — not
  vantages — are the split axis because response *signing* is
  per-target: all six vantages reuse one signed response, and a
  vantage split would redo that work sixfold;
* **Alexa availability** (Figure 4) shards by vantage.

Plans depend only on the experiment config — never on the worker
count — so cache keys are stable and a ``workers=8`` run reuses the
shards a serial run produced.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..canon import split_ranges
from ..scanner.io import record_from_dict
from ..simnet.vantage import VANTAGE_POINTS
from .configs import (
    AlexaRunConfig,
    ConsistencyRunConfig,
    CorpusRunConfig,
    OutageImpactConfig,
    ScanCampaignConfig,
)
from .executor import ShardSpec

_RUNNERS = "repro.runtime.runners"


def campaign_window(config: ScanCampaignConfig) -> "tuple[int, int]":
    """The campaign's resolved [start, end) scan window."""
    start = config.world.start if config.start is None else config.start
    end = config.world.end if config.end is None else config.end
    return start, end


def scan_shards(config: ScanCampaignConfig) -> List[ShardSpec]:
    """One shard per contiguous target range (all vantages inside)."""
    n_targets = config.world.n_responders * config.world.certs_per_responder
    campaign = config.to_dict()
    return [
        ShardSpec(worker=f"{_RUNNERS}:scan_shard",
                  payload={"campaign": campaign, "lo": lo, "hi": hi},
                  label=f"scan[{lo}:{hi}]")
        for lo, hi in split_ranges(n_targets, config.target_chunks)
    ]


def merge_scan_rows(config: ScanCampaignConfig,
                    outputs: List[List[Dict[str, Any]]]):
    """Merge shard probe rows into the exact serial ``ScanDataset``.

    The serial scanner loop is time-outer, then target, then vantage;
    sorting the union by ``(timestamp, target index, vantage index)``
    reproduces that order byte-for-byte.
    """
    from ..scanner.hourly import ScanDataset
    rows = [row for shard_rows in outputs for row in shard_rows]
    rows.sort(key=lambda row: (row["ts"], row["ti"], row["vi"]))
    start, end = campaign_window(config)
    return ScanDataset(
        records=[record_from_dict(row) for row in rows],
        vantages=tuple(config.vantages or VANTAGE_POINTS),
        interval=config.interval, start=start, end=end,
    )


def corpus_shards(config: CorpusRunConfig) -> List[ShardSpec]:
    """Contiguous record-index ranges of the corpus."""
    return [
        ShardSpec(worker=f"{_RUNNERS}:corpus_shard",
                  payload={"corpus": config.corpus.to_dict(),
                           "lo": lo, "hi": hi},
                  label=f"corpus[{lo}:{hi}]")
        for lo, hi in split_ranges(config.corpus.size, config.shards)
    ]


def alexa_shards(config: AlexaRunConfig) -> List[ShardSpec]:
    """Contiguous rank-sample ranges of the Alexa model."""
    return [
        ShardSpec(worker=f"{_RUNNERS}:alexa_shard",
                  payload={"alexa": config.alexa.to_dict(),
                           "lo": lo, "hi": hi},
                  label=f"alexa[{lo}:{hi}]")
        for lo, hi in split_ranges(config.alexa.size, config.shards)
    ]


def outage_impact_shards(config: OutageImpactConfig) -> List[ShardSpec]:
    """One Figure-4 shard per vantage point."""
    vantages = list(config.vantages or VANTAGE_POINTS)
    return [
        ShardSpec(worker=f"{_RUNNERS}:outage_impact_shard",
                  payload={"world": config.world.to_dict(),
                           "seed": config.seed,
                           "times": list(config.times),
                           "vantage": vantage},
                  label=f"fig4:{vantage}")
        for vantage in vantages
    ]


def consistency_shards(config: ConsistencyRunConfig) -> List[ShardSpec]:
    """The consistency cross-check runs as one shard whose rows carry
    both the Table-1 counts and the Figure-10 deltas — the two
    experiments share one cache entry."""
    return [ShardSpec(worker=f"{_RUNNERS}:consistency_shard",
                      payload=config.to_dict(),
                      label=f"consistency:1/{config.scale}")]


def single_shard(worker_name: str, config, label: str) -> List[ShardSpec]:
    """A one-shard plan for in-process experiments."""
    return [ShardSpec(worker=f"{_RUNNERS}:{worker_name}",
                      payload={"config": config.to_dict()},
                      label=label)]
