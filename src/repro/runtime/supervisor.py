"""Crash-tolerant supervised shard execution.

:class:`repro.runtime.executor.ShardExecutor` assumes a well-behaved
substrate: one raised exception inside ``pool.map`` aborts the whole
run and discards every completed shard, a hung worker hangs the run
forever, and results only reach the artifact cache after the entire
pool returns.  Fine for tests; fatal for a four-month campaign.

:class:`SupervisedExecutor` is the drop-in replacement that survives:

* **streaming persistence** — shards are dispatched over a
  :class:`~repro.runtime.transport.ShardTransport` and each result is
  written to the :class:`~repro.runtime.cache.ArtifactCache` the
  moment it arrives, so a run interrupted by anything (SIGKILL
  included) resumes for free from the cache;
* **per-shard wall-clock timeouts** — a hung worker is killed (pipe
  pool) or its lease reclaimed (job queue), and the shard retried;
* **bounded retries with deterministic classification** — a failed
  attempt is classified via :mod:`repro.faults.classify`:
  ``transient`` faults (and worker crashes/hangs) retry with capped
  exponential backoff, ``permanent``/``poison`` faults quarantine
  immediately;
* **worker loss** — a crashed worker process is detected (pipe EOF or
  an expired lease) and the attempt requeued; the run keeps going;
* **degraded-mode completion** — with ``allow_partial=True`` the run
  finishes with whatever rows survived, and the
  :class:`~repro.runtime.result.RunManifest` records every attempt
  and quarantine so partial results always carry provenance.  Without
  it, :class:`ShardQuarantinedError` is raised *after* all healthy
  shards completed and persisted — the next invocation recomputes
  only the quarantined/missing ones.

The split with the transport layer: this class owns **policy** (retry
budgets, backoff, quarantine, cache persistence, the manifest), the
transport owns **mechanism** (executing attempts and detecting their
deaths).  By default attempts ride the per-host
:class:`~repro.runtime.transport.PipePoolTransport`; pass a
:class:`~repro.runtime.dist.JobQueueTransport` and the identical
policy supervises a multi-host fleet.

Determinism contract: supervision changes scheduling, never content.
Workers stay pure functions of their payloads, results are reordered
back into spec order, and a run that needed three attempts for one
shard — on any transport, at any topology — is byte-identical to an
undisturbed serial run.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..faults.classify import FaultClass, classify_exception
from .cache import ArtifactCache
from .executor import ShardSpec
from .result import RunManifest, ShardAttempt, ShardRecord, ShardState
from .transport import AttemptOutcome, PipePoolTransport, ShardTransport

#: How long one transport poll blocks per supervision tick; bounds
#: hang-detection latency.
_TICK_S = 0.05


class ShardQuarantinedError(RuntimeError):
    """Raised (without ``allow_partial``) when shards were quarantined.

    Every healthy shard has already completed and persisted to the
    cache by the time this raises, so a follow-up invocation only
    recomputes the shards named here.
    """

    def __init__(self, states: List[ShardState]) -> None:
        self.states = states
        details = "; ".join(
            f"{state.label or state.index}: {state.quarantine_reason}"
            for state in states)
        super().__init__(
            f"{len(states)} shard(s) quarantined ({details}); completed "
            f"shards are cached — rerun to recompute only these, or pass "
            f"allow_partial=True for a degraded result")


class _Task:
    """One shard's supervision state inside a single run."""

    __slots__ = ("index", "spec", "key", "attempts", "not_before",
                 "backoff_spent")

    def __init__(self, index: int, spec: ShardSpec, key: str) -> None:
        self.index = index
        self.spec = spec
        self.key = key
        self.attempts: List[ShardAttempt] = []
        #: Earliest wall-clock (perf_counter) instant the next attempt
        #: may start — how backoff is enforced without sleeping.
        self.not_before = 0.0
        #: Total backoff already charged against this shard's
        #: wall-clock budget (the shard-timeout cap).
        self.backoff_spent = 0.0


class SupervisedExecutor:
    """Run shard specs under supervision: stream results into the
    cache, retry transient failures, survive worker loss, quarantine
    the rest.  Interface-compatible with
    :class:`~repro.runtime.executor.ShardExecutor.run`."""

    def __init__(self, workers: int = 1,
                 cache: Optional[ArtifactCache] = None,
                 shard_timeout: Optional[float] = None,
                 max_retries: int = 2,
                 backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 1.0,
                 allow_partial: bool = False,
                 transport: Optional[ShardTransport] = None,
                 lifecycle: Optional[Callable[[str, Dict[str, Any]],
                                              None]] = None) -> None:
        self.workers = max(1, workers)
        self.cache = cache if cache is not None else ArtifactCache(enabled=False)
        self.shard_timeout = shard_timeout
        self.max_retries = max(0, max_retries)
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.allow_partial = allow_partial
        #: An injected transport is shared across run() calls and owned
        #: (closed) by its creator; None means a per-run pipe pool.
        self.transport = transport
        #: Optional telemetry hook: called with (state, info) at every
        #: dispatch/settle.  Observation only — never content.
        self.lifecycle = lifecycle
        #: Accumulated across run() calls — one entry per spec, in
        #: global spec order; the api layer wraps them in a RunManifest.
        self.manifest_shards: List[ShardState] = []
        #: Dispatch tickets are unique across the executor's lifetime,
        #: so a late outcome from a superseded attempt can never be
        #: credited to a newer one.
        self._next_ticket = 0

    # -- retry policy --------------------------------------------------

    def _backoff_s(self, attempt: int, spent_s: float = 0.0) -> float:
        """Deterministic capped exponential backoff before retry
        *attempt* (the schedule is a pure function of the attempt
        number; only the wall clock feels it).

        With a shard timeout configured, the delay is additionally
        capped at the remaining shard-timeout budget (*spent_s* is the
        backoff already charged), so a transient-retry loop can never
        outlive the shard deadline it is nominally racing.
        """
        delay = min(self.backoff_cap_s,
                    self.backoff_base_s * (2 ** max(0, attempt - 1)))
        if self.shard_timeout is not None:
            delay = min(delay, max(0.0, self.shard_timeout - spent_s))
        return delay

    def _dispose(self, task: _Task, attempt: ShardAttempt,
                 fault_class: FaultClass) -> Tuple[bool, str]:
        """Decide a failed attempt's fate: ``(retry?, reason)``.

        Transient faults retry while budget remains; crashes and hangs
        are transient-with-suspicion — retried, but quarantined as
        *poison* once the budget runs out, because a shard that keeps
        killing workers endangers the pool.  Permanent/poison faults
        quarantine immediately.
        """
        task.attempts.append(attempt)
        if fault_class is FaultClass.TRANSIENT:
            if len(task.attempts) <= self.max_retries:
                return True, ""
            if attempt.outcome in ("crash", "hang"):
                return False, (f"poison: {attempt.outcome} x"
                               f"{len(task.attempts)} ({attempt.error})")
            return False, (f"transient retries exhausted after "
                           f"{len(task.attempts)} attempts "
                           f"({attempt.error})")
        return False, f"{fault_class.value}: {attempt.error}"

    # -- telemetry -----------------------------------------------------

    def _emit(self, state: str, task: _Task, owner: str = "",
              detail: str = "") -> None:
        if self.lifecycle is None:
            return
        self.lifecycle(state, {
            "shard": task.spec.label or str(task.index),
            "worker": owner,
            "attempt": len(task.attempts),
            "detail": detail,
        })

    # -- the supervision loop ------------------------------------------

    def run(self, specs: List[ShardSpec]
            ) -> Tuple[List[List[Dict[str, Any]]], List[ShardRecord]]:
        """Execute *specs*; returns (per-spec rows, provenance records).

        Output order always matches spec order.  Quarantined shards
        yield empty row lists (and a manifest entry saying why); with
        ``allow_partial=False`` a :class:`ShardQuarantinedError` is
        raised once everything else has completed and persisted.
        """
        offset = len(self.manifest_shards)
        outputs: List[Optional[List[Dict[str, Any]]]] = [None] * len(specs)
        records: List[Optional[ShardRecord]] = [None] * len(specs)
        states: List[Optional[ShardState]] = [None] * len(specs)

        pending: List[_Task] = []
        for index, spec in enumerate(specs):
            key = spec.key() if self.cache.enabled else ""
            cached = self.cache.load(key) if key else None
            if cached is not None:
                outputs[index] = cached
                records[index] = ShardRecord(
                    index=index, label=spec.label, key=key, cached=True,
                    elapsed_ms=0.0, rows=len(cached))
                states[index] = ShardState(
                    index=offset + index, label=spec.label, key=key,
                    outcome="cached", rows=len(cached))
            else:
                pending.append(_Task(index, spec, key))

        if pending:
            self._supervise(pending, outputs, records, states, offset)

        self.manifest_shards.extend(
            state for state in states if state is not None)
        quarantined = [state for state in states
                       if state is not None and state.outcome == "quarantined"]
        if quarantined and not self.allow_partial:
            raise ShardQuarantinedError(quarantined)
        return [rows if rows is not None else [] for rows in outputs], \
               [record for record in records if record is not None]

    def _supervise(self, pending: List[_Task],
                   outputs: List[Optional[List[Dict[str, Any]]]],
                   records: List[Optional[ShardRecord]],
                   states: List[Optional[ShardState]],
                   offset: int) -> None:
        transport = self.transport
        owns_transport = transport is None
        if transport is None:
            transport = PipePoolTransport(self.workers,
                                          self.shard_timeout)

        ready: Deque[_Task] = deque(pending)
        #: Tasks sitting out a backoff window, ordered by eligibility.
        waiting: List[_Task] = []
        #: ticket -> task, for every attempt the transport carries.
        inflight: Dict[int, _Task] = {}
        live = len(pending)  # tasks not yet succeeded or quarantined

        def settle_success(task: _Task, rows: List[Dict[str, Any]],
                           elapsed_ms: float, owner: str) -> None:
            task.attempts.append(ShardAttempt(
                attempt=len(task.attempts) + 1, outcome="ok",
                elapsed_ms=elapsed_ms))
            # Persist *now* — this is the crash-tolerance linchpin: an
            # interruption one instant later already finds this shard
            # in the cache.
            if task.key:
                self.cache.store(task.key, task.spec.worker, rows)
            outputs[task.index] = rows
            records[task.index] = ShardRecord(
                index=task.index, label=task.spec.label, key=task.key,
                cached=False, elapsed_ms=elapsed_ms, rows=len(rows))
            states[task.index] = ShardState(
                index=offset + task.index, label=task.spec.label,
                key=task.key, outcome="computed", rows=len(rows),
                attempts=task.attempts)
            self._emit("computed", task, owner)

        def settle_failure(task: _Task, outcome: str, type_name: str,
                           message: str, elapsed_ms: float,
                           owner: str) -> None:
            nonlocal live
            if outcome == "error":
                fault_class = classify_exception(type_name)
                error = f"{type_name}: {message}" if message else type_name
            else:  # crash / hang are substrate faults: retry-worthy
                fault_class = FaultClass.TRANSIENT
                error = message
            attempt = ShardAttempt(
                attempt=len(task.attempts) + 1, outcome=outcome,
                fault_class=fault_class.value, error=error,
                elapsed_ms=elapsed_ms)
            retry, reason = self._dispose(task, attempt, fault_class)
            if retry:
                delay = self._backoff_s(len(task.attempts),
                                        task.backoff_spent)
                task.backoff_spent += delay
                task.not_before = time.perf_counter() + delay
                waiting.append(task)
                self._emit("retried", task, owner, detail=error)
            else:
                records[task.index] = ShardRecord(
                    index=task.index, label=task.spec.label, key=task.key,
                    cached=False,
                    elapsed_ms=sum(a.elapsed_ms for a in task.attempts),
                    rows=0)
                states[task.index] = ShardState(
                    index=offset + task.index, label=task.spec.label,
                    key=task.key, outcome="quarantined",
                    attempts=task.attempts, quarantine_reason=reason)
                live -= 1
                self._emit("quarantined", task, owner, detail=reason)

        try:
            while live > 0:
                now = time.perf_counter()
                # Backoff windows that have elapsed re-enter the queue.
                still_waiting = [t for t in waiting if t.not_before > now]
                for task in waiting:
                    if task.not_before <= now:
                        ready.append(task)
                waiting[:] = still_waiting

                while ready and transport.slots() > 0:
                    task = ready.popleft()
                    ticket = self._next_ticket
                    self._next_ticket += 1
                    inflight[ticket] = task
                    transport.dispatch(ticket, task.spec.worker,
                                       task.spec.payload, task.key,
                                       task.spec.label)
                    self._emit("dispatched", task)

                if not inflight and not ready and not waiting:
                    break

                # One bounded tick: collect whatever completed.  With
                # nothing in flight this is the backoff-drain idle wait
                # (both transports block rather than spin).
                for outcome in transport.poll(_TICK_S):
                    task = inflight.pop(outcome.ticket, None)
                    if task is None:
                        continue  # superseded attempt; content-inert
                    if outcome.outcome == "ok":
                        settle_success(task, outcome.rows or [],
                                       outcome.elapsed_ms, outcome.owner)
                        live -= 1
                    else:
                        settle_failure(task, outcome.outcome,
                                       outcome.type_name, outcome.message,
                                       outcome.elapsed_ms, outcome.owner)
        finally:
            if owns_transport:
                transport.close()


#: Re-exported so existing imports keep working; the implementation
#: moved to :mod:`repro.runtime.transport` with the pipe pool.
__all__ = ["ShardQuarantinedError", "SupervisedExecutor"]
