"""Crash-tolerant supervised shard execution.

:class:`repro.runtime.executor.ShardExecutor` assumes a well-behaved
substrate: one raised exception inside ``pool.map`` aborts the whole
run and discards every completed shard, a hung worker hangs the run
forever, and results only reach the artifact cache after the entire
pool returns.  Fine for tests; fatal for a four-month campaign.

:class:`SupervisedExecutor` is the drop-in replacement that survives:

* **streaming persistence** — shards are dispatched to a pool of
  supervised worker processes and each result is written to the
  :class:`~repro.runtime.cache.ArtifactCache` the moment it arrives,
  so a run interrupted by anything (SIGKILL included) resumes for
  free from the cache;
* **per-shard wall-clock timeouts** — a hung worker is killed,
  restarted, and the shard retried;
* **bounded retries with deterministic classification** — a failed
  attempt is classified via :mod:`repro.faults.classify`:
  ``transient`` faults (and worker crashes/hangs) retry with capped
  exponential backoff, ``permanent``/``poison`` faults quarantine
  immediately;
* **worker restarts** — a crashed worker process (``os._exit``,
  OOM-kill, segfault) is detected through its pipe's EOF and replaced;
  the run keeps going;
* **degraded-mode completion** — with ``allow_partial=True`` the run
  finishes with whatever rows survived, and the
  :class:`~repro.runtime.result.RunManifest` records every attempt
  and quarantine so partial results always carry provenance.  Without
  it, :class:`ShardQuarantinedError` is raised *after* all healthy
  shards completed and persisted — the next invocation recomputes
  only the quarantined/missing ones.

Determinism contract: supervision changes scheduling, never content.
Workers stay pure functions of their payloads, results are reordered
back into spec order, and a run that needed three attempts for one
shard is byte-identical to an undisturbed serial run.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..faults.classify import FaultClass, classify_exception
from .cache import ArtifactCache
from .executor import ShardSpec, resolve_worker
from .result import RunManifest, ShardAttempt, ShardRecord, ShardState

#: How long :func:`multiprocessing.connection.wait` blocks per
#: supervision tick; bounds hang-detection latency.
_TICK_S = 0.05


class ShardQuarantinedError(RuntimeError):
    """Raised (without ``allow_partial``) when shards were quarantined.

    Every healthy shard has already completed and persisted to the
    cache by the time this raises, so a follow-up invocation only
    recomputes the shards named here.
    """

    def __init__(self, states: List[ShardState]) -> None:
        self.states = states
        details = "; ".join(
            f"{state.label or state.index}: {state.quarantine_reason}"
            for state in states)
        super().__init__(
            f"{len(states)} shard(s) quarantined ({details}); completed "
            f"shards are cached — rerun to recompute only these, or pass "
            f"allow_partial=True for a degraded result")


def _worker_loop(conn) -> None:
    """Body of one supervised worker process.

    Receives ``(index, worker, payload)`` tasks over *conn*, answers
    with ``("ok", index, rows, ms)`` or ``("error", index, type_name,
    message, ms)``.  Exits on the ``None`` sentinel — or on EOF, which
    is what a dead parent looks like, so orphaned workers die instead
    of spinning.
    """
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        index, worker, payload = task
        started = time.perf_counter()
        try:
            rows = resolve_worker(worker)(payload)
        except BaseException as exc:  # repro: allow-broad-except -- worker-process firewall; the parent classifies the failure by exception name
            conn.send(("error", index, type(exc).__name__, str(exc),
                       (time.perf_counter() - started) * 1000.0))
        else:
            conn.send(("ok", index, rows,
                       (time.perf_counter() - started) * 1000.0))


class _Task:
    """One shard's supervision state inside a single run."""

    __slots__ = ("index", "spec", "key", "attempts", "not_before")

    def __init__(self, index: int, spec: ShardSpec, key: str) -> None:
        self.index = index
        self.spec = spec
        self.key = key
        self.attempts: List[ShardAttempt] = []
        #: Earliest wall-clock (perf_counter) instant the next attempt
        #: may start — how backoff is enforced without sleeping.
        self.not_before = 0.0


class _Worker:
    """One supervised worker process plus its command pipe."""

    def __init__(self, context) -> None:
        self.conn, child_conn = multiprocessing.Pipe()
        self.process = context.Process(target=_worker_loop,
                                       args=(child_conn,), daemon=True)
        self.process.start()
        # The parent must not hold the child's pipe end open, or EOF
        # (our crash detector) would never be delivered.
        child_conn.close()
        self.task: Optional[_Task] = None
        self.started = 0.0

    def assign(self, task: _Task) -> None:
        self.task = task
        self.started = time.perf_counter()
        self.conn.send((task.index, task.spec.worker, task.spec.payload))

    def shutdown(self) -> None:
        """Best-effort graceful stop, then force-kill."""
        try:
            self.conn.send(None)
        except (OSError, ValueError):
            pass
        self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=1.0)
        self.conn.close()

    def kill(self) -> None:
        self.process.kill()
        self.process.join(timeout=5.0)
        self.conn.close()


class SupervisedExecutor:
    """Run shard specs under supervision: stream results into the
    cache, retry transient failures, restart dead workers, quarantine
    the rest.  Interface-compatible with
    :class:`~repro.runtime.executor.ShardExecutor.run`."""

    def __init__(self, workers: int = 1,
                 cache: Optional[ArtifactCache] = None,
                 shard_timeout: Optional[float] = None,
                 max_retries: int = 2,
                 backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 1.0,
                 allow_partial: bool = False) -> None:
        self.workers = max(1, workers)
        self.cache = cache if cache is not None else ArtifactCache(enabled=False)
        self.shard_timeout = shard_timeout
        self.max_retries = max(0, max_retries)
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.allow_partial = allow_partial
        #: Accumulated across run() calls — one entry per spec, in
        #: global spec order; the api layer wraps them in a RunManifest.
        self.manifest_shards: List[ShardState] = []

    # -- retry policy --------------------------------------------------

    def _backoff_s(self, attempt: int) -> float:
        """Deterministic capped exponential backoff before retry
        *attempt* (the schedule is a pure function of the attempt
        number; only the wall clock feels it)."""
        return min(self.backoff_cap_s,
                   self.backoff_base_s * (2 ** max(0, attempt - 1)))

    def _dispose(self, task: _Task, attempt: ShardAttempt,
                 fault_class: FaultClass) -> Tuple[bool, str]:
        """Decide a failed attempt's fate: ``(retry?, reason)``.

        Transient faults retry while budget remains; crashes and hangs
        are transient-with-suspicion — retried, but quarantined as
        *poison* once the budget runs out, because a shard that keeps
        killing workers endangers the pool.  Permanent/poison faults
        quarantine immediately.
        """
        task.attempts.append(attempt)
        if fault_class is FaultClass.TRANSIENT:
            if len(task.attempts) <= self.max_retries:
                return True, ""
            if attempt.outcome in ("crash", "hang"):
                return False, (f"poison: {attempt.outcome} x"
                               f"{len(task.attempts)} ({attempt.error})")
            return False, (f"transient retries exhausted after "
                           f"{len(task.attempts)} attempts "
                           f"({attempt.error})")
        return False, f"{fault_class.value}: {attempt.error}"

    # -- the supervision loop ------------------------------------------

    def run(self, specs: List[ShardSpec]
            ) -> Tuple[List[List[Dict[str, Any]]], List[ShardRecord]]:
        """Execute *specs*; returns (per-spec rows, provenance records).

        Output order always matches spec order.  Quarantined shards
        yield empty row lists (and a manifest entry saying why); with
        ``allow_partial=False`` a :class:`ShardQuarantinedError` is
        raised once everything else has completed and persisted.
        """
        offset = len(self.manifest_shards)
        outputs: List[Optional[List[Dict[str, Any]]]] = [None] * len(specs)
        records: List[Optional[ShardRecord]] = [None] * len(specs)
        states: List[Optional[ShardState]] = [None] * len(specs)

        pending: List[_Task] = []
        for index, spec in enumerate(specs):
            key = spec.key() if self.cache.enabled else ""
            cached = self.cache.load(key) if key else None
            if cached is not None:
                outputs[index] = cached
                records[index] = ShardRecord(
                    index=index, label=spec.label, key=key, cached=True,
                    elapsed_ms=0.0, rows=len(cached))
                states[index] = ShardState(
                    index=offset + index, label=spec.label, key=key,
                    outcome="cached", rows=len(cached))
            else:
                pending.append(_Task(index, spec, key))

        if pending:
            self._supervise(pending, outputs, records, states, offset)

        self.manifest_shards.extend(
            state for state in states if state is not None)
        quarantined = [state for state in states
                       if state is not None and state.outcome == "quarantined"]
        if quarantined and not self.allow_partial:
            raise ShardQuarantinedError(quarantined)
        return [rows if rows is not None else [] for rows in outputs], \
               [record for record in records if record is not None]

    def _supervise(self, pending: List[_Task],
                   outputs: List[Optional[List[Dict[str, Any]]]],
                   records: List[Optional[ShardRecord]],
                   states: List[Optional[ShardState]],
                   offset: int) -> None:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = multiprocessing.get_context()

        ready: Deque[_Task] = deque(pending)
        #: Tasks sitting out a backoff window, ordered by eligibility.
        waiting: List[_Task] = []
        live = len(pending)  # tasks not yet succeeded or quarantined
        workers: List[_Worker] = [
            _Worker(context)
            for _ in range(min(self.workers, len(pending)))]

        def settle_success(task: _Task, rows: List[Dict[str, Any]],
                           elapsed_ms: float) -> None:
            task.attempts.append(ShardAttempt(
                attempt=len(task.attempts) + 1, outcome="ok",
                elapsed_ms=elapsed_ms))
            # Persist *now* — this is the crash-tolerance linchpin: an
            # interruption one instant later already finds this shard
            # in the cache.
            if task.key:
                self.cache.store(task.key, task.spec.worker, rows)
            outputs[task.index] = rows
            records[task.index] = ShardRecord(
                index=task.index, label=task.spec.label, key=task.key,
                cached=False, elapsed_ms=elapsed_ms, rows=len(rows))
            states[task.index] = ShardState(
                index=offset + task.index, label=task.spec.label,
                key=task.key, outcome="computed", rows=len(rows),
                attempts=task.attempts)

        def settle_failure(task: _Task, outcome: str, type_name: str,
                           message: str, elapsed_ms: float) -> None:
            nonlocal live
            if outcome == "error":
                fault_class = classify_exception(type_name)
                error = f"{type_name}: {message}" if message else type_name
            else:  # crash / hang are substrate faults: retry-worthy
                fault_class = FaultClass.TRANSIENT
                error = message
            attempt = ShardAttempt(
                attempt=len(task.attempts) + 1, outcome=outcome,
                fault_class=fault_class.value, error=error,
                elapsed_ms=elapsed_ms)
            retry, reason = self._dispose(task, attempt, fault_class)
            if retry:
                task.not_before = (time.perf_counter()
                                   + self._backoff_s(len(task.attempts)))
                waiting.append(task)
            else:
                records[task.index] = ShardRecord(
                    index=task.index, label=task.spec.label, key=task.key,
                    cached=False,
                    elapsed_ms=sum(a.elapsed_ms for a in task.attempts),
                    rows=0)
                states[task.index] = ShardState(
                    index=offset + task.index, label=task.spec.label,
                    key=task.key, outcome="quarantined",
                    attempts=task.attempts, quarantine_reason=reason)
                live -= 1

        try:
            while live > 0:
                now = time.perf_counter()
                # Backoff windows that have elapsed re-enter the queue.
                still_waiting = [t for t in waiting if t.not_before > now]
                for task in waiting:
                    if task.not_before <= now:
                        ready.append(task)
                waiting[:] = still_waiting

                for position, worker in enumerate(workers):
                    if worker.task is None and ready:
                        task = ready.popleft()
                        try:
                            worker.assign(task)
                        except (OSError, ValueError):
                            # The idle worker died between shards:
                            # replace it and keep the task queued.
                            worker.kill()
                            workers[position] = _Worker(context)
                            ready.appendleft(task)

                busy = [w for w in workers if w.task is not None]
                if not busy:
                    if ready:  # assignment failed (dead worker); retry
                        continue
                    if not waiting:  # nothing running, queued, or due
                        break
                    # Idle tick: block briefly while backoffs drain
                    # (idle pipes are never readable, so this is a
                    # bounded wait, not a spin).
                    multiprocessing.connection.wait(
                        [w.conn for w in workers], timeout=_TICK_S)
                    continue

                for conn in multiprocessing.connection.wait(
                        [w.conn for w in busy], timeout=_TICK_S):
                    worker = next(w for w in busy if w.conn is conn)
                    task = worker.task
                    if task is None:
                        continue
                    try:
                        message = worker.conn.recv()
                    except (EOFError, OSError):
                        # Worker process died mid-shard: restart it and
                        # treat the attempt as a crash.
                        elapsed = (time.perf_counter() - worker.started) * 1000.0
                        exitcode = worker.process.exitcode
                        worker.kill()
                        workers[workers.index(worker)] = _Worker(context)
                        settle_failure(task, "crash", "",
                                       f"worker exited (code {exitcode})",
                                       elapsed)
                        continue
                    worker.task = None
                    if message[0] == "ok":
                        _tag, _index, rows, elapsed_ms = message
                        settle_success(task, rows, elapsed_ms)
                        live -= 1
                    else:
                        _tag, _index, type_name, text, elapsed_ms = message
                        settle_failure(task, "error", type_name, text,
                                       elapsed_ms)

                if self.shard_timeout is not None:
                    now = time.perf_counter()
                    for position, worker in enumerate(workers):
                        task = worker.task
                        if task is None:
                            continue
                        if now - worker.started <= self.shard_timeout:
                            continue
                        # Hung shard: kill the worker, restart, retry.
                        elapsed = (now - worker.started) * 1000.0
                        worker.kill()
                        workers[position] = _Worker(context)
                        settle_failure(
                            task, "hang", "",
                            f"exceeded shard timeout "
                            f"({self.shard_timeout:g}s)", elapsed)
        finally:
            for worker in workers:
                worker.shutdown()
