"""Shard workers and experiment runners.

Two layers live here:

* **shard workers** — module-level pure functions of a JSON payload,
  referenced by dotted name from :mod:`repro.runtime.sharding` so
  shard specs stay picklable.  Workers rebuild whatever world/config
  they need from the payload (memoized per process) and return plain
  row dicts, which is what the artifact cache stores.
* **experiment runners** — one per registry entry, named in
  ``Experiment.runner``.  A runner plans shards, hands them to the
  :class:`~repro.runtime.api.RunContext`, merges rows, and runs the
  (cheap) analysis stage in the parent process.

Scan-based experiments (Figures 3, 5-9, §5.4, response size) share one
campaign shard family, so a warm cache computed for ``fig3`` also
satisfies ``fig5``-``fig9`` at the same scale.  Table 1 and Figure 10
share the consistency worker the same way.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

from ..canon import stable_digest
from ..scanner.io import record_to_dict
from .configs import (
    AlexaRunConfig,
    AttackWindowConfig,
    ConsistencyRunConfig,
    CorpusRunConfig,
    LatencyConfig,
    OutageImpactConfig,
    ReadinessConfig,
    ScanCampaignConfig,
    SeedConfig,
    WhatIfRunConfig,
)
from .sharding import (
    alexa_shards,
    campaign_window,
    consistency_shards,
    corpus_shards,
    merge_scan_rows,
    outage_impact_shards,
    scan_shards,
    single_shard,
)

#: Per-process world memo: rebuilding a MeasurementWorld dominates
#: small-shard cost, and every shard of one campaign shares a world.
_WORLD_MEMO: Dict[str, Any] = {}


def _world_for(world_dict: Dict[str, Any]):
    from ..datasets.world import MeasurementWorld, WorldConfig
    key = stable_digest(world_dict)
    if key not in _WORLD_MEMO:
        _WORLD_MEMO[key] = MeasurementWorld(WorldConfig.from_dict(world_dict))  # repro: allow-effect[GLOBAL_MUTATION] -- memo keyed by full config digest; same key always maps to the same value
    return _WORLD_MEMO[key]


# ---------------------------------------------------------------------------
# shard workers
# ---------------------------------------------------------------------------

def scan_shard(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Probe one contiguous target range from every vantage.

    Rows are scan-file dicts plus the global target index ``ti`` and
    vantage index ``vi`` that the deterministic merge sorts on.  The
    loop mirrors HourlyScanner.run (time-outer, target, vantage-inner)
    so each target's signed response is generated once and served to
    all vantages from the responder's epoch cache.
    """
    from ..scanner.hourly import HourlyScanner
    from ..simnet.vantage import VANTAGE_POINTS
    config = ScanCampaignConfig.from_dict(payload["campaign"])
    world = _world_for(payload["campaign"]["world"])
    vantages = list(config.vantages or VANTAGE_POINTS)
    lo, hi = payload["lo"], payload["hi"]
    scanner = HourlyScanner(world, vantages=vantages,
                            interval=config.interval)
    targets = world.scan_targets()[lo:hi]
    start, end = campaign_window(config)

    rows: List[Dict[str, Any]] = []
    now = start
    while now < end:
        for ti, target in enumerate(targets, start=lo):
            # Mirror HourlyScanner.run: expired certificates drop out.
            if target.certificate.validity.not_after < now:
                continue
            for vi, vantage in enumerate(vantages):
                row = record_to_dict(scanner.probe(target, vantage, now))
                row["ti"] = ti
                row["vi"] = vi
                rows.append(row)
        now += config.interval
    return rows


def corpus_shard(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Generate one record-index range of the certificate corpus."""
    from ..datasets.corpus import CorpusConfig, generate_records
    config = CorpusConfig.from_dict(payload["corpus"])
    return [record.to_dict()
            for record in generate_records(config, payload["lo"], payload["hi"])]


def alexa_shard(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Generate one rank-sample range of the Alexa model (quota not
    yet applied — that is a global post-pass in the parent)."""
    from ..datasets.alexa import AlexaConfig, generate_domains
    config = AlexaConfig.from_dict(payload["alexa"])
    return [record.to_dict()
            for record in generate_domains(config, payload["lo"], payload["hi"])]


def outage_impact_shard(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Figure 4 for one vantage point."""
    from ..scanner.alexa_scan import AlexaAvailability
    world = _world_for(payload["world"])
    availability = AlexaAvailability(world, seed=payload["seed"])
    vantage = payload["vantage"]
    series = availability.series(payload["times"], vantages=[vantage])
    return [{"vantage": vantage, "ts": ts, "unable": unable}
            for ts, unable in series[vantage]]


def consistency_shard(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """The full CRL↔OCSP cross-check, kind-tagged per row so Table 1
    and Figure 10 both read from this one cache entry."""
    from ..scanner.consistency import (ConsistencyConfig, ConsistencyWorld,
                                       run_consistency_scan)
    report = run_consistency_scan(ConsistencyWorld(ConsistencyConfig(
        scale=payload["scale"], seed=payload["seed"])))
    rows: List[Dict[str, Any]] = []
    for row in report.discrepant_rows():
        rows.append({"kind": "discrepancy", "ocsp_url": row.ocsp_url,
                     "unknown": row.unknown, "good": row.good,
                     "revoked": row.revoked})
    for delta in report.time_deltas:
        rows.append({"kind": "delta", "ocsp_url": delta.ocsp_url,
                     "serial": delta.serial_number, "delta": delta.delta})
    rows.append({
        "kind": "summary",
        "responses_collected": report.responses_collected,
        "serials_checked": report.serials_checked,
        "differing_time_fraction": report.differing_time_fraction(),
        "reasons_differing": report.reasons.differing,
        "reasons_crl_only": report.reasons.crl_only,
    })
    return rows


def browsers_shard(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Table 2: the browser Must-Staple matrix."""
    from ..browser import run_browser_tests
    report = run_browser_tests()
    rows = []
    for row in report.rows:
        cells = row.cells()
        rows.append({
            "browser": row.policy.label,
            "request_ocsp": cells["Request OCSP response"],
            "respect_must_staple": cells["Respect OCSP Must-Staple"],
            "own_ocsp": cells["Send own OCSP request"],
            "compliant": row.policy.label in report.compliant_browsers,
        })
    return rows


def webservers_shard(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Table 3: web server stapling conformance."""
    from ..webserver import (ApacheServer, EXPERIMENTS, IdealServer,
                             NginxServer, run_conformance)
    rows = []
    for server_class in (ApacheServer, NginxServer, IdealServer):
        report = run_conformance(server_class)
        cells = report.as_row()
        rows.append({"software": report.software,
                     **{name: cells[name] for name in EXPERIMENTS}})
    return rows


def history_shard(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Figure 12: adoption over time."""
    from ..core.adoption import figure12_history
    history = figure12_history()
    return [{"month": s.label, "ocsp_pct": s.ocsp_pct,
             "stapling_pct": s.stapling_pct,
             "cloudflare_domains": s.cloudflare_stapling_domains}
            for s in history.snapshots]


def readiness_shard(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Section 8: one row per principal verdict."""
    from ..core.report import assess_readiness
    from ..datasets.corpus import CertificateCorpus, CorpusConfig
    config = ReadinessConfig.from_dict(payload["config"])
    world = _world_for(payload["config"]["world"])
    corpus = CertificateCorpus(CorpusConfig.from_dict(payload["config"]["corpus"]))
    report = assess_readiness(world=world, corpus=corpus,
                              scan_days=config.scan_days,
                              scan_interval=config.scan_interval)
    return [{"principal": verdict.principal, "ready": verdict.ready,
             "findings": list(verdict.findings)}
            for verdict in report.verdicts]


def latency_shard(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Extension: direct vs CDN-fronted lookup latency."""
    from ..core.latency import measure_cdn_latency, measure_direct_latency
    config = LatencyConfig.from_dict(payload["config"])
    world = _world_for(payload["config"]["world"])
    rows = []
    for kind, report in (("direct", measure_direct_latency(world, hours=config.hours)),
                         ("cdn", measure_cdn_latency(world, hours=config.hours))):
        edge = sum(1 for s in report.samples_ms if s <= 20) / len(report.samples_ms)
        rows.append({"kind": kind, "median_ms": report.median_ms,
                     "p90_ms": report.percentile_ms(90),
                     "p99_ms": report.percentile_ms(99),
                     "samples": len(report.samples_ms),
                     "edge_fraction": edge})
    return rows


def _attack_site(validity: int, seed: int, now: int):
    from ..ca import CertificateAuthority, OCSPResponder, ResponderProfile
    from ..crypto import generate_keypair
    from ..simnet import DAY, Network, ocsp_service
    from ..webserver import IdealServer
    from ..x509 import TrustStore
    ca = CertificateAuthority.create_root(
        "ATW CA", "http://ocsp.atw.test", not_before=now - 365 * DAY)
    leaf = ca.issue_leaf("atw.example", generate_keypair(512, rng=seed),
                         not_before=now - DAY, must_staple=True,
                         lifetime=400 * DAY)
    responder = OCSPResponder(
        ca, "http://ocsp.atw.test",
        ResponderProfile(update_interval=None, this_update_margin=0,
                         validity_period=validity),
        epoch_start=now - 7 * DAY)
    network = Network()
    network.bind("ocsp.atw.test",
                 network.add_origin("atw", "us-east",
                                    ocsp_service(responder)))
    server = IdealServer(chain=[leaf, ca.certificate], issuer=ca.certificate,
                         network=network)
    trust = TrustStore([ca.certificate])
    ca.revoke(leaf, now, reason=1)
    return ca, leaf, server, network, trust


def attack_window_shard(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Extension: replay windows per validity + strip/block outcomes."""
    from ..browser import by_label
    from ..core.attacks import AttackerCapabilities, measure_attack_window
    from ..simnet import DAY, HOUR, MEASUREMENT_START
    config = AttackWindowConfig.from_dict(payload["config"])
    now = MEASUREMENT_START
    firefox = by_label()["Firefox 60 (Linux)"]
    chrome = by_label()["Chrome 66 (Linux)"]
    rows = []
    for validity in config.validities:
        ca, leaf, server, network, trust = _attack_site(validity, config.seed, now)
        outcome = measure_attack_window(
            firefox, server, leaf, ca.certificate, trust,
            AttackerCapabilities(replay_staple=True),
            revoked_at=now, horizon=config.horizon, step=HOUR,
            network=network, server_tick=server.tick)
        rows.append({"kind": "replay", "validity": validity,
                     "window": outcome.window,
                     "unbounded": outcome.unbounded})
    strip = AttackerCapabilities(strip_staple=True, block_ocsp=True)
    for label, policy in (("firefox", firefox), ("chrome", chrome)):
        ca, leaf, server, network, trust = _attack_site(DAY, config.seed, now)
        outcome = measure_attack_window(
            policy, server, leaf, ca.certificate, trust, strip,
            revoked_at=now, horizon=config.horizon, step=DAY,
            network=network, server_tick=server.tick)
        rows.append({"kind": "strip-block", "browser": label,
                     "window": outcome.window,
                     "unbounded": outcome.unbounded})
    return rows


def multistaple_shard(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Extension: RFC 6961 vs a revoked intermediate."""
    from ..ca import CertificateAuthority, OCSPResponder, ResponderProfile
    from ..crypto import generate_keypair
    from ..simnet import DAY, HOUR, MEASUREMENT_START, Network, ocsp_service
    from ..tls import ClientHello
    from ..webserver import MultiStapleServer, verify_chain_staples
    now = MEASUREMENT_START
    seed = payload["config"]["seed"]
    root = CertificateAuthority.create_root(
        "MS Root", "http://ocsp.msroot.test", not_before=now - 3 * 365 * DAY)
    intermediate = root.create_intermediate("MS Intermediate",
                                            "http://ocsp.msint.test")
    leaf = intermediate.issue_leaf("multi.example",
                                   generate_keypair(512, rng=seed),
                                   not_before=now - DAY)
    network = Network()
    for name, authority in (("msroot", root), ("msint", intermediate)):
        responder = OCSPResponder(
            authority, f"http://ocsp.{name}.test",
            ResponderProfile(update_interval=None, this_update_margin=HOUR),
            epoch_start=now - 7 * DAY)
        network.bind(f"ocsp.{name}.test",
                     network.add_origin(f"{name}-ocsp", "us-east",
                                        ocsp_service(responder)))
    server = MultiStapleServer(
        chain=[leaf, intermediate.certificate, root.certificate],
        issuer=intermediate.certificate, network=network)
    issuers = [intermediate.certificate, root.certificate, root.certificate]

    server.tick(now)
    v1_hello = ClientHello("multi.example", status_request=True)
    v2_hello = ClientHello("multi.example", status_request=True,
                           status_request_v2=True)
    before_v2 = verify_chain_staples(
        server.handle_connection(v2_hello, now), issuers, now)
    root.revoke(intermediate.certificate, now + HOUR, reason=2)
    server.cache = None
    server._chain_cache.clear()
    server.tick(now + 2 * HOUR)
    after_v1 = server.handle_connection(v1_hello, now + 2 * HOUR)
    after_v2 = verify_chain_staples(
        server.handle_connection(v2_hello, now + 2 * HOUR),
        issuers, now + 2 * HOUR)
    return [
        {"stage": "healthy-v2", "verdicts": list(before_v2)},
        {"stage": "revoked-v1",
         "staple_present": after_v1.stapled_ocsp is not None,
         "chain_staples_present": after_v1.stapled_ocsp_chain is not None},
        {"stage": "revoked-v2", "verdicts": list(after_v2)},
    ]


def alternatives_shard(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Extension: exposure windows across revocation mechanisms."""
    from ..core.alternatives import MechanismParameters, compare_mechanisms
    from ..simnet import DAY
    parameters = MechanismParameters(ocsp_validity=4 * DAY,
                                     short_lived_lifetime=3 * DAY)
    return [{"mechanism": row.mechanism, "benign_window": row.benign_window,
             "attacked_window": row.attacked_window, "notes": row.notes}
            for row in compare_mechanisms(parameters)]


def whatif_shard(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Extension: universal Must-Staple enforcement."""
    from ..core.whatif import WhatIfConfig, run_whatif
    config = WhatIfRunConfig.from_dict(payload["config"])
    result = run_whatif(WhatIfConfig(n_sites=config.n_sites))
    return [{"software": software, "failed": failed, "total": total}
            for software, (failed, total) in sorted(result.by_software.items())]


def apache_patch_shard(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Ablation: Apache stock vs the authors' reported fixes."""
    from ..browser import Verdict, by_label, connect
    from ..ca import CertificateAuthority, OCSPResponder, ResponderProfile
    from ..crypto import generate_keypair
    from ..simnet import (DAY, HOUR, MEASUREMENT_START, FailureKind, Network,
                          ocsp_service,
                          OutageWindow)
    from ..webserver import ApachePatchedServer, ApacheServer, run_conformance
    from ..x509 import TrustStore
    now = MEASUREMENT_START
    seed = payload["config"]["seed"]

    def lockout_hours(server_class) -> int:
        ca = CertificateAuthority.create_root(
            "Patch CA", "http://ocsp.patch.test", not_before=now - 365 * DAY)
        leaf = ca.issue_leaf("patch.example", generate_keypair(512, rng=seed),
                             not_before=now - DAY, must_staple=True)
        responder = OCSPResponder(
            ca, "http://ocsp.patch.test",
            ResponderProfile(update_interval=None, this_update_margin=HOUR,
                             validity_period=DAY),
            epoch_start=now - 7 * DAY)
        network = Network()
        origin = network.add_origin("patch", "us-east",
                                    ocsp_service(responder))
        network.bind("ocsp.patch.test", origin)
        origin.add_outage(OutageWindow(now + 6 * HOUR, now + 12 * HOUR,
                                       kind=FailureKind.TCP))
        server = server_class(chain=[leaf, ca.certificate],
                              issuer=ca.certificate, network=network)
        firefox = by_label()["Firefox 60 (Linux)"]
        trust = TrustStore([ca.certificate])
        locked = 0
        for hour in range(24):
            outcome = connect(firefox, server, "patch.example", trust,
                              now + hour * HOUR)
            if outcome.verdict is not Verdict.ACCEPTED:
                locked += 1
        return locked

    rows = []
    for variant, server_class in (("stock", ApacheServer),
                                  ("patched", ApachePatchedServer)):
        report = run_conformance(server_class)
        for result in report.results:
            rows.append({"kind": "conformance", "variant": variant,
                         "experiment": result.name, "passed": result.passed,
                         "note": result.note})
        rows.append({"kind": "lockout", "variant": variant,
                     "hours": lockout_hours(server_class)})
    return rows


def parser_shard(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Ablation: strict vs lenient DER parsing."""
    from ..asn1 import Reader
    from ..asn1.errors import ASN1Error
    from ..ocsp import OCSPResponse
    garbage = [b"", b"0", b"<html><script>x</script></html>", b"\x30\x82"]

    def parses(body: bytes, lenient: bool) -> bool:
        try:
            OCSPResponse.from_der(body, lenient=lenient)
            return True
        except (ASN1Error, ValueError):
            return False

    rows = [{"kind": "garbage", "body": body.hex(),
             "strict_rejects": not parses(body, False),
             "lenient_rejects": not parses(body, True)}
            for body in garbage]
    ber_integer = b"\x02\x81\x01\x05"  # BER long-form length, not DER
    try:
        Reader(ber_integer).read_integer()
        strict_rejects = False
    except ASN1Error:
        strict_rejects = True
    rows.append({"kind": "ber-integer", "body": ber_integer.hex(),
                 "strict_rejects": strict_rejects,
                 "lenient_value": Reader(ber_integer,
                                         lenient=True).read_integer()})
    return rows


def keysize_shard(payload: Dict[str, Any]) -> List[Dict[str, Any]]:  # repro: allow-effect[WALL_CLOCK] -- timing columns are measurements, not deterministic content
    """Ablation: RSA key size — semantics per size, with costs.

    The timing columns are measurements, not deterministic content;
    cached rows keep the timings of the run that produced them.
    """
    from ..crypto import generate_keypair, is_valid, sign, verify
    rows = []
    for bits in (512, 1024, 2048):
        started = time.perf_counter()
        key = generate_keypair(bits, rng=bits)
        signature = sign(key, b"ocsp response bytes")
        verify(key.public_key, b"ocsp response bytes", signature)
        tamper_rejected = not is_valid(key.public_key, b"tampered bytes",
                                       signature)
        keygen_ms = (time.perf_counter() - started) * 1000
        started = time.perf_counter()
        for _ in range(10):
            sign(key, b"x")
        sign_ms = (time.perf_counter() - started) / 10 * 1000
        rows.append({"bits": bits, "semantics_ok": tamper_rejected,
                     "keygen_ms": round(keygen_ms, 3),
                     "sign_ms": round(sign_ms, 3)})
    return rows


# ---------------------------------------------------------------------------
# shared runner helpers
# ---------------------------------------------------------------------------

def merged_scan(ctx, config: ScanCampaignConfig):
    """Plan, execute, and merge one scan campaign."""
    return merge_scan_rows(config, ctx.run_shards(scan_shards(config)))


def _built_corpus(ctx, config: CorpusRunConfig):
    from ..datasets.corpus import CertificateCorpus, CertificateRecord
    outputs = ctx.run_shards(corpus_shards(config))
    records = [CertificateRecord.from_dict(row)
               for rows in outputs for row in rows]
    return CertificateCorpus.from_records(config.corpus, records)


def _built_alexa(ctx, config: AlexaRunConfig):
    from ..datasets.alexa import AlexaModel, DomainRecord
    outputs = ctx.run_shards(alexa_shards(config))
    records = [DomainRecord.from_dict(row)
               for rows in outputs for row in rows]
    return AlexaModel.from_records(config.alexa, records, quota_applied=False)


def _consistency_rows(ctx, config: ConsistencyRunConfig):
    rows = ctx.run_shards(consistency_shards(config))[0]
    summary = next(row for row in rows if row["kind"] == "summary")
    return rows, summary


# ---------------------------------------------------------------------------
# experiment runners (Experiment.runner entrypoints)
# ---------------------------------------------------------------------------

def run_sec4_deployment(ctx, config: CorpusRunConfig) -> Dict[str, Any]:
    from ..core.adoption import deployment_stats
    corpus = _built_corpus(ctx, config)
    stats = deployment_stats(corpus)
    boost = config.corpus.must_staple_boost
    unboosted = stats.must_staple_fraction / boost
    shares = stats.must_staple_ca_shares()
    rows = [{"metric": "ocsp_fraction", "value": stats.ocsp_fraction},
            {"metric": "must_staple_fraction_unboosted", "value": unboosted}]
    rows += [{"metric": f"must_staple_share[{name}]", "value": share}
             for name, share in shares.items()]
    return {
        "rows": rows,
        "summary": {"ocsp_fraction": stats.ocsp_fraction,
                    "must_staple_fraction_unboosted": unboosted,
                    "records": len(corpus)},
        "artifacts": {"corpus": corpus, "stats": stats},
    }


def run_fig2(ctx, config: AlexaRunConfig) -> Dict[str, Any]:
    from ..core.adoption import figure2_adoption
    alexa = _built_alexa(ctx, config)
    adoption = figure2_adoption(alexa, bin_width=config.bin_width)
    https = adoption.curves["Domains with certificate"]
    ocsp = adoption.curves["Certificates with OCSP responder"]
    rows = [{"rank_bin": bin_start, "https_pct": https_pct, "ocsp_pct": ocsp_pct}
            for (bin_start, https_pct), (_, ocsp_pct) in zip(https, ocsp)]
    return {
        "rows": rows,
        "series": dict(adoption.curves),
        "summary": {
            "https_avg": adoption.average("Domains with certificate"),
            "ocsp_avg": adoption.average("Certificates with OCSP responder"),
        },
        "artifacts": {"alexa": alexa, "adoption": adoption},
    }


def run_fig11(ctx, config: AlexaRunConfig) -> Dict[str, Any]:
    from ..core.adoption import figure11_adoption
    alexa = _built_alexa(ctx, config)
    adoption = figure11_adoption(alexa, bin_width=config.bin_width)
    curve = adoption.curves["OCSP domains that support OCSP Stapling"]
    rows = [{"rank_bin": bin_start, "stapling_pct": pct}
            for bin_start, pct in curve]
    return {
        "rows": rows,
        "series": dict(adoption.curves),
        "summary": {"stapling_avg": adoption.average(
            "OCSP domains that support OCSP Stapling")},
        "artifacts": {"alexa": alexa, "adoption": adoption},
    }


def run_fig3(ctx, config: ScanCampaignConfig) -> Dict[str, Any]:
    from ..core.availability import analyze_availability
    dataset = merged_scan(ctx, config)
    report = analyze_availability(dataset)
    rows = [{"timestamp": ts, "vantage": vantage, "success_pct": pct}
            for vantage, points in report.success_series.items()
            for ts, pct in points]
    return {
        "rows": rows,
        "series": dict(report.success_series),
        "summary": {
            "probes": len(dataset),
            "responders": report.responder_count,
            "failure_rate": dict(report.failure_rate),
            "overall_failure_rate": report.overall_failure_rate,
            "never_successful_anywhere": len(report.never_successful_anywhere),
            "outage_fraction": report.outage_fraction,
        },
        "artifacts": {"dataset": dataset, "report": report},
    }


def run_fig4(ctx, config: OutageImpactConfig) -> Dict[str, Any]:
    outputs = ctx.run_shards(outage_impact_shards(config))
    rows = [row for shard_rows in outputs for row in shard_rows]
    series: Dict[str, List[Any]] = {}
    for row in rows:
        series.setdefault(row["vantage"], []).append((row["ts"], row["unable"]))
    return {
        "rows": rows,
        "series": series,
        "summary": {"peak_unable": max((row["unable"] for row in rows),
                                       default=0.0)},
    }


def run_fig5(ctx, config: ScanCampaignConfig) -> Dict[str, Any]:
    from ..core.quality import validity_series
    dataset = merged_scan(ctx, config)
    fig5 = validity_series(dataset)
    rows = [{"timestamp": ts, "error_class": outcome.name, "pct": pct}
            for outcome, points in fig5.series.items()
            for ts, pct in points]
    return {
        "rows": rows,
        "series": {outcome.name: points
                   for outcome, points in fig5.series.items()},
        "summary": {"probes": len(dataset)},
        "artifacts": {"dataset": dataset, "validity_series": fig5},
    }


def _cdf_runner(ctx, config: ScanCampaignConfig, cdf_name: str) -> Dict[str, Any]:
    from ..core import quality
    dataset = merged_scan(ctx, config)
    qualities = quality.responder_quality(dataset)
    cdf = getattr(quality, cdf_name)(qualities)
    rows = [{"value": value, "cdf": fraction} for value, fraction in cdf]
    return {
        "rows": rows,
        "series": {cdf_name: list(cdf)},
        "summary": {"responders": len(qualities)},
        "artifacts": {"dataset": dataset, "qualities": qualities},
    }


def run_fig6(ctx, config: ScanCampaignConfig) -> Dict[str, Any]:
    return _cdf_runner(ctx, config, "certificates_cdf")


def run_fig7(ctx, config: ScanCampaignConfig) -> Dict[str, Any]:
    return _cdf_runner(ctx, config, "serials_cdf")


def run_fig8(ctx, config: ScanCampaignConfig) -> Dict[str, Any]:
    return _cdf_runner(ctx, config, "validity_cdf")


def run_fig9(ctx, config: ScanCampaignConfig) -> Dict[str, Any]:
    return _cdf_runner(ctx, config, "margin_cdf")


def run_tbl1(ctx, config: ConsistencyRunConfig) -> Dict[str, Any]:
    rows, summary = _consistency_rows(ctx, config)
    discrepancies = [row for row in rows if row["kind"] == "discrepancy"]
    return {
        "rows": discrepancies,
        "summary": {
            "responses_collected": summary["responses_collected"],
            "serials_checked": summary["serials_checked"],
            "discrepant_responders": len(discrepancies),
        },
    }


def run_fig10(ctx, config: ConsistencyRunConfig) -> Dict[str, Any]:
    rows, summary = _consistency_rows(ctx, config)
    deltas = [row for row in rows if row["kind"] == "delta"]
    nonzero = [row["delta"] for row in deltas if row["delta"] != 0]
    return {
        "rows": deltas,
        "series": {"nonzero_deltas": sorted(nonzero)},
        "summary": {
            "differing_time_fraction": summary["differing_time_fraction"],
            "max_delta": max(nonzero, default=0),
            "min_delta": min(nonzero, default=0),
        },
    }


def run_tbl2(ctx, config: SeedConfig) -> Dict[str, Any]:
    rows = ctx.run_shards(single_shard("browsers_shard", config, "tbl2"))[0]
    return {
        "rows": rows,
        "summary": {"compliant": [row["browser"] for row in rows
                                  if row["compliant"]]},
    }


def run_tbl3(ctx, config: SeedConfig) -> Dict[str, Any]:
    rows = ctx.run_shards(single_shard("webservers_shard", config, "tbl3"))[0]
    return {"rows": rows, "summary": {"servers": len(rows)}}


def run_fig12(ctx, config: SeedConfig) -> Dict[str, Any]:
    rows = ctx.run_shards(single_shard("history_shard", config, "fig12"))[0]
    return {
        "rows": rows,
        "series": {
            "ocsp_pct": [(row["month"], row["ocsp_pct"]) for row in rows],
            "stapling_pct": [(row["month"], row["stapling_pct"])
                             for row in rows],
        },
        "summary": {"months": len(rows)},
    }


def run_sec5_freshness(ctx, config: ScanCampaignConfig) -> Dict[str, Any]:
    from ..core.quality import quality_headlines
    dataset = merged_scan(ctx, config)
    headlines = quality_headlines(dataset)
    summary = {
        "responders": headlines.responders,
        "not_on_demand": headlines.not_on_demand,
        "non_overlapping": headlines.non_overlapping,
        "zero_margin": headlines.zero_margin,
        "blank_next_update": headlines.blank_next_update,
    }
    return {
        "rows": [dict(metric=key, value=value)
                 for key, value in summary.items()],
        "summary": summary,
        "artifacts": {"dataset": dataset, "headlines": headlines},
    }


def run_sec8_readiness(ctx, config: ReadinessConfig) -> Dict[str, Any]:
    from ..core.report import PrincipalVerdict, ReadinessReport
    rows = ctx.run_shards(single_shard("readiness_shard", config,
                                       "readiness"))[0]
    report = ReadinessReport(verdicts=[
        PrincipalVerdict(principal=row["principal"], ready=row["ready"],
                         findings=list(row["findings"]))
        for row in rows])
    return {
        "rows": rows,
        "summary": {"web_is_ready": report.web_is_ready},
        "artifacts": {"report": report},
    }


def run_ext_multistaple(ctx, config: SeedConfig) -> Dict[str, Any]:
    rows = ctx.run_shards(single_shard("multistaple_shard", config,
                                       "multistaple"))[0]
    revoked_v2 = next(row for row in rows if row["stage"] == "revoked-v2")
    return {
        "rows": rows,
        "summary": {"v2_detects_revoked_intermediate":
                    revoked_v2["verdicts"][1] is False},
    }


def run_ext_attack_window(ctx, config: AttackWindowConfig) -> Dict[str, Any]:
    rows = ctx.run_shards(single_shard("attack_window_shard", config,
                                       "attack-window"))[0]
    replay = {row["validity"]: row["window"]
              for row in rows if row["kind"] == "replay"}
    strip = {row["browser"]: row for row in rows
             if row["kind"] == "strip-block"}
    return {
        "rows": rows,
        "summary": {
            "replay_windows": replay,
            "chrome_unbounded": strip["chrome"]["unbounded"],
            "firefox_window": strip["firefox"]["window"],
        },
    }


def run_ext_latency(ctx, config: LatencyConfig) -> Dict[str, Any]:
    rows = ctx.run_shards(single_shard("latency_shard", config, "latency"))[0]
    by_kind = {row["kind"]: row for row in rows}
    return {
        "rows": rows,
        "summary": {
            "direct_median_ms": by_kind["direct"]["median_ms"],
            "cdn_median_ms": by_kind["cdn"]["median_ms"],
            "cdn_edge_fraction": by_kind["cdn"]["edge_fraction"],
        },
    }


def run_ext_alternatives(ctx, config: SeedConfig) -> Dict[str, Any]:
    rows = ctx.run_shards(single_shard("alternatives_shard", config,
                                       "alternatives"))[0]
    return {"rows": rows, "summary": {"mechanisms": len(rows)}}


def run_ext_whatif(ctx, config: WhatIfRunConfig) -> Dict[str, Any]:
    rows = ctx.run_shards(single_shard("whatif_shard", config, "whatif"))[0]
    failed = sum(row["failed"] for row in rows)
    total = sum(row["total"] for row in rows)
    return {
        "rows": rows,
        "summary": {"overall_failure_rate": failed / total if total else 0.0},
    }


def run_ext_response_size(ctx, config: ScanCampaignConfig) -> Dict[str, Any]:
    from ..core.quality import responder_quality, size_by_certificate_count
    dataset = merged_scan(ctx, config)
    qualities = responder_quality(dataset)
    by_count = size_by_certificate_count(qualities)
    rows = [{"certificates": count, "avg_bytes": size}
            for count, size in sorted(by_count.items())]
    return {
        "rows": rows,
        "summary": {"max_avg_bytes": max(by_count.values(), default=0.0)},
        "artifacts": {"dataset": dataset, "qualities": qualities},
    }


def run_abl_apache_patch(ctx, config: SeedConfig) -> Dict[str, Any]:
    rows = ctx.run_shards(single_shard("apache_patch_shard", config,
                                       "apache-patch"))[0]
    lockout = {row["variant"]: row["hours"]
               for row in rows if row["kind"] == "lockout"}
    return {"rows": rows, "summary": {"lockout_hours": lockout}}


def run_abl_parser(ctx, config: SeedConfig) -> Dict[str, Any]:
    rows = ctx.run_shards(single_shard("parser_shard", config, "parser"))[0]
    garbage = [row for row in rows if row["kind"] == "garbage"]
    return {
        "rows": rows,
        "summary": {
            "garbage_bodies": len(garbage),
            "strict_rejects_all": all(row["strict_rejects"] for row in garbage),
        },
    }


def run_abl_keysize(ctx, config: SeedConfig) -> Dict[str, Any]:
    rows = ctx.run_shards(single_shard("keysize_shard", config, "keysize"))[0]
    return {
        "rows": rows,
        "summary": {"semantics_ok": all(row["semantics_ok"] for row in rows)},
    }


def run_chaos_availability(ctx, config) -> Dict[str, Any]:
    """Chaos extension of Figures 3/4 (lives in repro.faults; re-exported
    here so the registry's ``repro.runtime.runners:`` convention holds)."""
    from ..faults.experiments import run_chaos_availability as impl
    return impl(ctx, config)


def run_chaos_client_outcomes(ctx, config) -> Dict[str, Any]:
    """Chaos scenario × client-policy grid (impl in repro.faults)."""
    from ..faults.experiments import run_chaos_client_outcomes as impl
    return impl(ctx, config)


def run_hostile_corpus(ctx, config) -> Dict[str, Any]:
    """Mutation-survival matrix (impl in repro.hostile)."""
    from ..hostile.experiments import run_hostile_corpus as impl
    return impl(ctx, config)


def run_serve_loadtest(ctx, config) -> Dict[str, Any]:
    """Daemon byte-identity + warm-cache load (impl in repro.serve)."""
    from ..serve.experiments import run_serve_loadtest as impl
    return impl(ctx, config)


def run_monitor_convergence(ctx, config) -> Dict[str, Any]:
    """Stream-vs-batch reducer convergence (impl in repro.monitor)."""
    from ..monitor.experiments import run_monitor_convergence as impl
    return impl(ctx, config)
