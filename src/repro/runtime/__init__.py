"""repro.runtime — sharded parallel experiment execution.

The runtime turns every paper artefact into the same three-stage
pipeline: **plan** (split the experiment into content-addressed
shards), **execute** (serially or in a process pool, cache-first), and
**merge** (deterministically, so parallel output is byte-identical to
serial).  :func:`run_experiment` is the single public entrypoint; the
CLI, the benchmarks, and :mod:`repro.core.figures` all sit on it.

For long campaigns, ``run_experiment(..., supervise=True)`` swaps the
plain pool for :class:`SupervisedExecutor`: results stream into the
artifact cache the moment each shard completes, crashed or hung
workers are restarted, transient failures retry with capped backoff,
unrecoverable shards are quarantined, and the result carries a
:class:`RunManifest` recording every attempt.  :mod:`~repro.runtime.
chaos` provides the self-chaos workers that prove this machinery in
tests and CI.
"""

from .api import RunContext, run_experiment
from .cache import (
    CODE_VERSION,
    SCHEMA_VERSION,
    ArtifactCache,
    CacheStats,
    VerifyReport,
    default_cache_dir,
    shard_key,
)
from .configs import (
    AlexaRunConfig,
    AttackWindowConfig,
    ChaosAvailabilityConfig,
    ChaosClientConfig,
    ConsistencyRunConfig,
    CorpusRunConfig,
    HostileCorpusConfig,
    LatencyConfig,
    MonitorConvergenceConfig,
    OutageImpactConfig,
    QueueTuning,
    ReadinessConfig,
    ScanCampaignConfig,
    SeedConfig,
    WhatIfRunConfig,
    default_config,
)
from .dist import (
    JobQueueTransport,
    QueueWorker,
    job_document,
    merge_job_results,
    queue_shards,
    spawn_local_workers,
    stop_workers,
)
from .executor import ShardExecutor, ShardSpec, resolve_worker
from .sock import (
    FrameBuffer,
    SocketTransport,
    SocketWorker,
    connect_backoff,
    parse_address,
    spawn_socket_workers,
)
from .result import (
    ExperimentResult,
    Provenance,
    RunManifest,
    ShardAttempt,
    ShardRecord,
    ShardState,
)
from .supervisor import ShardQuarantinedError, SupervisedExecutor
from .transport import AttemptOutcome, PipePoolTransport, ShardTransport

__all__ = [
    "AlexaRunConfig",
    "ArtifactCache",
    "AttackWindowConfig",
    "AttemptOutcome",
    "CODE_VERSION",
    "CacheStats",
    "ChaosAvailabilityConfig",
    "ChaosClientConfig",
    "ConsistencyRunConfig",
    "CorpusRunConfig",
    "ExperimentResult",
    "FrameBuffer",
    "HostileCorpusConfig",
    "JobQueueTransport",
    "LatencyConfig",
    "MonitorConvergenceConfig",
    "OutageImpactConfig",
    "PipePoolTransport",
    "Provenance",
    "QueueTuning",
    "QueueWorker",
    "ReadinessConfig",
    "RunContext",
    "RunManifest",
    "SCHEMA_VERSION",
    "ScanCampaignConfig",
    "SeedConfig",
    "ShardAttempt",
    "ShardExecutor",
    "ShardQuarantinedError",
    "ShardRecord",
    "ShardSpec",
    "ShardState",
    "ShardTransport",
    "SocketTransport",
    "SocketWorker",
    "SupervisedExecutor",
    "VerifyReport",
    "WhatIfRunConfig",
    "connect_backoff",
    "default_cache_dir",
    "default_config",
    "job_document",
    "merge_job_results",
    "parse_address",
    "queue_shards",
    "resolve_worker",
    "run_experiment",
    "shard_key",
    "spawn_local_workers",
    "spawn_socket_workers",
    "stop_workers",
]
