"""repro.runtime — sharded parallel experiment execution.

The runtime turns every paper artefact into the same three-stage
pipeline: **plan** (split the experiment into content-addressed
shards), **execute** (serially or in a process pool, cache-first), and
**merge** (deterministically, so parallel output is byte-identical to
serial).  :func:`run_experiment` is the single public entrypoint; the
CLI, the benchmarks, and :mod:`repro.core.figures` all sit on it.
"""

from .api import RunContext, run_experiment
from .cache import CODE_VERSION, SCHEMA_VERSION, ArtifactCache, default_cache_dir, shard_key
from .configs import (
    AlexaRunConfig,
    AttackWindowConfig,
    ChaosAvailabilityConfig,
    ChaosClientConfig,
    ConsistencyRunConfig,
    CorpusRunConfig,
    LatencyConfig,
    OutageImpactConfig,
    ReadinessConfig,
    ScanCampaignConfig,
    SeedConfig,
    WhatIfRunConfig,
    default_config,
)
from .executor import ShardExecutor, ShardSpec, resolve_worker
from .result import ExperimentResult, Provenance, ShardRecord

__all__ = [
    "AlexaRunConfig",
    "ArtifactCache",
    "AttackWindowConfig",
    "CODE_VERSION",
    "ChaosAvailabilityConfig",
    "ChaosClientConfig",
    "ConsistencyRunConfig",
    "CorpusRunConfig",
    "ExperimentResult",
    "LatencyConfig",
    "OutageImpactConfig",
    "Provenance",
    "ReadinessConfig",
    "RunContext",
    "SCHEMA_VERSION",
    "ScanCampaignConfig",
    "SeedConfig",
    "ShardExecutor",
    "ShardRecord",
    "ShardSpec",
    "WhatIfRunConfig",
    "default_cache_dir",
    "default_config",
    "resolve_worker",
    "run_experiment",
    "shard_key",
]
