"""Socket shard transport: the supervised runtime over plain TCP.

The job queue (PR 9, :mod:`repro.runtime.dist`) took the runtime
multi-node but still assumed a shared filesystem.  This module drops
that last requirement: the coordinator (:class:`SocketTransport`)
listens on a TCP port, ``repro worker --connect host:port`` workers
(:class:`SocketWorker`) dial in, and a length-prefixed framed protocol
carries *exactly the same documents* the queue moves as files —
:func:`~repro.runtime.dist.job_document` out,
digest-checked result envelopes back, arbitrated by
:func:`~repro.runtime.dist.merge_job_results` verbatim.  Supervisor
policy (retries, backoff, quarantine, manifests, cache-first
planning) is untouched; only the wire changed.

Frame grammar (DESIGN.md §10)::

    frame   := length payload
    length  := 4-byte big-endian byte count of payload
    payload := JSON {"frame": KIND, "v": 1, "body": {...},
                     "digest": stable_digest(body)}
    KIND    := HELLO | JOB | HEARTBEAT | RESULT | RETRACT

Every frame carries its body's digest, so a flipped or truncated
payload is detected at the frame layer — a torn stream degrades to a
*typed* protocol error (:class:`OversizedFrameError`,
:class:`TruncatedFrameError`, :class:`JunkFrameError`) that drops the
connection, never the campaign.

The protocol, state by state:

* **connect** — a worker dials in (with capped deterministic backoff
  while the coordinator is still booting) and sends ``HELLO`` naming
  itself and any claim it still holds from a previous connection.
* **assign** — the coordinator sends ``JOB`` (a verbatim
  ``job_document``) to an idle worker and starts a lease on its own
  clock; the worker's heartbeat thread renews it with ``HEARTBEAT``
  frames, and — exactly like the queue — stops renewing once the
  shard's wall-clock budget is spent, so a *hang* expires like a
  *death*.
* **reclaim** — an expired lease becomes a ``crash``/``hang``
  attempt outcome (:func:`~repro.runtime.dist.classify_expiry`), the
  worker gets ``RETRACT``, and the supervisor's existing
  ``classify_exception`` policy decides retry vs. quarantine.
* **resume** — a worker that lost its connection mid-compute finishes
  the shard, redials, re-``HELLO``\\ s with the claim, and resends the
  result.  If the lease survived, the attempt is credited; if the job
  was already reclaimed and recomputed, the duplicate envelope is
  dropped by ``merge_job_results`` — and because workers are pure
  functions of their payloads, rival results carried identical rows
  anyway.  Rows also land in the content-addressed artifact cache
  under the single-host keys, so a dead coordinator's successor
  resumes from cache exactly as the queue does.

Leases here live on :func:`time.perf_counter`: unlike the filesystem
queue, deadlines are never compared across machines — the coordinator
stamps them when frames *arrive* — so no wall clock is needed.  The
worker-side dial/backoff sleeps are this module's one determinism-lint
allowance; like the queue's, they are operational pacing that never
reaches content.
"""

from __future__ import annotations

import json
import os
import selectors
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..canon import stable_digest
from .cache import ArtifactCache
from .dist import (
    DEFAULT_LEASE_S,
    DEFAULT_POLL_S,
    classify_expiry,
    job_document,
    merge_job_results,
    now_s,
)
from .executor import resolve_worker
from .transport import AttemptOutcome, ShardTransport

#: Frame kinds, in protocol order.
FRAME_KINDS = ("HELLO", "JOB", "HEARTBEAT", "RESULT", "RETRACT")
FRAME_VERSION = 1
#: Length-prefix size: 4-byte big-endian payload byte count.
LENGTH_BYTES = 4
#: Hard payload cap — far above any real shard result, low enough that
#: a corrupted length prefix cannot make the coordinator buffer junk.
MAX_FRAME_BYTES = 32 * 1024 * 1024

#: Reconnect backoff bounds (worker dial loop and smoke-tool dials).
BACKOFF_BASE_S = 0.05
BACKOFF_CAP_S = 2.0
#: Dial attempts before a worker gives the fleet up for dead.
DEFAULT_RECONNECT_LIMIT = 8


class ProtocolError(Exception):
    """A peer violated the frame protocol: the connection is dropped,
    the campaign continues."""


class OversizedFrameError(ProtocolError):
    """A length prefix promised more than :data:`MAX_FRAME_BYTES`."""


class TruncatedFrameError(ProtocolError):
    """The stream ended inside a frame (a torn write or a mid-frame
    connection cut)."""


class JunkFrameError(ProtocolError):
    """A complete frame that is not protocol: bad JSON, a digest
    mismatch, an unknown kind, or a kind illegal in this direction."""


# ---------------------------------------------------------------------------
# frame codec (pure)
# ---------------------------------------------------------------------------

def frame_digest(body: Dict[str, Any]) -> str:
    """The integrity digest a frame must carry for *body*."""
    return stable_digest(body, length=16)


def encode_frame(kind: str, body: Dict[str, Any]) -> bytes:
    """One wire frame: length prefix + digest-stamped JSON payload."""
    if kind not in FRAME_KINDS:
        raise JunkFrameError(f"unknown frame kind {kind!r}")
    payload = json.dumps(
        {"frame": kind, "v": FRAME_VERSION, "body": body,
         "digest": frame_digest(body)},
        sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise OversizedFrameError(
            f"{kind} payload is {len(payload)} bytes "
            f"(cap {MAX_FRAME_BYTES})")
    return len(payload).to_bytes(LENGTH_BYTES, "big") + payload


def decode_payload(payload: bytes) -> Tuple[str, Dict[str, Any]]:
    """Parse one frame payload into ``(kind, body)``.

    Anything that is not a digest-correct protocol frame raises
    :class:`JunkFrameError` — corruption and malice are handled by the
    same door.
    """
    try:
        document = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        raise JunkFrameError("payload is not JSON")
    if not isinstance(document, dict):
        raise JunkFrameError("payload is not an object")
    kind = document.get("frame")
    body = document.get("body")
    if kind not in FRAME_KINDS:
        raise JunkFrameError(f"unknown frame kind {kind!r}")
    if not isinstance(body, dict):
        raise JunkFrameError(f"{kind} body is not an object")
    if document.get("digest") != frame_digest(body):
        raise JunkFrameError(f"{kind} digest mismatch")
    return kind, body


class FrameBuffer:
    """Incremental frame decoder over an arbitrary byte stream.

    Feed whatever ``recv`` returned — half a frame, three frames and a
    prefix, one byte — and get back every *complete* frame.  The
    buffer raises the typed protocol errors; the caller's only duty is
    to drop the connection when it does.
    """

    def __init__(self, max_frame: int = MAX_FRAME_BYTES) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Tuple[str, Dict[str, Any]]]:
        """Absorb *data*; return the frames it completed."""
        self._buffer.extend(data)
        frames: List[Tuple[str, Dict[str, Any]]] = []
        while len(self._buffer) >= LENGTH_BYTES:
            length = int.from_bytes(self._buffer[:LENGTH_BYTES], "big")
            if length == 0:
                raise JunkFrameError("zero-length frame")
            if length > self.max_frame:
                raise OversizedFrameError(
                    f"length prefix promises {length} bytes "
                    f"(cap {self.max_frame})")
            if len(self._buffer) < LENGTH_BYTES + length:
                break
            payload = bytes(self._buffer[LENGTH_BYTES:
                                         LENGTH_BYTES + length])
            del self._buffer[:LENGTH_BYTES + length]
            frames.append(decode_payload(payload))
        return frames

    def eof(self) -> None:
        """The stream ended: a non-empty remainder is a torn frame."""
        if self._buffer:
            raise TruncatedFrameError(
                f"stream ended {len(self._buffer)} byte(s) into a frame")

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


# ---------------------------------------------------------------------------
# dialing (shared by workers, the loadgen, and the smoke tools)
# ---------------------------------------------------------------------------

def connect_backoff(attempt: int, base_s: float = BACKOFF_BASE_S,
                    cap_s: float = BACKOFF_CAP_S) -> float:
    """Seconds to wait before dial *attempt* (0-based): capped binary
    exponential, a pure function of the attempt number so every retry
    schedule is reproducible."""
    return min(float(cap_s), float(base_s) * (2.0 ** max(0, attempt)))


def parse_address(text: str) -> Tuple[str, int]:
    """``host:port`` → ``(host, port)`` (pure; raises ValueError)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address {text!r} is not host:port")
    return host, int(port)


def dial(host: str, port: int, attempts: int = 40,
         base_s: float = BACKOFF_BASE_S, cap_s: float = BACKOFF_CAP_S,
         timeout_s: float = 10.0) -> socket.socket:
    """Connect to ``(host, port)``, retrying refusals with
    :func:`connect_backoff`.

    This is the startup-flake fix in one place: a dial that races a
    daemon or coordinator still binding its port gets
    ``ConnectionRefusedError`` on the first try and nothing on the
    second — failing a campaign (or a CI smoke) on that race is a
    flake, not a finding.
    """
    last: Optional[OSError] = None
    for attempt in range(max(1, attempts)):
        try:
            return socket.create_connection((host, port),
                                            timeout=timeout_s)
        except (ConnectionRefusedError, ConnectionAbortedError,
                ConnectionResetError) as exc:
            last = exc
            time.sleep(connect_backoff(attempt, base_s, cap_s))
    raise last if last is not None else ConnectionRefusedError(
        f"could not reach {host}:{port}")


# ---------------------------------------------------------------------------
# the coordinator side (a ShardTransport)
# ---------------------------------------------------------------------------

class _Peer:
    """One accepted worker connection and its frame buffer."""

    def __init__(self, sock: socket.socket, address: Any) -> None:
        self.sock = sock
        self.address = address
        self.buffer = FrameBuffer()
        self.worker_id = ""          # set by HELLO
        self.job_id: Optional[str] = None  # job this peer is computing

    @property
    def idle(self) -> bool:
        return bool(self.worker_id) and self.job_id is None


class SocketTransport(ShardTransport):
    """The coordinator's listening end, as a shard transport.

    Construction binds (``port=0`` picks an ephemeral port; read
    :attr:`port` before spawning the fleet).  Like the job queue, the
    transport itself is the buffer: the supervisor may dispatch the
    whole plan and however many workers dial in steal from the pending
    deque — work stealing is the assignment loop.  All lease deadlines
    live on the coordinator's own monotonic clock, stamped when frames
    arrive, so nothing is ever compared across machines.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 lease_s: float = DEFAULT_LEASE_S,
                 shard_timeout: Optional[float] = None,
                 poll_s: float = DEFAULT_POLL_S,
                 reclaim_grace_s: Optional[float] = None) -> None:
        self.lease_s = float(lease_s)
        self.shard_timeout = shard_timeout
        self.poll_s = poll_s
        #: Initial lease slack: covers the JOB-send to first-HEARTBEAT
        #: window of a worker killed at the worst possible instant.
        self.reclaim_grace_s = reclaim_grace_s \
            if reclaim_grace_s is not None else max(2.0 * self.lease_s, 1.0)
        #: ticket -> dispatched job document.
        self.outstanding: Dict[int, Dict[str, Any]] = {}
        self._pending: Deque[Dict[str, Any]] = deque()
        self._tickets: Dict[str, int] = {}         # job id -> ticket
        self._leases: Dict[str, Dict[str, Any]] = {}
        self._carrier: Dict[str, Optional[_Peer]] = {}
        self._peers: List[_Peer] = []
        self._completed: List[AttemptOutcome] = []
        self._seen_workers: set = set()
        self._stats: Dict[str, int] = {
            "frames_sent": 0, "frames_received": 0, "connects": 0,
            "reconnects": 0, "disconnects": 0, "protocol_errors": 0,
            "jobs_reclaimed": 0, "stale_results": 0}
        self._closed = False
        self._listener = socket.socket(socket.AF_INET,
                                       socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET,
                                  socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self._listener.setblocking(False)
        self.host, self.port = self._listener.getsockname()[:2]
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ,
                                None)

    # -- interface ----------------------------------------------------

    def slots(self) -> int:
        # Like the queue: publish the whole plan, let the fleet steal.
        return 1_000_000_000

    def dispatch(self, ticket: int, worker: str,
                 payload: Dict[str, Any], key: str = "",
                 label: str = "") -> None:
        job = job_document(ticket, worker, payload, key, label,
                          self.shard_timeout, self.lease_s)
        self.outstanding[ticket] = job
        self._tickets[job["job"]] = ticket
        self._pending.append(job)

    def poll(self, timeout_s: float) -> List[AttemptOutcome]:
        deadline = time.perf_counter() + timeout_s
        while True:
            remaining = deadline - time.perf_counter()
            self._pump(max(0.0, min(self.poll_s, remaining)))
            self._assign_pending()
            outcomes = self._take_completed()
            outcomes.extend(self._reclaim_expired())
            if outcomes or deadline - time.perf_counter() <= 0:
                return outcomes

    def close(self) -> None:
        """Broadcast stop to the dialed-in fleet and release the port.

        Idempotent: a supervisor ``finally`` and an outer CLI cleanup
        may both call it.  The stop ``RETRACT`` is what keeps workers
        from burning their reconnect budget against a dead port.
        """
        if self._closed:
            return
        self._closed = True
        for peer in list(self._peers):
            try:
                self._send(peer, "RETRACT", {"job": "*", "stop": True})
            except OSError:
                pass
            self._drop_peer(peer)
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        self._listener.close()
        self._selector.close()

    def stats(self) -> Dict[str, int]:
        """Wire counters (telemetry, never content): frames each way,
        connects/reconnects/disconnects, protocol errors, reclaims."""
        return dict(self._stats)

    # -- socket pump --------------------------------------------------

    def _pump(self, wait_s: float) -> None:
        if self._closed:
            return
        for key, _mask in self._selector.select(wait_s):
            if key.data is None:
                self._accept()
            else:
                self._service(key.data)

    def _accept(self) -> None:
        while True:
            try:
                conn, address = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            conn.setblocking(False)
            peer = _Peer(conn, address)
            self._peers.append(peer)
            self._selector.register(conn, selectors.EVENT_READ, peer)

    def _service(self, peer: _Peer) -> None:
        try:
            data = peer.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._drop_peer(peer)
            return
        if not data:
            try:
                peer.buffer.eof()
            except TruncatedFrameError:
                self._stats["protocol_errors"] += 1
            self._drop_peer(peer)
            return
        try:
            frames = peer.buffer.feed(data)
            for kind, body in frames:
                self._stats["frames_received"] += 1
                self._handle(peer, kind, body)
        except ProtocolError:
            # A typed wire violation costs the sender its connection,
            # nothing else: leases keep ticking, the plan stays owed.
            self._stats["protocol_errors"] += 1
            self._drop_peer(peer)

    def _drop_peer(self, peer: _Peer) -> None:
        if peer not in self._peers:
            return
        self._peers.remove(peer)
        if peer.worker_id:
            self._stats["disconnects"] += 1
        try:
            self._selector.unregister(peer.sock)
        except (KeyError, ValueError):
            pass
        try:
            peer.sock.close()
        except OSError:
            pass
        if peer.job_id and self._carrier.get(peer.job_id) is peer:
            # The lease keeps running: a quick reconnect resumes the
            # claim; no reconnect lets the lease expire into reclaim.
            self._carrier[peer.job_id] = None

    def _send(self, peer: _Peer, kind: str, body: Dict[str, Any]) -> None:
        data = encode_frame(kind, body)
        peer.sock.settimeout(5.0)
        try:
            peer.sock.sendall(data)
        finally:
            peer.sock.setblocking(False)
        self._stats["frames_sent"] += 1

    # -- frame handlers -----------------------------------------------

    def _handle(self, peer: _Peer, kind: str,
                body: Dict[str, Any]) -> None:
        if not peer.worker_id and kind != "HELLO":
            raise JunkFrameError(f"{kind} before HELLO")
        if kind == "HELLO":
            self._handle_hello(peer, body)
        elif kind == "HEARTBEAT":
            self._handle_heartbeat(peer, body)
        elif kind == "RESULT":
            self._handle_result(peer, body)
        else:
            raise JunkFrameError(f"unexpected {kind} from a worker")

    def _handle_hello(self, peer: _Peer, body: Dict[str, Any]) -> None:
        worker = str(body.get("worker") or "")
        if not worker:
            raise JunkFrameError("HELLO names no worker")
        peer.worker_id = worker
        if worker in self._seen_workers:
            self._stats["reconnects"] += 1
        else:
            self._seen_workers.add(worker)
            self._stats["connects"] += 1
        claims = body.get("claims") or []
        if not isinstance(claims, list):
            raise JunkFrameError("HELLO claims is not a list")
        for job_id in claims:
            job_id = str(job_id)
            if job_id in self._leases:
                # Reconnect-and-resume: rebind the claim and renew the
                # lease; the RESULT is expected on this connection.
                old = self._carrier.get(job_id)
                if old is not None and old is not peer:
                    old.job_id = None
                self._carrier[job_id] = peer
                peer.job_id = job_id
                self._renew(job_id, worker)
            else:
                # Already reclaimed (or never ours): tell the worker
                # so it can discard the zombie attempt.
                self._send(peer, "RETRACT", {"job": job_id})

    def _handle_heartbeat(self, peer: _Peer,
                          body: Dict[str, Any]) -> None:
        job_id = str(body.get("job") or "")
        if job_id in self._leases \
                and self._carrier.get(job_id) is peer:
            self._renew(job_id, peer.worker_id)
        # Anything else is a zombie's heartbeat: ignored, not an error
        # — the worker may not have processed its RETRACT yet.

    def _handle_result(self, peer: _Peer,
                       envelope: Dict[str, Any]) -> None:
        job_id = envelope.get("job")
        if peer.job_id is not None and peer.job_id == job_id:
            peer.job_id = None       # the peer is idle either way
        expected = {str(ticket): job
                    for ticket, job in self.outstanding.items()}
        merged = merge_job_results([envelope], expected)
        if not merged:
            self._stats["stale_results"] += 1
            return
        envelope = merged[0]
        ticket = envelope["ticket"]
        job = self.outstanding.pop(ticket)
        self._retire(job["job"])
        if envelope["outcome"] == "ok":
            self._completed.append(AttemptOutcome(
                ticket=ticket, outcome="ok", rows=envelope["rows"],
                elapsed_ms=float(envelope.get("elapsed_ms", 0.0)),
                owner=str(envelope.get("owner", ""))))
        else:
            self._completed.append(AttemptOutcome(
                ticket=ticket, outcome="error",
                type_name=str(envelope.get("type", "")),
                message=str(envelope.get("message", "")),
                elapsed_ms=float(envelope.get("elapsed_ms", 0.0)),
                owner=str(envelope.get("owner", ""))))

    # -- leases -------------------------------------------------------

    def _renew(self, job_id: str, owner: str) -> None:
        now = time.perf_counter()
        lease = self._leases.get(job_id)
        if lease is None:
            return
        lease["owner"] = owner
        lease["expires_at"] = now + self.lease_s
        lease["renewals"] += 1

    def _assign_pending(self) -> None:
        if not self._pending:
            return
        for peer in list(self._peers):
            if not self._pending:
                return
            if not peer.idle:
                continue
            job = self._pending.popleft()
            try:
                self._send(peer, "JOB", job)
            except OSError:
                self._pending.appendleft(job)
                self._drop_peer(peer)
                continue
            job_id = job["job"]
            now = time.perf_counter()
            peer.job_id = job_id
            self._carrier[job_id] = peer
            self._leases[job_id] = {
                "owner": peer.worker_id, "claimed_at": now,
                "expires_at": now + max(self.lease_s,
                                        self.reclaim_grace_s),
                "renewals": 0}

    def _retire(self, job_id: str) -> None:
        self._tickets.pop(job_id, None)
        self._leases.pop(job_id, None)
        self._carrier.pop(job_id, None)

    def _reclaim_expired(self) -> List[AttemptOutcome]:
        """Expired leases become ``crash``/``hang`` attempt outcomes.

        The carrying peer — if still connected — keeps its busy mark:
        it is wedged inside (or still grinding on) the retracted
        attempt, and handing it new work would queue frames behind a
        possibly-hung compute.  It becomes assignable again when its
        late RESULT arrives (and is dropped as stale) or when it
        disconnects.
        """
        outcomes: List[AttemptOutcome] = []
        now = time.perf_counter()
        for job_id in sorted(self._leases):
            lease = self._leases[job_id]
            if lease["expires_at"] > now:
                continue
            ticket = self._tickets.get(job_id)
            if ticket is None or ticket not in self.outstanding:
                self._retire(job_id)
                continue
            job = self.outstanding.pop(ticket)
            elapsed_s = now - lease["claimed_at"]
            outcome = classify_expiry(elapsed_s, job.get("timeout"))
            owner = str(lease.get("owner", ""))
            peer = self._carrier.get(job_id)
            self._retire(job_id)
            if peer is not None and peer in self._peers:
                try:
                    self._send(peer, "RETRACT", {"job": job_id})
                except OSError:
                    self._drop_peer(peer)
            self._stats["jobs_reclaimed"] += 1
            outcomes.append(AttemptOutcome(
                ticket=ticket, outcome=outcome,
                message=(f"lease expired (owner {owner or 'unknown'}) "
                         f"after {elapsed_s:.2f}s"),
                elapsed_ms=elapsed_s * 1000.0, owner=owner))
        return outcomes

    def _take_completed(self) -> List[AttemptOutcome]:
        outcomes = self._completed
        self._completed = []
        return outcomes


# ---------------------------------------------------------------------------
# the worker side (`repro worker --connect`)
# ---------------------------------------------------------------------------

class SocketWorker:
    """One dial → HELLO → compute → RESULT loop against a coordinator.

    The compute path is the queue worker's, verbatim in spirit:
    cache-first by shard key, a heartbeat thread that goes silent once
    the shard's budget is spent, a broad-except firewall whose
    exception *name* the coordinator classifies.  What is new is
    survival of the wire: a connection lost mid-compute does not lose
    the attempt — the worker finishes, redials with capped
    deterministic backoff, re-``HELLO``\\ s with its claim, and resends
    the result (a duplicate is dropped coordinator-side by
    ``merge_job_results``).
    """

    def __init__(self, host: str, port: int, worker_id: str,
                 cache: Optional[ArtifactCache] = None,
                 events: Optional[Any] = None,
                 reconnect_limit: int = DEFAULT_RECONNECT_LIMIT,
                 dial_timeout_s: float = 10.0,
                 backoff_base_s: float = BACKOFF_BASE_S,
                 backoff_cap_s: float = BACKOFF_CAP_S,
                 recv_timeout_s: float = 0.5) -> None:
        self.host = host
        self.port = port
        self.worker_id = worker_id
        self.cache = cache if cache is not None \
            else ArtifactCache(enabled=False)
        #: Optional :class:`repro.monitor.events.EventLogWriter`;
        #: receives ``worker`` lifecycle events, including the socket
        #: states ``connect``/``disconnect``/``reconnect``.
        self.events = events
        self.reconnect_limit = max(0, reconnect_limit)
        self.dial_timeout_s = dial_timeout_s
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.recv_timeout_s = recv_timeout_s
        self._stop = False
        self._pending_result: Optional[Dict[str, Any]] = None

    # -- lifecycle ----------------------------------------------------

    def run(self, max_jobs: Optional[int] = None,
            idle_exit_s: Optional[float] = None) -> int:
        """Dial, serve, redial; returns the number of jobs executed.

        Exits on the coordinator's stop broadcast, after *max_jobs*
        executions, after *idle_exit_s* idle seconds, or once
        ``reconnect_limit`` consecutive dials fail.
        """
        done = 0
        failures = 0
        connected_before = False
        while not self._stop:
            if max_jobs is not None and done >= max_jobs:
                break
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.dial_timeout_s)
            except OSError:
                failures += 1
                if failures > self.reconnect_limit:
                    break
                time.sleep(connect_backoff(
                    failures - 1, self.backoff_base_s,
                    self.backoff_cap_s))
                continue
            failures = 0
            self._emit("reconnect" if connected_before else "connect",
                       "")
            connected_before = True
            try:
                budget = None if max_jobs is None else max_jobs - done
                done += self._session(sock, budget, idle_exit_s)
            except ProtocolError:
                pass                  # drop the connection, redial
            finally:
                self._emit("disconnect", "")
                try:
                    sock.close()
                except OSError:
                    pass
        return done

    def _session(self, sock: socket.socket, budget: Optional[int],
                 idle_exit_s: Optional[float]) -> int:
        sock.settimeout(self.recv_timeout_s)
        lock = threading.Lock()
        buffer = FrameBuffer()
        claims = [self._pending_result["job"]] \
            if self._pending_result else []
        try:
            self._send(sock, lock, "HELLO",
                       {"worker": self.worker_id, "claims": claims})
            if self._pending_result is not None:
                # The result computed while disconnected: deliver it
                # first.  A racing reclaim makes it stale, not wrong.
                self._send(sock, lock, "RESULT", self._pending_result)
                self._pending_result = None
        except OSError:
            return 0
        done = 0
        idle_since: Optional[float] = None
        while True:
            if budget is not None and done >= budget:
                return done
            try:
                data = sock.recv(65536)
            except socket.timeout:
                if idle_exit_s is not None:
                    now = time.perf_counter()
                    if idle_since is None:
                        idle_since = now
                    elif now - idle_since >= idle_exit_s:
                        self._stop = True
                        return done
                continue
            except OSError:
                return done          # connection lost; run() redials
            if not data:
                buffer.eof()         # raises on a torn frame
                return done
            for kind, body in buffer.feed(data):
                if kind == "JOB":
                    idle_since = None
                    delivered = self._execute(sock, lock, body)
                    done += 1
                    if not delivered:
                        return done  # result stashed; redial to send
                elif kind == "RETRACT":
                    if body.get("stop"):
                        self._stop = True
                        return done
                    # A claim we re-HELLOed was already reclaimed and
                    # retired; nothing to discard — results for it
                    # are dropped coordinator-side.
                else:
                    raise JunkFrameError(
                        f"unexpected {kind} from the coordinator")

    # -- compute ------------------------------------------------------

    def _execute(self, sock: socket.socket, lock: threading.Lock,
                 job: Dict[str, Any]) -> bool:
        """Run one job; returns False when the RESULT could not be
        sent (it is stashed for delivery after the next HELLO)."""
        label = job.get("label") or job.get("job") or ""
        self._emit("claim", label)
        stop = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat, args=(sock, lock, job, stop),
            daemon=True)
        heartbeat.start()
        envelope: Dict[str, Any] = {
            "job": job.get("job"), "ticket": job.get("ticket"),
            "digest": job.get("digest"), "owner": self.worker_id,
        }
        key = job.get("key") or ""
        started = time.perf_counter()
        try:
            rows = self.cache.load(key) if key else None
            cached = rows is not None
            if rows is None:
                rows = resolve_worker(job["worker"])(job["payload"])
            envelope.update(outcome="ok", rows=rows, cached=cached)
        except BaseException as exc:  # repro: allow-broad-except -- worker-fleet firewall; the coordinator classifies the failure by exception name
            envelope.update(outcome="error", type=type(exc).__name__,
                            message=str(exc))
        finally:
            stop.set()
        envelope["elapsed_ms"] = \
            (time.perf_counter() - started) * 1000.0
        if envelope["outcome"] == "ok" and key:
            # Same key, same bytes as every other topology: this is
            # what lets a killed campaign resume anywhere.
            self.cache.store(key, job["worker"], envelope["rows"])
        heartbeat.join(timeout=1.0)
        self._emit("done" if envelope["outcome"] == "ok" else "error",
                   label)
        try:
            self._send(sock, lock, "RESULT", envelope)
        except OSError:
            self._pending_result = envelope
            return False
        return True

    def _heartbeat(self, sock: socket.socket, lock: threading.Lock,
                   job: Dict[str, Any], stop: threading.Event) -> None:
        """Renew the lease until compute finishes — or fall silent.

        The same two deliberate silences as the queue worker: a spent
        wall-clock budget (so a hang is reclaimed like a death), and a
        dead connection (the session loop notices on its own)."""
        lease_s = float(job.get("lease_s") or DEFAULT_LEASE_S)
        interval = max(0.05, lease_s / 3.0)
        timeout = job.get("timeout")
        started = time.perf_counter()
        while not stop.wait(interval):
            if timeout is not None and \
                    time.perf_counter() - started > float(timeout):
                return
            try:
                self._send(sock, lock, "HEARTBEAT",
                           {"worker": self.worker_id,
                            "job": job.get("job")})
            except OSError:
                return

    # -- plumbing -----------------------------------------------------

    def _send(self, sock: socket.socket, lock: threading.Lock,
              kind: str, body: Dict[str, Any]) -> None:
        data = encode_frame(kind, body)
        with lock:
            sock.settimeout(self.dial_timeout_s)
            try:
                sock.sendall(data)
            finally:
                sock.settimeout(self.recv_timeout_s)

    def _emit(self, state: str, shard: str) -> None:
        if self.events is None:
            return
        self.events.append("worker", ts=int(now_s()), data={
            "worker": self.worker_id, "state": state, "shard": shard})


# ---------------------------------------------------------------------------
# local fleet helpers (`repro run --transport socket` sits on these)
# ---------------------------------------------------------------------------

def spawn_socket_workers(host: str, port: int, count: int,
                         cache_dir: Optional[str] = None,
                         cache_enabled: bool = True,
                         events_dir: Optional[str] = None,
                         reconnect_limit: int = DEFAULT_RECONNECT_LIMIT
                         ) -> List["subprocess.Popen"]:
    """Start *count* ``repro worker --connect`` subprocesses.

    The mirror of :func:`~repro.runtime.dist.spawn_local_workers` for
    fleets without a shared filesystem; wind down with the
    coordinator's :meth:`SocketTransport.close` stop broadcast and
    :func:`~repro.runtime.dist.join_workers`.
    """
    src_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    processes = []
    for index in range(count):
        worker_id = f"sock-{index}"
        command = [sys.executable, "-m", "repro", "worker",
                   "--connect", f"{host}:{port}", "--id", worker_id,
                   "--reconnect", str(reconnect_limit)]
        if not cache_enabled:
            command.append("--no-cache")
        elif cache_dir:
            command.extend(["--cache-dir", cache_dir])
        if events_dir:
            command.extend(["--events",
                            os.path.join(events_dir,
                                         f"{worker_id}.events.jsonl")])
        processes.append(subprocess.Popen(command, env=env))
    return processes
