"""Self-chaos harness for the supervised runtime.

PR 3 injects faults into the *simulated* OCSP network; this module
injects faults into the *runtime itself* — the process pool, the
worker functions, the artifact cache — so the supervisor's recovery
machinery can be proven rather than trusted.  :func:`chaos_shard`
wraps any real shard worker and misbehaves deterministically for the
first ``fail_times`` attempts:

* ``crash`` — ``os._exit`` mid-shard, the way an OOM-killed or
  segfaulted worker dies: no exception, no cleanup, just a closed
  pipe;
* ``hang``  — sleep far past any shard timeout, the way a wedged
  network read hangs;
* ``transient`` — raise :class:`repro.faults.TransientShardError`
  (classified retry-worthy);
* ``permanent`` — raise :class:`repro.faults.PermanentShardError`
  (classified quarantine-on-sight).

Attempt counting must survive the very crashes it provokes, so it
lives in the filesystem: each attempt appends one line to a marker
file in a caller-provided scratch directory before deciding whether
to misbehave.  The marker persists across worker restarts *and*
whole-run restarts — which is exactly what lets a test script a
"fails this run, succeeds on resume" shard.

The chaos wrapper changes *when* rows are produced, never *which*
rows: once the fault budget is exhausted it delegates to the wrapped
worker untouched, so merged output must stay byte-identical to an
undisturbed serial run — the determinism contract PR 2 established,
now holding under fire.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List

from ..canon import stable_digest
from ..faults.classify import PermanentShardError, TransientShardError
from .executor import ShardSpec, resolve_worker

#: The chaos modes scripts can request.
CHAOS_MODES = ("crash", "hang", "transient", "permanent")

#: Exit code of an injected crash — distinctive in supervisor logs.
CRASH_EXIT_CODE = 23


def chaos_wrap(spec: ShardSpec, mode: str, fail_times: int,
               scratch: str, hang_s: float = 3600.0) -> ShardSpec:
    """Wrap *spec* so its first *fail_times* attempts fail via *mode*.

    *scratch* is the directory holding the attempt markers; tests pass
    a tmpdir so runs stay isolated.  The wrapper's payload embeds the
    inner worker and payload verbatim, so the (different) cache key
    still content-addresses the same rows.
    """
    if mode not in CHAOS_MODES:
        raise ValueError(f"unknown chaos mode {mode!r} "
                         f"(known: {', '.join(CHAOS_MODES)})")
    return ShardSpec(
        worker="repro.runtime.chaos:chaos_shard",
        payload={"inner": spec.worker, "inner_payload": spec.payload,
                 "mode": mode, "fail_times": fail_times,
                 "scratch": scratch, "hang_s": hang_s},
        label=f"chaos[{mode}x{fail_times}]:{spec.label}")


def _attempt_number(scratch: str, token: str) -> int:  # repro: allow-effect[FS_READ,FS_WRITE] -- crash-safe attempt markers are the tested behavior; scratch dir is per-run
    """Record this attempt and return its 1-based number.

    Append-then-count keeps the bookkeeping crash-safe: the marker is
    on disk *before* any fault fires, so even ``os._exit`` cannot lose
    an attempt.
    """
    os.makedirs(scratch, exist_ok=True)
    path = os.path.join(scratch, f"{token}.attempts")
    with open(path, "a") as stream:
        stream.write("attempt\n")
    with open(path) as stream:
        return sum(1 for _ in stream)


def chaos_shard(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Misbehave for the first ``fail_times`` attempts, then delegate."""
    token = stable_digest({"inner": payload["inner"],
                           "payload": payload["inner_payload"],
                           "mode": payload["mode"]})
    attempt = _attempt_number(payload["scratch"], token)
    if attempt <= payload["fail_times"]:
        mode = payload["mode"]
        if mode == "crash":
            os._exit(CRASH_EXIT_CODE)  # repro: allow-effect[PROCESS] -- injected crash is the experiment; supervisor restarts the attempt
        elif mode == "hang":
            time.sleep(float(payload.get("hang_s", 3600.0)))  # repro: allow-effect[WALL_CLOCK] -- injected hang is the experiment; supervisor timeout kills it
            # Normally unreachable — the supervisor kills us first.  If
            # the hang outlived the timeout, the attempt still fails.
            raise TransientShardError(
                f"injected hang outlived the supervisor (attempt {attempt})")
        elif mode == "transient":
            raise TransientShardError(
                f"injected transient fault (attempt {attempt})")
        elif mode == "permanent":
            raise PermanentShardError(
                f"injected permanent fault (attempt {attempt})")
        else:
            raise ValueError(f"unknown chaos mode {mode!r}")
    return resolve_worker(payload["inner"])(payload["inner_payload"])
