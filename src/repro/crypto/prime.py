"""Probabilistic prime generation for RSA key material.

Uses deterministic trial division over small primes followed by
Miller-Rabin.  All randomness flows through a caller-supplied
``random.Random`` so corpus generation is reproducible; the witnesses
for Miller-Rabin come from the same stream.
"""

from __future__ import annotations

import random
from typing import Optional

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251,
]


def is_probable_prime(candidate: int, rng: Optional[random.Random] = None,
                      rounds: int = 24) -> bool:
    """Return True if *candidate* passes trial division and Miller-Rabin."""
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate == prime:
            return True
        if candidate % prime == 0:
            return False
    rng = rng or random.Random(candidate)
    # Write candidate - 1 as d * 2^r with d odd.
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        witness = rng.randrange(2, candidate - 1)
        x = pow(witness, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a probable prime of exactly *bits* bits."""
    if bits < 8:
        raise ValueError(f"prime size too small: {bits} bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force top bit and oddness
        if is_probable_prime(candidate, rng):
            return candidate
