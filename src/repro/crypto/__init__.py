"""Pure-Python RSA crypto substrate (keygen, PKCS#1 v1.5 signatures).

Everything a CA, web server, or OCSP responder in the simulation signs
or verifies goes through this package; there is no dependency on
OpenSSL or the ``cryptography`` package.
"""

from .prime import generate_prime, is_probable_prime
from .rsa import F4, RSAPrivateKey, RSAPublicKey, generate_keypair
from .pkcs1 import SignatureError, is_valid, sign, verify
from .keys import (
    KeyPool,
    decode_rsa_public_key,
    decode_spki,
    encode_rsa_public_key,
    encode_spki,
    shared_pool,
)

__all__ = [
    "F4",
    "KeyPool",
    "RSAPrivateKey",
    "RSAPublicKey",
    "SignatureError",
    "decode_rsa_public_key",
    "decode_spki",
    "encode_rsa_public_key",
    "encode_spki",
    "generate_keypair",
    "generate_prime",
    "is_probable_prime",
    "is_valid",
    "shared_pool",
    "sign",
    "verify",
]
