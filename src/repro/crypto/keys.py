"""DER serialization of RSA public keys and key-pool management.

Public keys serialize as SubjectPublicKeyInfo (RFC 5280 section
4.1.2.7): an AlgorithmIdentifier for rsaEncryption plus the PKCS#1
RSAPublicKey SEQUENCE inside a BIT STRING.

The :class:`KeyPool` exists because pure-Python keygen dominates corpus
generation time; the simulated PKI issues many certificates from a
bounded pool of distinct keys, mirroring (deliberately, see DESIGN.md)
the real-world key sharing the authors' earlier CCS'16 paper measured.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..asn1 import Reader, UnsupportedAlgorithmError, encoder, oid
from .rsa import RSAPrivateKey, RSAPublicKey, generate_keypair


def encode_rsa_public_key(key: RSAPublicKey) -> bytes:
    """Encode the PKCS#1 RSAPublicKey SEQUENCE."""
    return encoder.encode_sequence(
        encoder.encode_integer(key.n),
        encoder.encode_integer(key.e),
    )


def decode_rsa_public_key(der: bytes) -> RSAPublicKey:
    """Decode a PKCS#1 RSAPublicKey SEQUENCE."""
    seq = Reader(der).read_sequence()
    n = seq.read_integer()
    e = seq.read_integer()
    seq.expect_end()
    return RSAPublicKey(n=n, e=e)


def encode_spki(key: RSAPublicKey) -> bytes:
    """Encode SubjectPublicKeyInfo for an RSA key."""
    algorithm = encoder.encode_sequence(
        encoder.encode_oid(oid.RSA_ENCRYPTION),
        encoder.encode_null(),
    )
    return encoder.encode_sequence(
        algorithm,
        encoder.encode_bit_string(encode_rsa_public_key(key)),
    )


def decode_spki(der: bytes) -> RSAPublicKey:
    """Decode SubjectPublicKeyInfo; only rsaEncryption is supported."""
    spki = Reader(der).read_sequence()
    algorithm = spki.read_sequence()
    algorithm_oid = algorithm.read_oid()
    if algorithm_oid != oid.RSA_ENCRYPTION:
        raise UnsupportedAlgorithmError(
            f"unsupported public key algorithm: {algorithm_oid}")
    algorithm.read_null()
    algorithm.expect_end()
    key_bits = spki.read_bit_string()
    spki.expect_end()
    return decode_rsa_public_key(key_bits)


class KeyPool:
    """A bounded, seeded pool of RSA keypairs.

    ``take()`` returns keys round-robin so large corpora amortize the
    keygen cost while still exercising many distinct keys.
    """

    def __init__(self, size: int = 32, bits: int = 512, seed: int = 0) -> None:
        if size < 1:
            raise ValueError("pool size must be positive")
        self._bits = bits
        self._rng = random.Random(seed)
        self._size = size
        self._keys: List[RSAPrivateKey] = []
        self._cursor = 0

    def take(self) -> RSAPrivateKey:
        """Return the next key, generating lazily up to the pool size."""
        if len(self._keys) < self._size:
            key = generate_keypair(self._bits, self._rng)
            self._keys.append(key)
            return key
        key = self._keys[self._cursor]
        self._cursor = (self._cursor + 1) % self._size
        return key

    def fresh(self) -> RSAPrivateKey:
        """Return a key that is never shared (used for CA roots)."""
        return generate_keypair(self._bits, self._rng)

    def __len__(self) -> int:
        return len(self._keys)


_shared_pools: Dict[tuple, KeyPool] = {}


def shared_pool(size: int = 32, bits: int = 512, seed: int = 0) -> KeyPool:
    """Return a process-wide memoized pool (tests and examples share keys)."""
    key = (size, bits, seed)
    pool = _shared_pools.get(key)
    if pool is None:
        pool = KeyPool(size=size, bits=bits, seed=seed)
        _shared_pools[key] = pool
    return pool
