"""RSASSA-PKCS1-v1_5 signatures (RFC 8017) over SHA-1/SHA-256.

This is the signature scheme used by every certificate, CRL, and OCSP
response in the reproduction.  Verification failures here are what the
scanner classifies as the "incorrect signature" error class of the
paper's Figure 5.
"""

from __future__ import annotations

import hashlib
import hmac

from .rsa import RSAPrivateKey, RSAPublicKey

#: DER DigestInfo prefixes (AlgorithmIdentifier + OCTET STRING header)
#: for the digests we support, from RFC 8017 section 9.2 notes.
_DIGEST_INFO_PREFIX = {
    "sha256": bytes.fromhex("3031300d060960864801650304020105000420"),
    "sha1": bytes.fromhex("3021300906052b0e03021a05000414"),
}


class SignatureError(ValueError):
    """Raised when a signature fails to verify."""


def _digest(data: bytes, hash_name: str) -> bytes:
    try:
        return hashlib.new(hash_name, data).digest()
    except ValueError as exc:
        raise ValueError(f"unsupported hash: {hash_name}") from exc


def _emsa_encode(data: bytes, em_len: int, hash_name: str) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of *data* into *em_len* octets."""
    prefix = _DIGEST_INFO_PREFIX.get(hash_name)
    if prefix is None:
        raise ValueError(f"unsupported hash for PKCS#1: {hash_name}")
    t = prefix + _digest(data, hash_name)
    if em_len < len(t) + 11:
        raise ValueError(f"modulus too short for {hash_name} signature")
    padding = b"\xff" * (em_len - len(t) - 3)
    return b"\x00\x01" + padding + b"\x00" + t


def sign(private_key: RSAPrivateKey, data: bytes, hash_name: str = "sha256") -> bytes:
    """Sign *data*, returning a signature of modulus length."""
    em = _emsa_encode(data, private_key.byte_length, hash_name)
    signature_int = private_key.raw_sign(int.from_bytes(em, "big"))
    return signature_int.to_bytes(private_key.byte_length, "big")


def verify(public_key: RSAPublicKey, data: bytes, signature: bytes,
           hash_name: str = "sha256") -> None:
    """Verify a signature, raising :class:`SignatureError` on any mismatch."""
    if len(signature) != public_key.byte_length:
        raise SignatureError(
            f"signature length {len(signature)} != modulus length {public_key.byte_length}"
        )
    signature_int = int.from_bytes(signature, "big")
    if signature_int >= public_key.n:
        raise SignatureError("signature representative out of range")
    em = public_key.raw_verify(signature_int).to_bytes(public_key.byte_length, "big")
    try:
        expected = _emsa_encode(data, public_key.byte_length, hash_name)
    except ValueError as exc:
        raise SignatureError(str(exc)) from exc
    # Constant-time-ish comparison; correctness matters more than timing
    # in a simulation but the idiom is cheap.
    if not hmac.compare_digest(em, expected):
        raise SignatureError("signature does not match data")


def is_valid(public_key: RSAPublicKey, data: bytes, signature: bytes,
             hash_name: str = "sha256") -> bool:
    """Boolean convenience wrapper around :func:`verify`."""
    try:
        verify(public_key, data, signature, hash_name)
    except SignatureError:
        return False
    return True
