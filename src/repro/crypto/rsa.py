"""RSA key generation and the raw RSA primitives.

Key sizes default to 512 bits in the simulation (the corpus generator
creates thousands of keys; semantics, not strength, is what the
reproduction needs).  2048-bit keys work identically and are exercised
by the key-size ablation benchmark.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from .prime import generate_prime

#: Standard public exponent.
F4 = 65537


@dataclass(frozen=True)
class RSAPublicKey:
    """An RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def byte_length(self) -> int:
        """The modulus size in octets (= signature size)."""
        return (self.n.bit_length() + 7) // 8

    def raw_verify(self, signature_int: int) -> int:
        """Apply the public operation ``s^e mod n``."""
        return pow(signature_int, self.e, self.n)


@dataclass(frozen=True)
class RSAPrivateKey:
    """An RSA private key with CRT parameters for fast signing."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def public_key(self) -> RSAPublicKey:
        """The matching public key."""
        return RSAPublicKey(self.n, self.e)

    @property
    def byte_length(self) -> int:
        """The modulus size in octets."""
        return (self.n.bit_length() + 7) // 8

    def _crt_params(self) -> tuple:
        cached = getattr(self, "_crt_cache", None)
        if cached is None:
            cached = (
                self.d % (self.p - 1),
                self.d % (self.q - 1),
                pow(self.q, -1, self.p),
            )
            # frozen dataclass: bypass the immutability guard for the cache
            object.__setattr__(self, "_crt_cache", cached)
        return cached

    def raw_sign(self, message_int: int) -> int:
        """Apply the private operation ``m^d mod n`` using the CRT."""
        if not 0 <= message_int < self.n:
            raise ValueError("message representative out of range")
        dp, dq, q_inv = self._crt_params()
        s1 = pow(message_int, dp, self.p)
        s2 = pow(message_int, dq, self.q)
        h = (q_inv * (s1 - s2)) % self.p
        return s2 + self.q * h


def generate_keypair(bits: int = 512, rng: "random.Random | int | None" = None) -> RSAPrivateKey:
    """Generate an RSA keypair of *bits* modulus bits.

    *rng* may be a ``random.Random``, an integer seed, or None (fresh
    nondeterministic seed).
    """
    if isinstance(rng, int):
        rng = random.Random(rng)
    elif rng is None:
        rng = random.Random()  # repro: allow-effect[AMBIENT_RNG] -- convenience default for interactive use; every reproducible caller passes a seed
    if bits < 128:
        raise ValueError(f"modulus too small to hold a PKCS#1 digest: {bits} bits")
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        if math.gcd(F4, phi) != 1:
            continue
        d = pow(F4, -1, phi)
        return RSAPrivateKey(n=n, e=F4, d=d, p=p, q=q)
