"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``         — any registered experiment via the unified runtime
* ``readiness``   — the Section-8 verdict across all principals
* ``browsers``    — Table 2 (browser Must-Staple support)
* ``servers``     — Table 3 (web server stapling conformance)
* ``scan``        — run a measurement campaign, optionally save JSON-lines
* ``analyze``     — availability + quality report over a saved scan
* ``audit``       — the CRL↔OCSP consistency cross-check (Table 1 / Fig 10)
* ``experiments`` — the experiment registry (paper artefact → benchmark)
* ``scenarios``   — the fault-scenario and client-policy catalogues
* ``issue``       — mint a demo Must-Staple certificate chain as PEM
* ``lint``        — static conformance analysis of certificates/OCSP/CRLs
* ``hostile``     — seeded structure-aware DER mutation (hostile corpus)
* ``cache``       — artifact-cache maintenance (stats / verify / gc)
* ``serve``       — asyncio OCSP-over-HTTP responder daemon
* ``loadgen``     — deterministic load generator against a daemon
* ``monitor``     — replay/tail/summarize a monitor event log
* ``worker``      — execute shards from a job queue (``--queue-dir``)
  or a TCP coordinator (``--connect host:port``)

Experiment-running commands share the runtime flags ``--workers``,
``--cache-dir``, ``--no-cache``, and ``--seed``; everything funnels
through :func:`repro.runtime.run_experiment`.  ``run`` additionally
takes ``--supervise`` (plus ``--allow-partial``, ``--shard-timeout``,
``--retries``) for the crash-tolerant executor, ``--transport
jobqueue --queue-dir DIR`` to dispatch shards through a filesystem
job queue that independent ``repro worker`` processes drain, and
``--transport socket [--listen HOST:PORT]`` to coordinate a fleet
over TCP with no shared filesystem at all.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, List, Optional

from .simnet import DAY, HOUR, MEASUREMENT_START

_DEFAULT_SEED = 7


def _seed(args: argparse.Namespace) -> int:
    """Resolve the effective seed (``<command> --seed N``; the old
    root-level spelling is rejected in :func:`main`)."""
    if getattr(args, "seed", None) is not None:
        return args.seed
    return _DEFAULT_SEED


def _runtime_kwargs(args: argparse.Namespace) -> dict:
    """The run_experiment() knobs shared by every runtime command."""
    return {
        "workers": getattr(args, "workers", 1),
        "cache": not getattr(args, "no_cache", False),
        "cache_dir": getattr(args, "cache_dir", None),
    }


def _cmd_readiness(args: argparse.Namespace) -> int:
    from .datasets import CorpusConfig, WorldConfig
    from .runtime import ReadinessConfig, run_experiment
    seed = _seed(args)
    config = ReadinessConfig(
        world=WorldConfig(n_responders=args.responders,
                          certs_per_responder=1, seed=seed),
        corpus=CorpusConfig(size=4_000, seed=seed),
        scan_days=args.days, scan_interval=6 * HOUR)
    result = run_experiment("sec8-readiness", config=config,
                            **_runtime_kwargs(args))
    print(result.artifacts["report"].render())
    print(f"cache: {result.cache_status}", file=sys.stderr)
    return 0


def _cmd_browsers(args: argparse.Namespace) -> int:
    from .browser import run_browser_tests
    from .core import render_table
    report = run_browser_tests()
    rows = []
    for row in report.rows:
        cells = row.cells()
        rows.append([row.policy.label, cells["Request OCSP response"],
                     cells["Respect OCSP Must-Staple"],
                     cells["Send own OCSP request"]])
    print(render_table(
        ["browser", "requests OCSP", "respects Must-Staple", "own OCSP request"],
        rows, title="Table 2: browser Must-Staple support"))
    return 0


def _cmd_servers(args: argparse.Namespace) -> int:
    from .core import render_table
    from .webserver import (ApacheServer, EXPERIMENTS, IdealServer, NginxServer,
                            run_conformance)
    rows = []
    for cls in (ApacheServer, NginxServer, IdealServer):
        report = run_conformance(cls)
        cells = report.as_row()
        rows.append([report.software, *[cells[name] for name in EXPERIMENTS]])
    print(render_table(["software", *EXPERIMENTS], rows,
                       title="Table 3: stapling conformance"))
    return 0


def _scan_config(args: argparse.Namespace):
    from .datasets import WorldConfig
    from .runtime import ScanCampaignConfig
    return ScanCampaignConfig(
        world=WorldConfig(n_responders=args.responders,
                          certs_per_responder=args.certs, seed=_seed(args)),
        interval=args.interval * HOUR,
        start=MEASUREMENT_START,
        end=MEASUREMENT_START + args.days * DAY)


def _cmd_scan(args: argparse.Namespace) -> int:
    from .runtime import run_experiment
    from .scanner.io import dump_dataset
    config = _scan_config(args)
    print(f"scanning {args.days} days x {config.world.n_responders} "
          f"responders every {args.interval}h from 6 vantages...",
          file=sys.stderr)
    result = run_experiment("fig3", config=config, **_runtime_kwargs(args))
    dataset = result.artifacts["dataset"]
    if args.out:
        with open(args.out, "w") as stream:
            count = dump_dataset(dataset, stream)
        print(f"wrote {count} probes to {args.out} "
              f"(cache: {result.cache_status})", file=sys.stderr)
    else:
        dump_dataset(dataset, sys.stdout)
    if args.events:
        from .monitor import dataset_to_events, write_events
        with open(args.events, "w", encoding="ascii") as stream:
            count = write_events(stream, dataset_to_events(dataset),
                                 meta={"source": "repro scan",
                                       "seed": _seed(args)})
        print(f"wrote {count} events to {args.events}", file=sys.stderr)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    import os
    static_requested = (args.strict or args.contract or args.graph
                        or args.format != "text"
                        or (args.scan_file and os.path.isdir(args.scan_file)))
    if static_requested:
        return _cmd_analyze_static(args)
    from .core import analyze_availability, quality_headlines
    from .scanner.io import load_dataset
    if args.scan_file:
        with open(args.scan_file) as stream:
            dataset = load_dataset(stream)
    else:
        # No file: run the default fig3 campaign through the runtime.
        from .runtime import run_experiment
        result = run_experiment("fig3", config=_scan_config(args),
                                **_runtime_kwargs(args))
        dataset = result.artifacts["dataset"]
        print(f"cache: {result.cache_status}", file=sys.stderr)
    report = analyze_availability(dataset)
    print(f"{len(dataset)} probes, {report.responder_count} responders")
    print("failure rate by vantage:")
    for vantage, rate in sorted(report.failure_rate.items(), key=lambda kv: kv[1]):
        print(f"  {vantage:10s} {rate:.2f}%")
    print(f"never reachable anywhere: {len(report.never_successful_anywhere)}")
    print(f"responders with >=1 outage: {len(report.responders_with_outage)} "
          f"({report.outage_fraction * 100:.1f}%)")
    headlines = quality_headlines(dataset)
    print(f"zero-margin responders: {headlines.zero_margin}")
    print(f"blank nextUpdate: {headlines.blank_next_update}")
    print(f"pre-generated responses: {headlines.not_on_demand}")
    return 0


def _cmd_analyze_static(args: argparse.Namespace) -> int:
    """The whole-program effect & purity analyzer (`repro analyze --strict`)."""
    import json
    import os
    from pathlib import Path

    from .analyze import analyze_package, analyze_tree, contract_table, graph_dump
    from .lint.output import render_report

    if args.scan_file and os.path.isdir(args.scan_file):
        root = Path(args.scan_file).resolve()
        analysis = analyze_tree(root)
    else:
        analysis = analyze_package()

    if args.graph:
        document = json.dumps(graph_dump(analysis), indent=2, sort_keys=True)
        with open(args.graph, "w") as stream:
            stream.write(document + "\n")
        print(f"call graph: {args.graph}", file=sys.stderr)

    if args.contract:
        print(contract_table(analysis))
    elif args.format != "text":
        sys.stdout.write(render_report(analysis.report, args.format))
    else:
        for finding in analysis.report.findings:
            print(finding.render())
        pure = sum(1 for r in analysis.contracts
                   if r.contract.kind != "unresolved" and not r.violations)
        print(f"{len(analysis.program.modules)} modules, "
              f"{len(analysis.graph.functions)} functions; "
              f"{pure}/{len(analysis.contracts)} contracts pure; "
              f"{len(analysis.report.findings)} finding(s)")

    if args.strict:
        return 0 if analysis.ok else 1
    return 0 if analysis.clean else 1


def _cmd_audit(args: argparse.Namespace) -> int:
    from .core import render_table
    from .scanner import ConsistencyConfig, ConsistencyWorld, run_consistency_scan
    world = ConsistencyWorld(ConsistencyConfig(scale=args.scale,
                                               seed=_seed(args)))
    report = run_consistency_scan(world)
    rows = [[row.ocsp_url, row.unknown, row.good, row.revoked]
            for row in report.discrepant_rows()]
    print(render_table(["OCSP URL", "Unknown", "Good", "Revoked"], rows,
                       title=f"CRL vs OCSP discrepancies (scale 1:{args.scale})"))
    print(f"responses: {report.responses_collected}/{report.serials_checked}; "
          f"differing revocation times: "
          f"{report.differing_time_fraction() * 100:.2f}%")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .core.experiments import index_table
    print(index_table())
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    """List the chaos fault scenarios and client resilience policies."""
    from .core import render_table
    from .faults import POLICIES, scenario, scenario_names

    rows = []
    for name in scenario_names():
        plan = scenario(name)
        kinds = ", ".join(injector.kind for injector in plan.injectors) \
            or "(passthrough)"
        rows.append([name, len(plan.injectors), kinds, plan.plan_digest()])
    print(render_table(["scenario", "injectors", "kinds", "digest"], rows,
                       title="Fault scenarios (repro run chaos-availability)"))
    print()
    rows = []
    for name, policy in POLICIES.items():
        rows.append([
            name,
            "yes" if policy.check_revocation else "no",
            policy.attempt_timeout_ms or "-",
            policy.retries_per_url,
            "yes" if policy.failover else "no",
            "yes" if policy.crl_fallback else "no",
            "hard" if policy.hard_fail else "soft",
        ])
    print(render_table(
        ["policy", "checks", "attempt ms", "retries/url", "failover",
         "crl fallback", "fail mode"],
        rows, title="Client policies (repro run chaos-client-outcomes)"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    import json

    from .core.figures import FigureScale
    from .runtime import ShardQuarantinedError, run_experiment
    scale = FigureScale.full() if args.scale == "full" else FigureScale.small()
    scale.seed = _seed(args)
    kwargs = _runtime_kwargs(args)
    if args.supervise or args.transport in ("jobqueue", "socket"):
        kwargs.update(supervise=True, allow_partial=args.allow_partial,
                      shard_timeout=args.shard_timeout,
                      max_retries=args.retries)
    if args.transport == "jobqueue":
        from .runtime import QueueTuning
        if not args.queue_dir:
            print("run: --transport jobqueue needs --queue-dir",
                  file=sys.stderr)
            return 2
        kwargs.update(transport="jobqueue", queue_dir=args.queue_dir,
                      queue_tuning=QueueTuning(lease_s=args.lease),
                      spawn_workers=not args.no_spawn)
    elif args.transport == "socket":
        from .runtime import QueueTuning, parse_address
        try:
            parse_address(args.listen)
        except ValueError as exc:
            print(f"run: --listen {exc}", file=sys.stderr)
            return 2
        kwargs.update(transport="socket", listen=args.listen,
                      queue_tuning=QueueTuning(lease_s=args.lease),
                      spawn_workers=not args.no_spawn)
    try:
        result = run_experiment(args.experiment_id, scale=scale, **kwargs)
    except KeyError:
        print(f"run: unknown experiment {args.experiment_id!r} "
              f"(see 'repro experiments')", file=sys.stderr)
        return 2
    except ShardQuarantinedError as exc:
        print(f"run: {exc}", file=sys.stderr)
        return 3
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        if result.manifest is not None and not result.manifest.complete:
            return 3
        return 0
    provenance = result.provenance
    print(f"experiment: {result.experiment_id}")
    print(f"config: {provenance.config_digest} "
          f"(code {provenance.code_version})")
    print(f"shards: {len(provenance.shards)} "
          f"(executed {provenance.executed_shards}, "
          f"cached {provenance.cached_shards}, "
          f"workers {provenance.workers})")
    print(f"rows: {len(result.rows)}")
    for key, value in result.to_dict()["summary"].items():
        print(f"  {key}: {value}")
    print(f"wall: {result.timings['total_s']:.2f}s "
          f"(shard compute {result.timings['shard_ms_total']:.0f}ms)")
    print(f"cache: {result.cache_status}")
    manifest = result.manifest
    if manifest is not None:
        print(f"manifest: {manifest.cached} cached, "
              f"{manifest.computed} computed, {manifest.retried} retried, "
              f"{len(manifest.quarantined())} quarantined")
        for state in manifest.quarantined():
            print(f"  quarantined {state.label or state.index}: "
                  f"{state.quarantine_reason}")
        return 0 if manifest.complete else 3
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from .core.figures import FigureScale, generate_all
    if args.full:
        print("figures: '--full' was removed; "
              "use 'repro figures --scale full'", file=sys.stderr)
        return 2
    scale = FigureScale.full() if args.scale == "full" else FigureScale.small()
    scale.seed = _seed(args)
    print(f"generating figure/table data into {args.out} "
          f"({args.scale} scale, workers={args.workers})...", file=sys.stderr)
    written = generate_all(args.out, scale, workers=args.workers,
                           cache_dir=args.cache_dir)
    for path in written:
        print(path)
    return 0


def _cmd_selftest(args: argparse.Namespace) -> int:
    """Run the Section-8 self-test harness against simulated responders."""
    from .datasets import MeasurementWorld, WorldConfig
    from .scanner import self_test_responder
    world = MeasurementWorld(WorldConfig(n_responders=args.responders,
                                         certs_per_responder=1,
                                         seed=_seed(args)))
    now = MEASUREMENT_START + HOUR
    unhealthy = 0
    for site in world.sites[:args.limit]:
        report = self_test_responder(world.network, site.url,
                                     site.certificates[0],
                                     site.authority.certificate, now)
        if not report.healthy or (report.warnings and args.verbose):
            print(report.render())
            print()
        if not report.healthy:
            unhealthy += 1
    print(f"{unhealthy}/{min(args.limit, len(world.sites))} responders "
          f"need attention")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from .asn1.dump import describe_certificate, dump_der
    from .asn1.errors import ASN1Error
    from .x509.pem import decode_pem
    with open(args.path, "rb") as stream:
        raw = stream.read()
    blobs: list = []
    try:
        text = raw.decode("ascii")
        blobs = decode_pem(text)
    except (UnicodeDecodeError, ValueError):
        pass
    if not blobs:
        blobs = [("DER", raw)]
    for label, der in blobs:
        print(f"--- {label} ({len(der)} bytes) ---")
        if label == "CERTIFICATE":
            try:
                print(describe_certificate(der))
                print()
            except (ASN1Error, ValueError) as exc:  # still dump the raw structure
                print(f"(certificate summary failed: {exc})")
        print(dump_der(der, max_lines=args.max_lines))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Static conformance analysis over certificates / OCSP / CRLs."""
    import json

    from .datasets import WorldConfig
    from .lint import (
        LintContext,
        LintEngine,
        LintReport,
        lint_world,
        render_catalogue,
        render_report,
        self_test,
    )

    def emit(text: str) -> None:
        if args.out:
            with open(args.out, "w") as stream:
                stream.write(text)
        else:
            sys.stdout.write(text)

    if args.rules:
        emit(render_catalogue() + "\n")
        return 0

    if args.self_test:
        ok, text = self_test()
        emit(text + "\n")
        return 0 if ok else 1

    if args.corpus:
        summary = lint_world(
            config=WorldConfig(n_responders=args.responders,
                               certs_per_responder=args.certs,
                               seed=_seed(args)),
            reference_time=args.reference_time,
        )
        if args.format == "json":
            document = {"schema": "repro-lint-corpus/1", **summary.to_dict()}
            emit(json.dumps(document, indent=2, sort_keys=True) + "\n")
        elif args.format == "sarif":
            emit(render_report(summary.report, "sarif"))
        else:
            percents = summary.figure5_percent()
            lines = [
                f"corpus lint @ t={summary.reference_time}: "
                f"{summary.probes} probes, {summary.certificates} certificates, "
                f"{summary.crls} CRLs",
                "figure 5 (static): " + ", ".join(
                    f"{label} {percents[label]:.2f}%" for label in percents),
                f"unusable total: {summary.unusable_percent():.2f}%",
                f"agreement with verify_response: "
                f"{summary.agreement}/{summary.probes}",
            ]
            for disagreement in summary.disagreements:
                lines.append(f"  DISAGREE {disagreement.source}: "
                             f"lint={disagreement.lint_class} "
                             f"verify={disagreement.verify_class}")
            lines.append("findings by severity: " +
                         ", ".join(f"{k}={v}"
                                   for k, v in summary.report.by_severity().items()))
            emit("\n".join(lines) + "\n")
        return 0 if not summary.disagreements else 1

    if not args.paths:
        print("lint: provide paths, or one of --corpus / --self-test / --rules",
              file=sys.stderr)
        return 2

    reference = args.reference_time
    if reference is None:
        reference = MEASUREMENT_START
    engine = LintEngine(LintContext(reference_time=reference))
    report = LintReport(reference_time=reference)
    for path in args.paths:
        try:
            partial = engine.lint_path(path, kind=args.kind)
        except OSError as exc:
            print(f"lint: cannot read {path}: {exc.strerror or exc}",
                  file=sys.stderr)
            return 2
        report.artifacts += partial.artifacts
        report.extend(partial.findings)
    report.sort()
    emit(render_report(report, args.format))
    return 0 if report.clean else 1


def _cmd_hostile(args: argparse.Namespace) -> int:
    """Generate (and classify) seeded structure-aware DER mutants."""
    import json
    import os

    from .core import render_table
    from .hostile import KINDS, OUTCOMES, classify_mutant, mutate, seed_world

    seed = _seed(args)
    if args.reference_time is not None:
        world = seed_world(args.reference_time)
    else:
        world = seed_world()
    kinds = list(KINDS) if args.kind == "all" else [args.kind]
    if args.out:
        os.makedirs(args.out, exist_ok=True)

    rows = []
    totals = {outcome: 0 for outcome in OUTCOMES}
    for kind in kinds:
        document = world.documents[kind]
        for mutation_id in range(args.count):
            mutant = mutate(document, mutation_id, seed, donors=world.donors)
            row = classify_mutant(kind, mutant.der, world)
            rows.append({"kind": kind, "mutation_id": mutation_id,
                         "family": mutant.family, **row})
            totals[row["outcome"]] += 1
            if args.out:
                name = f"{kind}-{mutation_id:05d}-{mutant.family}.der"
                with open(os.path.join(args.out, name), "wb") as stream:
                    stream.write(mutant.der)

    if args.format == "json":
        document = {"schema": "repro-hostile-mutate/1", "seed": seed,
                    "reference_time": world.reference_time,
                    "outcomes": totals, "rows": rows}
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        table_rows = [[row["kind"], row["mutation_id"], row["family"],
                       row["outcome"], row["error_class"] or "-", row["size"]]
                      for row in rows]
        print(render_table(
            ["kind", "id", "family", "outcome", "error class", "bytes"],
            table_rows,
            title=f"Hostile corpus (seed {seed}, {len(rows)} mutants)"))
        print("outcomes: " + ", ".join(
            f"{outcome}={count}" for outcome, count in totals.items()))
    if args.out:
        print(f"wrote {len(rows)} mutants to {args.out}", file=sys.stderr)
    # A mutant escaping the taxonomy means a parser bug: fail loudly.
    return 0 if totals["unexpected_exception"] == 0 else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    """Artifact-cache maintenance: stats, integrity verify, gc."""
    from .runtime import ArtifactCache
    cache = ArtifactCache(root=args.cache_dir)
    if args.action == "stats":
        stats = cache.stats()
        print(f"cache root: {stats.root}")
        print(f"entries: {stats.entries} ({stats.bytes} bytes, "
              f"{stats.rows} rows)")
        print(f"quarantined: {stats.corrupt_entries} "
              f"({stats.corrupt_bytes} bytes)")
        return 0
    if args.action == "verify":
        report = cache.verify()
        print(f"checked {report.checked} entries: {report.ok} ok, "
              f"{len(report.corrupt)} corrupt")
        for key in report.corrupt:
            print(f"  corrupt (quarantined): {key}")
        return 0 if report.clean else 1
    # gc
    now = None
    if args.max_age is not None:
        from .runtime.dist import now_s
        now = now_s()
    removed, freed = cache.gc(everything=args.all, max_age_s=args.max_age,
                              dry_run=args.dry_run, now=now)
    scope = "all entries" if args.all else "quarantined entries"
    if args.max_age is not None:
        scope += f" older than {args.max_age:g}s"
    verb = "would remove" if args.dry_run else "removed"
    print(f"gc ({scope}): {verb} {removed} files, "
          f"{'freeing' if args.dry_run else 'freed'} {freed} bytes")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """Execute shards from a job-queue directory (``--queue-dir``) or
    a TCP coordinator (``--connect``) until the coordinator stops the
    fleet (or the idle/job limits hit)."""
    from .runtime import ArtifactCache
    from .runtime.dist import QueueWorker

    if bool(args.queue_dir) == bool(args.connect):
        print("worker: exactly one of --queue-dir or --connect is "
              "required", file=sys.stderr)
        return 2
    cache = None
    if not args.no_cache:
        cache = ArtifactCache(root=args.cache_dir)
    events = None
    stream = None
    if args.events:
        from .monitor import EventLogWriter
        stream = open(args.events, "w", encoding="ascii")
        events = EventLogWriter(stream, meta={"source": "repro worker",
                                              "worker": args.id})
    if args.connect:
        from .runtime.sock import SocketWorker, parse_address
        try:
            host, port = parse_address(args.connect)
        except ValueError as exc:
            print(f"worker: {exc}", file=sys.stderr)
            if stream is not None:
                stream.close()
            return 2
        worker: Any = SocketWorker(host, port, args.id, cache=cache,
                                   events=events,
                                   reconnect_limit=args.reconnect)
    else:
        worker = QueueWorker(args.queue_dir, args.id, cache=cache,
                             poll_s=args.poll, events=events)
    try:
        executed = worker.run(max_jobs=args.max_jobs,
                              idle_exit_s=args.idle_exit)
    except KeyboardInterrupt:
        print(f"worker {args.id}: interrupted", file=sys.stderr)
        return 130
    finally:
        if stream is not None:
            stream.close()
    print(f"worker {args.id}: executed {executed} shard(s)",
          file=sys.stderr)
    return 0


def _cmd_issue(args: argparse.Namespace) -> int:
    from .ca import CertificateAuthority
    from .crypto import generate_keypair
    from .x509.pem import chain_to_pem
    now = MEASUREMENT_START
    ca = CertificateAuthority.create_root(
        "Demo CA", f"http://ocsp.demo.test", not_before=now - 365 * DAY)
    leaf = ca.issue_leaf(args.domain, generate_keypair(512, rng=_seed(args)),
                         not_before=now, must_staple=args.must_staple)
    sys.stdout.write(chain_to_pem([leaf, ca.certificate]))
    print(f"issued {args.domain} "
          f"(must-staple={'yes' if leaf.must_staple else 'no'}, "
          f"serial={leaf.serial_number})", file=sys.stderr)
    return 0


def _serve_world(args: argparse.Namespace):
    """The (world, now) a serve/loadgen invocation operates on."""
    from .datasets import MeasurementWorld, WorldConfig
    world = MeasurementWorld(WorldConfig(n_responders=args.responders,
                                         certs_per_responder=args.certs,
                                         seed=_seed(args)))
    now = args.now if args.now is not None else world.config.start + HOUR
    return world, now


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the asyncio OCSP responder daemon over a simulated world."""
    import asyncio

    from .serve import ServeApp, ServeDaemon

    world, now = _serve_world(args)
    app = ServeApp.for_world(world, now=now,
                             cache_capacity=args.cache_capacity,
                             max_batch=args.max_batch)
    access_log = None
    if args.access_log:
        from .monitor import EventLogWriter
        access_log = open(args.access_log, "w", encoding="ascii")
        writer = EventLogWriter(access_log, meta={
            "source": "repro serve", "seed": _seed(args), "now": now,
            "responders": args.responders, "certs": args.certs})
        app.access_sink = writer.emit
    daemon = ServeDaemon(app, host=args.host, port=args.port)

    async def serve() -> None:
        host, port = await daemon.start()
        print(f"serving {len(app.runtimes)} responders on "
              f"http://{host}:{port} (simulated now={now}, seed="
              f"{_seed(args)}); control: /-/healthz /-/stats",
              file=sys.stderr)
        await daemon.serve_forever()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("serve: shutting down", file=sys.stderr)
    finally:
        if access_log is not None:
            print(f"serve: {app.access_events} access events in "
                  f"{args.access_log}", file=sys.stderr)
            access_log.close()
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Replay seeded corpus traffic against a daemon (or in-process)."""
    from .serve import (
        ServeApp,
        direct_responses,
        expected_digest,
        loadgen_gate,
        replay_inprocess,
        replay_tcp,
        synthesize_traffic,
    )

    world, now = _serve_world(args)
    traffic = synthesize_traffic(world, args.requests, seed=_seed(args),
                                 get_fraction=args.get_fraction,
                                 nonce_fraction=args.nonce_fraction)
    if args.inprocess:
        app = ServeApp.for_world(world, now=now,
                                 max_batch=args.max_batch)
        report = replay_inprocess(app, traffic)
    else:
        try:
            report = replay_tcp(args.host, args.port, traffic,
                                concurrency=args.concurrency)
        except ConnectionError as exc:
            print(f"loadgen: cannot reach {args.host}:{args.port}: {exc} "
                  f"(start 'repro serve' with the same --seed/--responders/"
                  f"--certs/--now first)", file=sys.stderr)
            return 2
    summary = report.summary()
    print(f"{summary['requests']} requests in {summary['duration_s']:.3f}s: "
          f"{summary['req_per_s']:.0f} req/s")
    print(f"latency p50 {summary['p50_ms']:.3f} ms, "
          f"p99 {summary['p99_ms']:.3f} ms")
    print("status counts: " + ", ".join(
        f"{code}={count}" for code, count in summary["status_counts"].items()))
    print(f"body digest: {report.body_digest}")
    expected = None
    if not args.no_verify:
        expected = expected_digest(direct_responses(world, traffic, now))
    problems = loadgen_gate(report, expected=expected)
    if not problems:
        if expected is not None:
            print("byte-identity vs in-process responder core: OK")
        return 0
    for problem in problems:
        print(f"loadgen: GATE FAILED: {problem}", file=sys.stderr)
    if expected is not None and report.body_digest != expected:
        print("loadgen: is the daemon serving the same "
              "--seed/--responders/--certs/--now?", file=sys.stderr)
    return 1


def _cmd_monitor(args: argparse.Namespace) -> int:
    """Replay, tail, or summarize a monitor event log."""
    import json

    from .canon import canonical, stable_digest
    from .monitor import (
        WindowedAggregate,
        convergence,
        default_reducers,
        iter_events,
        read_header,
    )

    try:
        with open(args.log, "r", encoding="ascii") as stream:
            header = read_header(stream)
            events = list(iter_events(stream))
    except (OSError, ValueError) as exc:
        print(f"monitor: cannot read {args.log}: {exc}", file=sys.stderr)
        return 2
    meta = header.get("meta", {})

    if args.action == "summarize":
        by_kind: dict = {}
        for event in events:
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
        print(f"{args.log}: {len(events)} events")
        if meta:
            print("meta: " + ", ".join(
                f"{name}={value}" for name, value in sorted(meta.items())))
        if events:
            print(f"event-time span: {min(e.ts for e in events)} .. "
                  f"{max(e.ts for e in events)}")
        for kind, count in sorted(by_kind.items()):
            print(f"  {kind}: {count}")
        return 0

    reducers = default_reducers()

    if args.action == "tail":
        reducer = reducers[args.reducer]
        window = WindowedAggregate(reducer, width=args.window,
                                   allowed_lateness=args.lateness)

        def render(closed) -> None:
            print(f"[{closed.start} .. {closed.end}) {closed.events:>6} "
                  f"events  {stable_digest(closed.result)}")
            if args.json:
                print(json.dumps(canonical(closed.result), sort_keys=True))

        for event in events:
            for closed in window.observe(event):
                render(closed)
        for closed in window.flush():
            render(closed)
        counters = window.counters()
        print(", ".join(f"{name}={counters[name]}"
                        for name in ("events", "late_events",
                                     "closed_windows", "watermark")))
        return 0

    # replay: every reducer over the whole log, plus (optionally) the
    # partitioned-merge convergence gate.
    document = {"log": args.log, "events": len(events), "aggregates": {}}
    diverged = []
    for name in sorted(reducers):
        reducer = reducers[name]
        final = reducer.finalize(reducer.reduce(events))
        document["aggregates"][name] = canonical(final)
        line = f"{name}: {stable_digest(final)}"
        if args.partitions > 1:
            check = convergence(events, reducer,
                                partitions=args.partitions,
                                scheme="round-robin")
            if check.converged:
                line += f"  (converges over {args.partitions} partitions)"
            else:
                diverged.append(name)
                line += (f"  DIVERGED: merged {check.merged_digest} != "
                         f"single {check.single_digest}")
        print(line)
    if args.json:
        print(json.dumps(document, sort_keys=True))
    if diverged:
        print(f"monitor: partitioned replay diverged from the "
              f"single-partition answer for: {', '.join(diverged)}",
              file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'Is the Web Ready for OCSP "
                    "Must-Staple?' (IMC 2018)",
    )
    parser.add_argument("--seed", type=int, default=None, dest="root_seed",
                        help=argparse.SUPPRESS)  # removed; rejected in main()
    commands = parser.add_subparsers(dest="command", required=True)

    # Shared flags: every command that can reach run_experiment() takes
    # the same runtime knobs; seed-only commands take just --seed.
    seed_flags = argparse.ArgumentParser(add_help=False)
    seed_flags.add_argument("--seed", type=int, default=None,
                            help=f"RNG seed (default {_DEFAULT_SEED})")
    runtime_flags = argparse.ArgumentParser(add_help=False,
                                            parents=[seed_flags])
    runtime_flags.add_argument("--workers", type=int, default=1,
                               help="shard worker processes (output is "
                                    "identical at any count)")
    runtime_flags.add_argument("--cache-dir", default=None,
                               help="artifact cache directory (default: "
                                    "$REPRO_CACHE_DIR or "
                                    "~/.cache/repro-experiments)")
    runtime_flags.add_argument("--no-cache", action="store_true",
                               help="disable the artifact cache")

    run = commands.add_parser(
        "run", parents=[runtime_flags],
        help="run any registered experiment via the unified runtime")
    run.add_argument("experiment_id", metavar="experiment",
                     help="registry id, e.g. fig3 (see 'repro experiments')")
    run.add_argument("--scale", choices=["small", "full"], default="small")
    run.add_argument("--json", action="store_true",
                     help="print the full result document as JSON")
    run.add_argument("--supervise", action="store_true",
                     help="crash-tolerant executor: per-shard cache "
                          "persistence, worker restarts, retries, and a "
                          "run manifest (resumable after interruption)")
    run.add_argument("--allow-partial", action="store_true",
                     help="with --supervise: finish in degraded mode when "
                          "shards are quarantined (exit code 3)")
    run.add_argument("--shard-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="with --supervise: kill and retry shards that "
                          "run longer than this")
    run.add_argument("--retries", type=int, default=2,
                     help="with --supervise: extra attempts per shard "
                          "beyond the first (default 2)")
    run.add_argument("--transport", choices=["pipe", "jobqueue",
                                             "socket"],
                     default="pipe",
                     help="shard transport: pipe (in-process worker "
                          "pool, default), jobqueue (filesystem job "
                          "queue drained by 'repro worker' processes), "
                          "or socket (TCP coordinator that 'repro "
                          "worker --connect' workers dial; no shared "
                          "filesystem needed); jobqueue/socket imply "
                          "--supervise")
    run.add_argument("--queue-dir", default=None, metavar="DIR",
                     help="with --transport jobqueue: the shared queue "
                          "directory")
    run.add_argument("--listen", default="127.0.0.1:0",
                     metavar="HOST:PORT",
                     help="with --transport socket: the address to "
                          "bind (default 127.0.0.1:0 — an ephemeral "
                          "port the spawned fleet is pointed at)")
    run.add_argument("--no-spawn", action="store_true",
                     help="with --transport jobqueue/socket: do not "
                          "spawn a local worker fleet; externally "
                          "started 'repro worker' processes do the "
                          "work")
    run.add_argument("--lease", type=float, default=2.0,
                     metavar="SECONDS",
                     help="with --transport jobqueue/socket: lease "
                          "duration; a dead worker is detected within "
                          "about one lease (default 2.0)")
    run.set_defaults(func=_cmd_run)

    readiness = commands.add_parser("readiness", parents=[runtime_flags],
                                    help="the Section-8 verdict")
    readiness.add_argument("--responders", type=int, default=70)
    readiness.add_argument("--days", type=int, default=3)
    readiness.set_defaults(func=_cmd_readiness)

    browsers = commands.add_parser("browsers", help="Table 2")
    browsers.set_defaults(func=_cmd_browsers)

    servers = commands.add_parser("servers", help="Table 3")
    servers.set_defaults(func=_cmd_servers)

    scan = commands.add_parser("scan", parents=[runtime_flags],
                               help="run a measurement campaign")
    scan.add_argument("--responders", type=int, default=70)
    scan.add_argument("--certs", type=int, default=1)
    scan.add_argument("--days", type=int, default=7)
    scan.add_argument("--interval", type=int, default=6, help="hours between scans")
    scan.add_argument("--out", help="write JSON-lines here (default: stdout)")
    scan.add_argument("--events", default=None, metavar="PATH",
                      help="also write the campaign as a monitor event "
                           "log ('repro monitor' reads this)")
    scan.set_defaults(func=_cmd_scan)

    analyze = commands.add_parser(
        "analyze", parents=[runtime_flags],
        help="report over a saved scan, or (with --strict/--contract/"
             "--graph) the whole-program effect & purity analyzer")
    analyze.add_argument("scan_file", nargs="?", default=None,
                         help="saved scan (default: run the fig3 campaign); "
                              "a directory selects the static analyzer "
                              "and is used as its source root")
    analyze.add_argument("--responders", type=int, default=70)
    analyze.add_argument("--certs", type=int, default=1)
    analyze.add_argument("--days", type=int, default=7)
    analyze.add_argument("--interval", type=int, default=6,
                         help="hours between scans (no-file mode)")
    analyze.add_argument("--strict", action="store_true",
                         help="static analyzer: exit 1 on ANY finding, "
                              "warnings included")
    analyze.add_argument("--contract", action="store_true",
                         help="static analyzer: print the purity-contract "
                              "certification table")
    analyze.add_argument("--graph", metavar="FILE", default=None,
                         help="static analyzer: dump the call graph + "
                              "effect map as JSON to FILE")
    analyze.add_argument("--format", choices=["text", "json", "sarif"],
                         default="text",
                         help="static analyzer report format")
    analyze.set_defaults(func=_cmd_analyze)

    audit = commands.add_parser("audit", parents=[seed_flags],
                                help="CRL vs OCSP cross-check")
    audit.add_argument("--scale", type=int, default=200)
    audit.set_defaults(func=_cmd_audit)

    experiments = commands.add_parser("experiments", help="the experiment index")
    experiments.set_defaults(func=_cmd_experiments)

    scenarios = commands.add_parser(
        "scenarios", help="fault-scenario and client-policy catalogues")
    scenarios.set_defaults(func=_cmd_scenarios)

    issue = commands.add_parser("issue", parents=[seed_flags],
                                help="mint a demo certificate chain")
    issue.add_argument("domain")
    issue.add_argument("--must-staple", action="store_true")
    issue.set_defaults(func=_cmd_issue)

    lint = commands.add_parser(
        "lint", parents=[seed_flags],
        help="static conformance analysis (certificates/OCSP/CRLs)")
    lint.add_argument("paths", nargs="*",
                      help="PEM bundles or raw DER files to lint")
    lint.add_argument("--kind", choices=["auto", "certificate", "ocsp", "crl"],
                      default="auto",
                      help="artifact kind for raw DER (default: sniff)")
    lint.add_argument("--format", choices=["text", "json", "sarif"],
                      default="text", help="report format")
    lint.add_argument("--reference-time", type=int, default=None,
                      help="POSIX 'now' for freshness rules "
                           "(default: measurement start)")
    lint.add_argument("--corpus", action="store_true",
                      help="batch-lint the synthetic responder corpus "
                           "(static Figure 5)")
    lint.add_argument("--responders", type=int, default=40,
                      help="corpus size for --corpus")
    lint.add_argument("--certs", type=int, default=1,
                      help="certificates per responder for --corpus")
    lint.add_argument("--self-test", action="store_true", dest="self_test",
                      help="mint a known-good chain and assert a clean lint")
    lint.add_argument("--rules", action="store_true",
                      help="print the rule catalogue and exit")
    lint.add_argument("--out", help="write the report here instead of stdout")
    lint.set_defaults(func=_cmd_lint)

    hostile = commands.add_parser(
        "hostile", parents=[seed_flags],
        help="seeded structure-aware DER mutation (hostile corpus)")
    hostile.add_argument("action", choices=["mutate"],
                         help="mutate: generate and classify seeded mutants")
    hostile.add_argument("--kind",
                         choices=["all", "certificate", "ocsp", "crl"],
                         default="all", help="seed document kind")
    hostile.add_argument("--count", type=int, default=24,
                         help="mutants per kind (default 24)")
    hostile.add_argument("--out", default=None, metavar="DIR",
                         help="also write each mutant's DER into this "
                              "directory")
    hostile.add_argument("--format", choices=["table", "json"],
                         default="table", help="report format")
    hostile.add_argument("--reference-time", type=int, default=None,
                         help="POSIX 'now' for the seed world "
                              "(default: measurement start + 1 day)")
    hostile.set_defaults(func=_cmd_hostile)

    cache = commands.add_parser(
        "cache", help="artifact-cache maintenance")
    cache.add_argument("action", choices=["stats", "verify", "gc"],
                       help="stats: totals; verify: integrity-check every "
                            "entry (corrupt ones are quarantined); gc: "
                            "delete quarantined entries")
    cache.add_argument("--cache-dir", default=None,
                       help="cache root (default: $REPRO_CACHE_DIR or "
                            "~/.cache/repro-experiments)")
    cache.add_argument("--all", action="store_true",
                       help="gc: also delete every live entry")
    cache.add_argument("--max-age", type=float, default=None,
                       metavar="SECONDS",
                       help="gc: only remove quarantined entries older "
                            "than this (default: all of them)")
    cache.add_argument("--dry-run", action="store_true",
                       help="gc: report what would be removed without "
                            "deleting anything")
    cache.set_defaults(func=_cmd_cache)

    worker = commands.add_parser(
        "worker",
        help="execute shards from a job-queue directory or a TCP "
             "coordinator (see 'repro run --transport "
             "jobqueue/socket')")
    worker.add_argument("--queue-dir", default=None, metavar="DIR",
                        help="the shared queue directory (filesystem "
                             "transport; exactly one of --queue-dir / "
                             "--connect)")
    worker.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="dial a socket coordinator instead of "
                             "polling a queue directory")
    worker.add_argument("--reconnect", type=int, default=8,
                        metavar="N",
                        help="with --connect: consecutive failed "
                             "dials before giving the coordinator up "
                             "for dead (default 8, capped exponential "
                             "backoff between dials)")
    worker.add_argument("--id", default="worker", metavar="NAME",
                        help="worker id recorded in leases and result "
                             "envelopes (default: worker)")
    worker.add_argument("--cache-dir", default=None,
                        help="artifact cache directory (default: "
                             "$REPRO_CACHE_DIR or "
                             "~/.cache/repro-experiments)")
    worker.add_argument("--no-cache", action="store_true",
                        help="disable the artifact cache")
    worker.add_argument("--poll", type=float, default=0.05,
                        metavar="SECONDS",
                        help="idle poll cadence (default 0.05)")
    worker.add_argument("--max-jobs", type=int, default=None,
                        help="exit after executing this many shards")
    worker.add_argument("--idle-exit", type=float, default=None,
                        metavar="SECONDS",
                        help="exit after this long with nothing "
                             "claimable (default: wait for the stop "
                             "marker)")
    worker.add_argument("--events", default=None, metavar="PATH",
                        help="write worker lifecycle events as a "
                             "monitor event log ('repro monitor' "
                             "reads this)")
    worker.set_defaults(func=_cmd_worker)

    inspect = commands.add_parser("inspect",
                                  help="asn1parse-style dump of a PEM/DER file")
    inspect.add_argument("path")
    inspect.add_argument("--max-lines", type=int, default=200)
    inspect.set_defaults(func=_cmd_inspect)

    figures = commands.add_parser(
        "figures", parents=[runtime_flags],
        help="write every figure/table's data files")
    figures.add_argument("--out", default="results")
    figures.add_argument("--scale", choices=["small", "full"],
                         default="small",
                         help="small (seconds) or full (benchmark scale)")
    figures.add_argument("--full", action="store_true",
                         help=argparse.SUPPRESS)  # removed; rejected with hint
    figures.set_defaults(func=_cmd_figures)

    serve = commands.add_parser(
        "serve", parents=[seed_flags],
        help="asyncio OCSP-over-HTTP responder daemon (simulated world)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8688,
                       help="listen port (0 = ephemeral; default 8688)")
    serve.add_argument("--responders", type=int, default=20)
    serve.add_argument("--certs", type=int, default=2,
                       help="certificates per responder")
    serve.add_argument("--now", type=int, default=None,
                       help="fixed simulated POSIX clock "
                            "(default: world start + 1h)")
    serve.add_argument("--cache-capacity", type=int, default=65536,
                       help="pre-signed cache entries per responder")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="signing micro-batch bound")
    serve.add_argument("--access-log", default=None, metavar="PATH",
                       help="write one MonitorEvent JSONL line per served "
                            "request ('repro monitor' reads this)")
    serve.set_defaults(func=_cmd_serve)

    loadgen = commands.add_parser(
        "loadgen", parents=[seed_flags],
        help="deterministic load generator against a daemon")
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=8688)
    loadgen.add_argument("--requests", type=int, default=4000)
    loadgen.add_argument("--concurrency", type=int, default=8,
                         help="keep-alive TCP connections")
    loadgen.add_argument("--responders", type=int, default=20)
    loadgen.add_argument("--certs", type=int, default=2,
                         help="certificates per responder")
    loadgen.add_argument("--now", type=int, default=None,
                         help="fixed simulated POSIX clock "
                              "(must match the daemon's)")
    loadgen.add_argument("--get-fraction", type=float, default=0.25,
                         help="fraction preferring RFC 6960 A.1 GET")
    loadgen.add_argument("--nonce-fraction", type=float, default=0.02,
                         help="fraction carrying a cache-busting nonce")
    loadgen.add_argument("--max-batch", type=int, default=64,
                         help="signing micro-batch bound (--inprocess)")
    loadgen.add_argument("--inprocess", action="store_true",
                         help="replay through the serving app directly, "
                              "no daemon needed")
    loadgen.add_argument("--no-verify", action="store_true",
                         help="skip the byte-identity check against the "
                              "in-process responder core")
    loadgen.set_defaults(func=_cmd_loadgen)

    monitor = commands.add_parser(
        "monitor",
        help="replay/tail/summarize a monitor event log through the "
             "mergeable reducers")
    monitor.add_argument("action",
                         choices=["replay", "tail", "summarize"],
                         help="replay: all reducers over the whole log "
                              "(with a partitioned-merge convergence "
                              "gate); tail: stream through tumbling "
                              "event-time windows; summarize: header "
                              "and per-kind counts")
    monitor.add_argument("log", help="event log path (JSONL, written by "
                                     "'repro scan --events', 'repro serve "
                                     "--access-log', or write_events())")
    monitor.add_argument("--partitions", type=int, default=1,
                         help="replay: also reduce the log in N "
                              "round-robin partitions, merge, and exit "
                              "non-zero unless the result is "
                              "byte-identical")
    monitor.add_argument("--reducer", default="response-stats",
                         choices=["adoption", "availability", "freshness",
                                  "response-stats", "worker-lifecycle"],
                         help="tail: the reducer to window (default "
                              "response-stats)")
    monitor.add_argument("--window", type=int, default=43200,
                         help="tail: tumbling window width in simulated "
                              "seconds (default 12h)")
    monitor.add_argument("--lateness", type=int, default=0,
                         help="tail: allowed lateness before a window "
                              "closes, in simulated seconds")
    monitor.add_argument("--json", action="store_true",
                         help="also print full aggregates as JSON")
    monitor.set_defaults(func=_cmd_monitor)

    selftest = commands.add_parser(
        "selftest", parents=[seed_flags],
        help="responder self-test harness (Section 8 rec. #1)")
    selftest.add_argument("--responders", type=int, default=40)
    selftest.add_argument("--limit", type=int, default=40)
    selftest.add_argument("--verbose", action="store_true",
                          help="also print warning-only reports")
    selftest.set_defaults(func=_cmd_selftest)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "root_seed", None) is not None:
        print("repro: the root '--seed N' spelling was removed; "
              f"use 'repro {args.command} --seed {args.root_seed}'",
              file=sys.stderr)
        return 2
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
