"""The pre-signed response cache behind the serving hot path.

Entries are keyed by what the request *asks* — the CertID digest from
:meth:`repro.ocsp.OCSPRequest.cache_key` — with a second raw-DER index
in front so the warm path answers with two dict lookups and zero ASN.1
parsing.  Each entry carries the :class:`~repro.ocsp.ResponseArtifact`
the core signed plus the instant it stops being servable
(``valid_until``), so refresh is a pure comparison against the
simulated clock.

Freshness is strict: an entry whose ``valid_until`` *equals* the
current instant is already expired (the refresh fencepost — RFC 6960's
nextUpdate is the time at or before which newer information will be
available, so serving at exactly nextUpdate would hand out a response
the client is entitled to consider stale).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..ocsp import ResponseArtifact


@dataclass
class CacheEntry:
    """One pre-signed artifact plus its expiry conditions."""

    artifact: ResponseArtifact
    #: The first instant this entry may NOT be served (the artifact's
    #: nextUpdate); None never expires on the clock axis (static
    #: error/malformed bodies, blank nextUpdate).
    valid_until: Optional[int] = None
    #: The signing-epoch identity this entry was produced under; a
    #: lookup with a different epoch misses, forcing a re-sign with the
    #: new producedAt / revocation view.
    epoch: Tuple = ()

    def fresh(self, now: int) -> bool:
        """Servable at *now*?  Strictly ``now < valid_until``."""
        return self.valid_until is None or now < self.valid_until


@dataclass
class PresignedCache:
    """Two-level pre-signed response cache with hit/expiry accounting."""

    capacity: int = 65536
    hits: int = 0
    misses: int = 0
    expirations: int = 0
    evictions: int = 0
    _entries: Dict[bytes, CacheEntry] = field(default_factory=dict)
    #: Raw request DER -> entry key, so repeat wire requests skip the
    #: OCSPRequest parse entirely.
    _der_index: Dict[bytes, bytes] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, request_der: bytes, now: int,
            epoch: Tuple = ()) -> Optional[ResponseArtifact]:
        """The cached artifact for these request bytes, if servable:
        still clock-fresh AND signed under the same epoch."""
        key = self._der_index.get(request_der)
        entry = self._entries.get(key) if key is not None else None
        if entry is None:
            self.misses += 1
            return None
        if not entry.fresh(now) or entry.epoch != epoch:
            self.expirations += 1
            self.misses += 1
            del self._entries[key]
            return None
        self.hits += 1
        return entry.artifact

    def put(self, request_der: bytes, key: bytes,
            artifact: ResponseArtifact,
            valid_until: Optional[int],
            epoch: Tuple = ()) -> None:
        """Install a freshly signed artifact under its CertID key."""
        if len(self._entries) >= self.capacity and key not in self._entries:
            # Full: drop the whole generation rather than track LRU
            # order on the hot path (the daemon repopulates from the
            # live request stream within one epoch).
            self.evictions += len(self._entries)
            self._entries.clear()
            self._der_index.clear()
        self._entries[key] = CacheEntry(artifact, valid_until, epoch)
        self._der_index[request_der] = key

    def stats(self) -> Dict[str, int]:
        """JSON-ready counters."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "expirations": self.expirations,
            "evictions": self.evictions,
        }
