"""Deterministic load generator for the OCSP serving stack.

Traffic synthesis is a pure function of ``(world, seed)``: requests
are drawn from the world's scan targets with a seeded RNG, choosing
GET or POST per RFC 6960 appendix A.1 through the same
:func:`repro.simnet.ocsp_request` chooser real clients use.  The same
seed therefore replays the identical byte stream against the
in-process :class:`~repro.serve.app.ServeApp` and against a live
daemon over TCP — and because the report folds every response body
into one running digest, "the daemon answers byte-identically to the
in-process responder" is a single string comparison.

Replay measures wall-clock latency (that is the *point* — the serving
stack is the system under test), which is why the replay functions
carry ``allow-effect[WALL_CLOCK]`` pragmas: timing columns are
measurements, not deterministic content.  Everything else in the
report (status counts, body digest, hit counts) is deterministic.
"""

from __future__ import annotations

import asyncio
import hashlib
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..simnet.http import HTTPRequest, ocsp_request


def synthesize_traffic(world, count: int, seed: int = 0,
                       get_fraction: float = 0.25,
                       nonce_fraction: float = 0.0) -> List[HTTPRequest]:
    """*count* requests drawn from the world's scan targets, seeded.

    ``get_fraction`` of requests prefer the GET transport (falling
    back to POST when the encoded request exceeds the 255-byte URL
    limit, exactly as clients do); ``nonce_fraction`` get a fresh
    random-but-seeded nonce, which defeats the pre-signed cache and so
    controls the miss rate of a load test.
    """
    from ..ocsp import OCSPRequest
    targets = world.scan_targets()
    if not targets:
        raise ValueError("world has no scan targets")
    rng = random.Random(seed)
    requests = []
    for _ in range(count):
        target = targets[rng.randrange(len(targets))]
        if nonce_fraction and rng.random() < nonce_fraction:
            der = OCSPRequest.for_single(
                target.cert_id, nonce=rng.getrandbits(64).to_bytes(8, "big")
            ).encode()
        else:
            der = target.request_der
        prefer_get = rng.random() < get_fraction
        requests.append(ocsp_request(target.site.url, der,
                                     prefer_get=prefer_get))
    return requests


@dataclass
class LoadReport:
    """What one replay saw: throughput, tail latency, and identity."""

    requests: int = 0
    duration_s: float = 0.0
    status_counts: Dict[int, int] = field(default_factory=dict)
    latencies_ms: List[float] = field(default_factory=list)
    #: SHA-256 over every response body, in request order — equal
    #: digests mean byte-identical response streams.
    body_digest: str = ""
    #: Requests that never got a complete response (dropped
    #: connections mid-replay); their bodies digest as empty, so any
    #: incomplete replay also breaks the identity digest — but this
    #: counter names the cause instead of leaving a bare mismatch.
    incomplete: int = 0

    @property
    def req_per_s(self) -> float:
        return self.requests / self.duration_s if self.duration_s else 0.0

    def percentile_ms(self, q: float) -> float:
        """Latency percentile (0 <= q <= 100), nearest-rank."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        rank = min(len(ordered) - 1, int(q / 100.0 * len(ordered)))
        return ordered[rank]

    def summary(self) -> Dict[str, object]:
        """JSON-ready condensation (drops the raw latency list)."""
        return {
            "requests": self.requests,
            "duration_s": round(self.duration_s, 6),
            "req_per_s": round(self.req_per_s, 1),
            "p50_ms": round(self.percentile_ms(50), 4),
            "p99_ms": round(self.percentile_ms(99), 4),
            "status_counts": {str(code): count for code, count
                              in sorted(self.status_counts.items())},
            "body_digest": self.body_digest,
            "incomplete": self.incomplete,
        }


def expected_digest(responses: Sequence[bytes]) -> str:
    """The body digest a replay of these responses should report."""
    digest = hashlib.sha256()
    for body in responses:
        digest.update(len(body).to_bytes(8, "big"))
        digest.update(body)
    return digest.hexdigest()


def replay_inprocess(app, requests: Sequence[HTTPRequest],  # repro: allow-effect[WALL_CLOCK] -- load replay measures serving latency; timing columns are measurements, not deterministic content
                     record_latency: bool = True) -> LoadReport:
    """Replay through :meth:`ServeApp.exchange`, timing each request."""
    report = LoadReport(requests=len(requests))
    digest = hashlib.sha256()
    started = time.perf_counter()
    for request in requests:
        t0 = time.perf_counter()
        response = app.exchange(request)
        if record_latency:
            report.latencies_ms.append((time.perf_counter() - t0) * 1e3)
        report.status_counts[response.status_code] = \
            report.status_counts.get(response.status_code, 0) + 1
        digest.update(len(response.body).to_bytes(8, "big"))
        digest.update(response.body)
    report.duration_s = time.perf_counter() - started
    report.body_digest = digest.hexdigest()
    return report


def direct_responses(world, requests: Sequence[HTTPRequest],
                     now: int) -> List[bytes]:
    """Ground truth: each request answered by the in-process core."""
    from ..simnet.http import ocsp_http_exchange
    by_host = {site.hostname: site.responder for site in world.sites}
    bodies = []
    for request in requests:
        bodies.append(ocsp_http_exchange(
            by_host[request.host], request, now).body)
    return bodies


# -- TCP replay ---------------------------------------------------------------

def render_request(request: HTTPRequest) -> bytes:
    """Serialize one HTTP/1.1 request for the wire (keep-alive)."""
    head = (f"{request.method} {request.path or '/'} HTTP/1.1\r\n"
            f"Host: {request.host}\r\n"
            f"Content-Length: {len(request.body)}\r\n")
    for name, value in request.headers.items():
        head += f"{name}: {value}\r\n"
    return head.encode("latin-1") + b"\r\n" + request.body


async def _read_response(reader: asyncio.StreamReader):
    header_block = await reader.readuntil(b"\r\n\r\n")
    lines = header_block[:-4].decode("latin-1").split("\r\n")
    status_code = int(lines[0].split(" ", 2)[1])
    length = 0
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    body = await reader.readexactly(length) if length else b""
    return status_code, body


async def _dial(host: str, port: int, attempts: int = 40):
    """Open a connection, retrying refusals with deterministic backoff.

    A daemon that was *just* spawned may not be listening yet; racing
    its bind with a bare ``open_connection`` makes every load replay a
    coin flip.  The backoff schedule is the socket transport's
    (:func:`repro.runtime.sock.connect_backoff`) — pure in the attempt
    ordinal, so retry pacing never adds nondeterminism.
    """
    from ..runtime.sock import connect_backoff

    for attempt in range(attempts):
        try:
            return await asyncio.open_connection(host, port)
        except (ConnectionRefusedError, ConnectionAbortedError,
                ConnectionResetError):
            if attempt == attempts - 1:
                raise
            await asyncio.sleep(connect_backoff(attempt))
    raise ConnectionRefusedError(f"{host}:{port} never accepted")


async def _worker(host: str, port: int, requests: Sequence[HTTPRequest],  # repro: allow-effect[WALL_CLOCK] -- load replay measures serving latency over TCP
                  statuses: List[int], bodies: List[Optional[bytes]],
                  latencies: List[float], indices: Sequence[int]) -> None:
    reader, writer = await _dial(host, port)
    try:
        for index in indices:
            t0 = time.perf_counter()
            writer.write(render_request(requests[index]))
            await writer.drain()
            status_code, body = await _read_response(reader)
            latencies.append((time.perf_counter() - t0) * 1e3)
            statuses[index] = status_code
            bodies[index] = body
    finally:
        writer.close()


def replay_tcp(host: str, port: int, requests: Sequence[HTTPRequest],
               concurrency: int = 8) -> LoadReport:
    """Replay against a live daemon over *concurrency* keep-alive
    connections; bodies are digested in request order so the report is
    comparable with an in-process replay of the same traffic."""

    async def main() -> float:  # repro: allow-effect[WALL_CLOCK] -- load replay measures serving latency over TCP
        statuses[:] = [0] * len(requests)
        bodies[:] = [None] * len(requests)
        lanes = [list(range(lane, len(requests), concurrency))
                 for lane in range(concurrency)]
        started = time.perf_counter()
        await asyncio.gather(*(
            _worker(host, port, requests, statuses, bodies,
                    latencies, lane)
            for lane in lanes if lane))
        return time.perf_counter() - started

    statuses: List[int] = []
    bodies: List[Optional[bytes]] = []
    latencies: List[float] = []
    duration = asyncio.run(main())
    report = LoadReport(requests=len(requests), duration_s=duration,
                        latencies_ms=latencies,
                        incomplete=sum(1 for body in bodies
                                       if body is None))
    for status_code in statuses:
        report.status_counts[status_code] = \
            report.status_counts.get(status_code, 0) + 1
    report.body_digest = expected_digest(
        [body if body is not None else b"" for body in bodies])
    return report


def loadgen_gate(report: LoadReport,
                 expected: Optional[str] = None) -> List[str]:
    """The hard CI gate: every reason this replay is not trustworthy.

    Empty list = clean replay.  Checks are structural (every request
    answered, every status 200) plus — when *expected* is given — the
    stream-digest identity against the in-process ground truth.  The
    CLI turns a non-empty list into a non-zero exit, so CI can rely on
    ``repro loadgen`` as a byte-identity check, not just a report.
    """
    problems = []
    if report.incomplete:
        problems.append(
            f"{report.incomplete} request(s) never got a complete "
            f"response (dropped connections)")
    bad_statuses = {code: count for code, count
                    in sorted(report.status_counts.items())
                    if code != 200}
    if bad_statuses:
        problems.append(
            "non-200 responses: " + ", ".join(
                f"{count}x {code}" for code, count in bad_statuses.items()))
    if expected is not None and report.body_digest != expected:
        problems.append(
            f"response stream digest mismatch: got "
            f"{report.body_digest}, expected {expected}")
    return problems
