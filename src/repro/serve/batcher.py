"""Micro-batched signing of cache misses.

RSA signing dominates a cache miss, and concurrent misses for the
*same* request would each pay it.  :class:`SignQueue` fixes both
without knowing anything about transports or event loops:

* **single-flight coalescing** — submissions sharing a key attach to
  one pending :class:`SignJob` instead of signing twice;
* **micro-batching** — :meth:`drain` resolves everything queued at
  that instant in FIFO batches of at most ``max_batch`` jobs, so one
  drain pass amortizes the per-wakeup overhead across every miss that
  arrived in the same scheduling tick.

The daemon wraps this with an asyncio future per job and schedules one
``drain()`` per event-loop tick; the synchronous in-process replay
path calls ``drain()`` inline.  Both see identical artifacts because
the thunk *is* the transport-neutral responder core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..ocsp import ResponseArtifact


@dataclass
class SignJob:
    """One pending signing, shared by every coalesced submitter."""

    key: Tuple
    thunk: Callable[[], ResponseArtifact]
    artifact: Optional[ResponseArtifact] = None
    done: bool = False
    #: Called with the job after it resolves (the daemon parks asyncio
    #: future completions here).
    callbacks: List[Callable[["SignJob"], None]] = field(default_factory=list)

    def resolve(self) -> None:
        self.artifact = self.thunk()
        self.done = True
        for callback in self.callbacks:
            callback(self)
        self.callbacks.clear()


@dataclass
class SignQueue:
    """FIFO signing queue with coalescing and bounded drain batches."""

    max_batch: int = 64
    submitted: int = 0
    coalesced: int = 0
    signed: int = 0
    batches: int = 0
    largest_batch: int = 0
    #: batch size -> number of drain batches of exactly that size.
    batch_sizes: Dict[int, int] = field(default_factory=dict)
    _pending: Dict[Tuple, SignJob] = field(default_factory=dict)
    _order: List[SignJob] = field(default_factory=list)

    def submit(self, key: Tuple,
               thunk: Callable[[], ResponseArtifact]) -> SignJob:
        """Enqueue a signing, coalescing onto an identical pending one."""
        self.submitted += 1
        job = self._pending.get(key)
        if job is not None:
            self.coalesced += 1
            return job
        job = SignJob(key=key, thunk=thunk)
        self._pending[key] = job
        self._order.append(job)
        return job

    @property
    def pending(self) -> int:
        return len(self._order)

    def drain(self) -> int:
        """Resolve every queued job, in FIFO micro-batches.

        Returns the number of jobs signed.  Jobs submitted *while*
        draining (from callbacks) are drained too — the queue is empty
        on return.
        """
        resolved = 0
        while self._order:
            batch = self._order[:self.max_batch]
            del self._order[:len(batch)]
            self.batches += 1
            self.largest_batch = max(self.largest_batch, len(batch))
            self.batch_sizes[len(batch)] = \
                self.batch_sizes.get(len(batch), 0) + 1
            for job in batch:
                del self._pending[job.key]
                job.resolve()
                resolved += 1
        self.signed += resolved
        return resolved

    def stats(self) -> Dict[str, object]:
        """JSON-ready counters (plus the batch-size histogram)."""
        return {
            "submitted": self.submitted,
            "coalesced": self.coalesced,
            "signed": self.signed,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "batch_sizes": {str(size): count for size, count
                            in sorted(self.batch_sizes.items())},
            "pending": self.pending,
        }
