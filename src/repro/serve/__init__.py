"""repro.serve — the OCSP responder daemon and its serving stack.

The transport-neutral responder core
(:meth:`repro.ca.responder.OCSPResponder.handle`) answers every
transport the repo has: the simulated network
(:func:`repro.simnet.ocsp_service`), this package's asyncio daemon,
and the in-process load generator.  :class:`ServeApp` adds what a real
responder deployment adds — Host routing, a pre-signed response cache
with nextUpdate-aware refresh, and micro-batched signing of misses —
without touching response bytes, so a daemon answer is byte-identical
to the simulated responder's answer for the same (request, clock).
"""

from .app import PendingSign, ResponderRuntime, ServeApp
from .batcher import SignJob, SignQueue
from .cache import CacheEntry, PresignedCache
from .daemon import MAX_BODY_BYTES, MAX_HEADER_BYTES, ServeDaemon
from .loadgen import (
    LoadReport,
    direct_responses,
    expected_digest,
    loadgen_gate,
    replay_inprocess,
    replay_tcp,
    synthesize_traffic,
)

__all__ = [
    "CacheEntry",
    "LoadReport",
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "PendingSign",
    "PresignedCache",
    "ResponderRuntime",
    "ServeApp",
    "ServeDaemon",
    "SignJob",
    "SignQueue",
    "direct_responses",
    "expected_digest",
    "loadgen_gate",
    "replay_inprocess",
    "replay_tcp",
    "synthesize_traffic",
]
