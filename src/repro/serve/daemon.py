"""The asyncio OCSP-over-HTTP daemon (stdlib only).

A thin HTTP/1.1 transport over :class:`~repro.serve.app.ServeApp`:
per-connection read loops parse requests (POST bodies and RFC 6960
appendix A.1 GET paths, keep-alive, pipelined clients), route on the
``Host`` header, and answer from the shared serving application.  The
daemon serves a **fixed simulated clock** — it is the measured thing,
not a measurement, so it never reads wall time; byte-identity with the
in-process responder holds because both see the same ``now``.

Cache misses are signed through the app's :class:`SignQueue`: each
miss parks on an asyncio future and schedules a single queue drain on
the event loop, so every miss that arrives in one scheduling tick is
signed in one micro-batch.

Robustness contract (exercised by the hostile-client tests): malformed
request lines, oversized headers or bodies, undecodable OCSP payloads,
and connections dropped mid-request must never take the daemon down —
each either gets a 4xx/OCSP-error answer or closes that connection
only.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

from ..simnet.http import HTTPRequest, HTTPResponse
from .app import PendingSign, ServeApp

#: Hard caps: one request's header block and body.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 64 * 1024

#: Reserved control-path prefix ("-" is not in the base64 alphabet, so
#: this can never collide with an OCSP GET path).
CONTROL_PREFIX = "/-/"


class ProtocolError(Exception):
    """A malformed HTTP request; carries the status to answer with."""

    def __init__(self, status_code: int, reason: bytes) -> None:
        super().__init__(reason.decode("ascii", "replace"))
        self.status_code = status_code
        self.reason = reason


def render_response(response: HTTPResponse, keep_alive: bool) -> bytes:
    """Serialize one HTTP/1.1 response."""
    reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
              405: "Method Not Allowed", 413: "Payload Too Large",
              431: "Request Header Fields Too Large"}.get(
                  response.status_code, "Error")
    lines = [f"HTTP/1.1 {response.status_code} {reason}".encode("ascii")]
    for name, value in response.headers.items():
        lines.append(f"{name}: {value}".encode("latin-1"))
    lines.append(b"Content-Length: %d" % len(response.body))
    lines.append(b"Connection: " +
                 (b"keep-alive" if keep_alive else b"close"))
    return b"\r\n".join(lines) + b"\r\n\r\n" + response.body


async def read_request(reader: asyncio.StreamReader
                       ) -> Optional[Tuple[str, str, str, bytes]]:
    """Read one request: (method, path, host, body); None on clean EOF.

    Raises :class:`ProtocolError` for anything malformed and lets
    connection-level exceptions (EOF mid-request, resets) propagate to
    the per-connection handler.
    """
    try:
        header_block = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise
    except asyncio.LimitOverrunError:
        raise ProtocolError(431, b"header block too large") from None
    if len(header_block) > MAX_HEADER_BYTES:
        raise ProtocolError(431, b"header block too large")
    try:
        text = header_block[:-4].decode("latin-1")
        request_line, *header_lines = text.split("\r\n")
        method, path, version = request_line.split(" ", 2)
    except ValueError:
        raise ProtocolError(400, b"bad request line") from None
    if not version.startswith("HTTP/1."):
        raise ProtocolError(400, b"unsupported protocol version")
    headers = {}
    for line in header_lines:
        name, separator, value = line.partition(":")
        if not separator:
            raise ProtocolError(400, b"bad header line")
        headers[name.strip().lower()] = value.strip()
    host = headers.get("host", "").partition(":")[0].lower()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(400, b"bad content-length") from None
    if length < 0:
        raise ProtocolError(400, b"bad content-length")
    if length > MAX_BODY_BYTES:
        raise ProtocolError(413, b"request body too large")
    body = await reader.readexactly(length) if length else b""
    return method, path, host, body


class ServeDaemon:
    """asyncio transport around a :class:`ServeApp`."""

    def __init__(self, app: ServeApp, host: str = "127.0.0.1",
                 port: int = 8688) -> None:
        self.app = app
        self.host = host
        self.port = port
        self.connections = 0
        self.protocol_errors = 0
        self.dropped_connections = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._drain_scheduled = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port,
            limit=MAX_HEADER_BYTES + MAX_BODY_BYTES)
        bound = self._server.sockets[0].getsockname()
        self.port = bound[1]
        return bound[0], bound[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- request handling ----------------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        keep_alive = True
        try:
            while keep_alive:
                try:
                    parsed = await read_request(reader)
                except ProtocolError as exc:
                    self.protocol_errors += 1
                    writer.write(render_response(
                        HTTPResponse(exc.status_code, exc.reason), False))
                    await writer.drain()
                    break
                if parsed is None:
                    break
                method, path, host, body = parsed
                response = await self._respond(method, path, host, body)
                writer.write(render_response(response, keep_alive))
                await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            # Client went away mid-request — drop this connection only.
            self.dropped_connections += 1
        except asyncio.CancelledError:
            # Daemon shutting down with this connection idle/in-flight.
            pass
        finally:
            writer.close()

    async def _respond(self, method: str, path: str, host: str,
                       body: bytes) -> HTTPResponse:
        if path.startswith(CONTROL_PREFIX):
            response = self._control(method, path)
            self.app.log_access(host or "unknown.invalid", method,
                                response.status_code,
                                len(response.body), "control")
            return response
        request = HTTPRequest(method=method,
                              url=f"http://{host or 'unknown.invalid'}{path}",
                              body=body)
        outcome = self.app.dispatch(request)
        if isinstance(outcome, HTTPResponse):
            response = outcome
            source = "cache" if outcome.status_code == 200 else "error"
        else:
            response = await self._sign(outcome)
            source = "signed"
        self.app.log_access(request.host, method,
                            response.status_code, len(response.body),
                            source)
        return response

    async def _sign(self, pending: PendingSign) -> HTTPResponse:
        """Park on the signing queue; one drain per event-loop tick."""
        job = self.app.queue.submit(pending.queue_key(), pending.signer())
        if job.done:
            assert job.artifact is not None
            return job.artifact.to_http()
        loop = asyncio.get_event_loop()
        future = loop.create_future()
        job.callbacks.append(
            lambda finished: future.done() or future.set_result(None))
        if not self._drain_scheduled:
            self._drain_scheduled = True
            loop.call_soon(self._drain)
        await future
        assert job.artifact is not None
        return job.artifact.to_http()

    def _drain(self) -> None:
        self._drain_scheduled = False
        self.app.queue.drain()

    def _control(self, method: str, path: str) -> HTTPResponse:
        """The daemon's own endpoints: /-/healthz and /-/stats."""
        if method != "GET":
            return HTTPResponse(405, b"method not allowed")
        if path == "/-/healthz":
            return HTTPResponse(200, b"ok",
                                {"Content-Type": "text/plain"})
        if path == "/-/stats":
            stats = dict(self.app.stats())
            stats["daemon"] = {
                "connections": self.connections,
                "protocol_errors": self.protocol_errors,
                "dropped_connections": self.dropped_connections,
            }
            return HTTPResponse(
                200, json.dumps(stats, sort_keys=True).encode("ascii"),
                {"Content-Type": "application/json"})
        return HTTPResponse(404, b"unknown control path")
