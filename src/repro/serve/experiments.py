"""The ``serve-loadtest`` experiment: identity plus throughput.

Two shard kinds over the same seeded traffic stream:

* **identity shards** (pure) — contiguous request ranges replayed
  through the daemon's :class:`~repro.serve.app.ServeApp` and, for the
  same bytes and simulated clock, through the in-process
  :func:`~repro.simnet.ocsp_http_exchange`; each row records the
  per-range match count and both body digests, so "the daemon path is
  byte-identical to the simulated responder" merges byte-identically
  at any worker count;
* **one throughput shard** (WALL_CLOCK-pragma'd, like the keysize
  ablation) — warms the pre-signed cache with one replay, then times a
  second, emitting req/s, p50/p99 latency, and the cache hit rate.
  Timing columns are measurements: cached rows keep the numbers of the
  run that produced them.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..canon import split_ranges

_WORKERS = "repro.serve.experiments"

#: Histogram bucket upper bounds, in milliseconds (the last bucket is
#: open-ended).
LATENCY_BUCKETS_MS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0)


def _world_and_traffic(payload: Dict[str, Any]):
    from ..datasets.world import MeasurementWorld, WorldConfig
    from .loadgen import synthesize_traffic
    world = MeasurementWorld(WorldConfig.from_dict(payload["world"]))
    traffic = synthesize_traffic(world, payload["requests"],
                                 seed=payload["seed"],
                                 get_fraction=payload["get_fraction"],
                                 nonce_fraction=payload["nonce_fraction"])
    return world, traffic


# ---------------------------------------------------------------------------
# shard workers
# ---------------------------------------------------------------------------

def serve_identity_shard(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Replay one request range both ways; count byte mismatches."""
    from ..simnet.clock import HOUR
    from .app import ServeApp
    from .loadgen import direct_responses, expected_digest
    world, traffic = _world_and_traffic(payload)
    now = world.config.start + HOUR
    window = traffic[payload["lo"]:payload["hi"]]
    app = ServeApp.for_world(world, now=now,
                             max_batch=payload["max_batch"])
    served = [app.exchange(request).body for request in window]
    direct = direct_responses(world, window, now)
    mismatches = sum(1 for s, d in zip(served, direct) if s != d)
    stats = app.stats()
    return [{
        "kind": "identity",
        "lo": payload["lo"], "hi": payload["hi"],
        "requests": len(window),
        "mismatches": mismatches,
        "served_digest": expected_digest(served),
        "direct_digest": expected_digest(direct),
        "cache_hits": stats["cache"]["hits"],
        "cache_misses": stats["cache"]["misses"],
        "signed": stats["batcher"]["signed"],
        "coalesced": stats["batcher"]["coalesced"],
    }]


def serve_throughput_shard(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Warm-cache replay of the whole stream, timed per request.

    The wall-clock timing lives in :func:`repro.serve.loadgen
    .replay_inprocess`, which carries the ``allow-effect[WALL_CLOCK]``
    grant; timing columns are measurements, not deterministic content.
    """
    from ..simnet.clock import HOUR
    from .app import ServeApp
    from .loadgen import replay_inprocess
    world, traffic = _world_and_traffic(payload)
    now = world.config.start + HOUR
    app = ServeApp.for_world(world, now=now,
                             max_batch=payload["max_batch"])
    replay_inprocess(app, traffic, record_latency=False)  # warm
    report = replay_inprocess(app, traffic)
    stats = app.stats()
    cache = stats["cache"]
    lookups = cache["hits"] + cache["misses"]
    histogram = [0] * (len(LATENCY_BUCKETS_MS) + 1)
    for latency in report.latencies_ms:
        for bucket, bound in enumerate(LATENCY_BUCKETS_MS):
            if latency <= bound:
                histogram[bucket] += 1
                break
        else:
            histogram[-1] += 1
    return [{
        "kind": "throughput",
        "requests": report.requests,
        "duration_s": round(report.duration_s, 6),
        "req_per_s": round(report.req_per_s, 1),
        "p50_ms": round(report.percentile_ms(50), 4),
        "p99_ms": round(report.percentile_ms(99), 4),
        "latency_histogram": histogram,
        "status_counts": {str(code): count for code, count
                          in sorted(report.status_counts.items())},
        "body_digest": report.body_digest,
        "cache_hit_rate": (round(cache["hits"] / lookups, 6)
                           if lookups else 0.0),
        "largest_batch": stats["batcher"]["largest_batch"],
    }]


# ---------------------------------------------------------------------------
# shard planner
# ---------------------------------------------------------------------------

def serve_loadtest_shards(config) -> List:
    """Identity ranges plus one trailing throughput shard."""
    from ..runtime.executor import ShardSpec
    base = {"world": config.world.to_dict(), "seed": config.seed,
            "requests": config.requests,
            "get_fraction": config.get_fraction,
            "nonce_fraction": config.nonce_fraction,
            "max_batch": config.max_batch}
    shards = [
        ShardSpec(worker=f"{_WORKERS}:serve_identity_shard",
                  payload={**base, "lo": lo, "hi": hi},
                  label=f"serve-identity[{lo}:{hi}]")
        for lo, hi in split_ranges(config.requests, config.chunks)
    ]
    shards.append(
        ShardSpec(worker=f"{_WORKERS}:serve_throughput_shard",
                  payload=base, label="serve-throughput"))
    return shards


# ---------------------------------------------------------------------------
# experiment runner
# ---------------------------------------------------------------------------

def run_serve_loadtest(ctx, config) -> Dict[str, Any]:
    """Fan the replay out, then fold identity + throughput."""
    outputs = ctx.run_shards(serve_loadtest_shards(config))
    rows = [row for shard_rows in outputs for row in shard_rows]
    identity = [row for row in rows if row["kind"] == "identity"]
    throughput = next(row for row in rows if row["kind"] == "throughput")

    requests = sum(row["requests"] for row in identity)
    mismatches = sum(row["mismatches"] for row in identity)
    digest_breaks = sum(1 for row in identity
                        if row["served_digest"] != row["direct_digest"])
    series = {
        "mismatches_by_range": [
            (f"[{row['lo']}:{row['hi']})", row["mismatches"])
            for row in identity],
        "latency_histogram": [
            (f"<={bound}ms", count) for bound, count in zip(
                LATENCY_BUCKETS_MS, throughput["latency_histogram"])
        ] + [(f">{LATENCY_BUCKETS_MS[-1]}ms",
              throughput["latency_histogram"][-1])],
    }
    return {
        "rows": rows,
        "series": series,
        "summary": {
            "requests": requests,
            "identity_mismatches": mismatches,
            "identity_digest_breaks": digest_breaks,
            "byte_identical": mismatches == 0 and digest_breaks == 0,
            "req_per_s": throughput["req_per_s"],
            "p50_ms": throughput["p50_ms"],
            "p99_ms": throughput["p99_ms"],
            "cache_hit_rate": throughput["cache_hit_rate"],
            "largest_batch": throughput["largest_batch"],
            "status_counts": throughput["status_counts"],
        },
        "artifacts": {},
    }
