"""The serving application: Host routing, pre-signed cache, batching.

:class:`ServeApp` is everything the daemon does *except* sockets, so
the in-process load generator, the experiment shards, and the asyncio
transport all exercise the same code.  One request flows::

    HTTPRequest --dispatch--> cache hit   -> HTTPResponse     (warm path)
                          --> PendingSign -> SignQueue -> responder core

The warm path is two dict lookups; only cache misses reach the
:class:`~repro.serve.batcher.SignQueue`, whose thunks call the same
transport-neutral :meth:`~repro.ca.responder.OCSPResponder.handle`
core that answers in-process simnet traffic — which is why a daemon
response is byte-identical to the simulated responder's answer for the
same (request bytes, simulated clock).

Cache correctness mirrors the core's own keying exactly: an entry is
only served while the responder's *generation epoch key* — its
``generation_time(now)`` plus the registry's visible-revocation count
— matches the one it was signed under, and while ``now`` is strictly
before the artifact's nextUpdate (the expired-at-the-boundary
fencepost).  Responders whose bodies vary with time outside that key
(``malformed_windows``) are never cached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Union

from ..asn1.errors import ASN1Error
from ..ca.responder import OCSPResponder
from ..monitor.events import MonitorEvent
from ..ocsp import OCSPRequest, ResponseArtifact
from ..simnet.http import HTTPRequest, HTTPResponse, decode_ocsp_get_path
from .batcher import SignQueue
from .cache import PresignedCache


class ResponderRuntime:
    """One responder's serving state: the core plus its pre-signed cache."""

    def __init__(self, responder: OCSPResponder,
                 cache_capacity: int = 65536) -> None:
        self.responder = responder
        self.cache = PresignedCache(capacity=cache_capacity)
        # Bodies that vary with simulated time outside the epoch key
        # cannot be pre-signed safely.
        self.cacheable = not responder.profile.malformed_windows
        self._epoch_now: Optional[int] = None
        self._epoch: Tuple[int, int] = (0, 0)

    def epoch_key(self, now: int) -> Tuple[int, int]:
        """The signing-epoch identity at *now* (memoized per instant).

        Matches the axes of the core's own response cache that are not
        already in the request bytes: the generation time and the
        visible-revocation count.  A pre-signed entry is only valid
        while this tuple equals the one it was signed under.
        """
        if now != self._epoch_now:
            registry = self.responder.authority.registry
            self._epoch = (self.responder.generation_time(now),
                           registry.visible_ocsp_count(now))
            self._epoch_now = now
        return self._epoch

    def lookup(self, request_der: bytes, now: int) -> Optional[ResponseArtifact]:
        """The pre-signed answer for these request bytes, if servable."""
        if not self.cacheable:
            return None
        return self.cache.get(request_der, now, epoch=self.epoch_key(now))

    def sign(self, request_der: Optional[bytes], now: int) -> ResponseArtifact:
        """Miss path: drive the core, then pre-sign the cache entry."""
        artifact = self.responder.handle(request_der, now)
        if self.cacheable and request_der is not None:
            self.cache.put(request_der, self._entry_key(request_der),
                           artifact, artifact.next_update,
                           epoch=self.epoch_key(now))
        return artifact

    def _entry_key(self, request_der: bytes) -> bytes:
        """What the request asks: the CertID-hash digest."""
        try:
            return OCSPRequest.from_der(request_der).cache_key()
        except (ASN1Error, ValueError):
            # Undecodable requests get a static error envelope; key by
            # the raw bytes so repeats still hit.
            return b"raw:" + request_der[:64]


@dataclass
class PendingSign:
    """A dispatch outcome that needs the signing queue (cache miss)."""

    host: str
    runtime: ResponderRuntime
    request_der: Optional[bytes]
    now: int

    def queue_key(self) -> Tuple:
        return (self.host, self.request_der, self.now)

    def signer(self):
        runtime, der, now = self.runtime, self.request_der, self.now
        return lambda: runtime.sign(der, now)


class ServeApp:
    """Host-routed OCSP serving over any transport."""

    def __init__(self, now: int, cache_capacity: int = 65536,
                 max_batch: int = 64) -> None:
        self.now = now
        self.queue = SignQueue(max_batch=max_batch)
        self.runtimes: Dict[str, ResponderRuntime] = {}
        self.requests = 0
        self.cache_capacity = cache_capacity
        #: When set, every served request emits one ``access``
        #: :class:`~repro.monitor.events.MonitorEvent` here (the
        #: daemon's ``--access-log`` plugs a JSONL writer in; tests
        #: plug lists in).  ``None`` keeps serving zero-overhead.
        self.access_sink: Optional[Callable[[MonitorEvent], None]] = None
        self.access_events = 0

    @classmethod
    def for_world(cls, world, now: Optional[int] = None,
                  cache_capacity: int = 65536,
                  max_batch: int = 64) -> "ServeApp":
        """Serve every responder of a measurement world, Host-routed."""
        from ..simnet.clock import HOUR
        if now is None:
            now = world.config.start + HOUR
        app = cls(now=now, cache_capacity=cache_capacity,
                  max_batch=max_batch)
        for site in world.sites:
            app.add_responder(site.hostname, site.responder)
        return app

    def add_responder(self, host: str, responder: OCSPResponder) -> None:
        self.runtimes[host] = ResponderRuntime(
            responder, cache_capacity=self.cache_capacity)

    def dispatch(self, request: HTTPRequest,
                 now: Optional[int] = None
                 ) -> Union[HTTPResponse, PendingSign]:
        """Route one request to an immediate answer or a pending sign.

        Mirrors :func:`repro.simnet.ocsp_http_exchange` exactly: POST
        bodies and GET base64 paths carry the DER; an undecodable GET
        path flows to the core as ``request_der=None``; other methods
        are 405.  The only addition is the pre-signed fast path.
        """
        if now is None:
            now = self.now
        self.requests += 1
        runtime = self.runtimes.get(request.host)
        if runtime is None:
            return HTTPResponse(404, b"unknown responder host")
        if request.method == "POST":
            request_der: Optional[bytes] = request.body
        elif request.method == "GET":
            try:
                request_der = decode_ocsp_get_path(request.path)
            except ValueError:
                request_der = None
        else:
            return HTTPResponse(405, b"method not allowed")
        if request_der is not None:
            artifact = runtime.lookup(request_der, now)
            if artifact is not None:
                return artifact.to_http()
        return PendingSign(host=request.host, runtime=runtime,
                           request_der=request_der, now=now)

    def exchange(self, request: HTTPRequest,
                 now: Optional[int] = None) -> HTTPResponse:
        """Synchronous end-to-end answer (the in-process transport)."""
        outcome = self.dispatch(request, now)
        if isinstance(outcome, HTTPResponse):
            response = outcome
            source = "cache" if outcome.status_code == 200 else "error"
        else:
            job = self.queue.submit(outcome.queue_key(), outcome.signer())
            self.queue.drain()
            assert job.artifact is not None
            response = job.artifact.to_http()
            source = "signed"
        self.log_access(request.host, request.method,
                        response.status_code, len(response.body), source)
        return response

    def log_access(self, host: str, method: str, status: int,
                   size: int, source: str) -> None:
        """Emit one ``access`` event to the sink, if one is attached.

        ``source`` tags the serving path — ``cache`` (pre-signed fast
        path), ``signed`` (went through the SignQueue), ``error``
        (404/405 before any responder), ``control`` (the daemon's
        ``/-/`` endpoints) — not OCSP semantics: a signed OCSP error
        envelope is still ``signed``.  ``ts`` is the app's simulated
        clock, so an access log replays deterministically.
        """
        if self.access_sink is None:
            return
        event = MonitorEvent(kind="access", ts=self.now,
                             seq=(self.access_events,),
                             data={"host": host, "method": method,
                                   "status": status, "size": size,
                                   "source": source})
        self.access_events += 1
        self.access_sink(event)

    def stats(self) -> Dict[str, object]:
        """JSON-ready aggregate counters across every runtime."""
        cache_totals = {"entries": 0, "hits": 0, "misses": 0,
                        "expirations": 0, "evictions": 0}
        cache_by_host = {}
        for host, runtime in sorted(self.runtimes.items()):
            host_stats = runtime.cache.stats()
            cache_by_host[host] = host_stats
            for field_name, value in host_stats.items():
                cache_totals[field_name] += value
        return {
            "now": self.now,
            "hosts": len(self.runtimes),
            "requests": self.requests,
            "cache": cache_totals,
            "cache_by_host": cache_by_host,
            "batcher": self.queue.stats(),
            "access": {"events": self.access_events,
                       "enabled": self.access_sink is not None},
        }
