"""The pluggable rule engine of ``repro.lint``.

Rules register themselves into a module-level registry with a stable
id, a severity, the artifact kind they apply to, and the RFC clause
they enforce.  The engine parses an artifact (certificate, OCSP
response, or CRL), builds an :class:`Artifact` carrying the DER bytes,
the parsed object, and a byte-offset span map, and runs every
registered rule of that kind.  Parsing failures are themselves rules
(``*_PARSE``) — exactly the "malformed" class of the paper's Figure 5.

No rule touches the network or the wall clock: the reference time is
an explicit input on :class:`LintContext`, which is what makes a lint
run reproducible byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..asn1.errors import ASN1Error
from ..ocsp import CertID
from ..ocsp.response import OCSPResponse
from ..simnet.clock import DAY, MEASUREMENT_START
from ..x509 import Certificate, CertificateList
from ..x509.pem import CERTIFICATE_LABEL, CRL_LABEL, OCSP_RESPONSE_LABEL, decode_pem
from . import provenance
from .findings import Finding, LintReport, Severity, Span

#: Artifact kinds the engine understands.
KIND_CERTIFICATE = "certificate"
KIND_OCSP = "ocsp"
KIND_CRL = "crl"
KINDS = (KIND_CERTIFICATE, KIND_OCSP, KIND_CRL)

_PEM_LABEL_TO_KIND = {
    CERTIFICATE_LABEL: KIND_CERTIFICATE,
    OCSP_RESPONSE_LABEL: KIND_OCSP,
    CRL_LABEL: KIND_CRL,
}


@dataclass
class LintContext:
    """Explicit inputs of a lint run (no ambient clock, no network).

    *issuer* / *cert_id* / *expected_nonce* enable the relational
    rules (signature verification, CertID consistency, nonce echo);
    rules that need missing context simply do not fire.
    """

    #: The "now" every freshness rule judges against (POSIX seconds).
    reference_time: int = MEASUREMENT_START
    #: The issuer certificate of the artifact being linted.
    issuer: Optional[Certificate] = None
    #: The CertID the client asked about (OCSP request context).
    cert_id: Optional[CertID] = None
    #: The nonce sent with the request, when replay protection is on.
    expected_nonce: Optional[bytes] = None
    #: Clock tolerance for freshness comparisons.
    clock_skew: int = 0
    #: thisUpdate margins below this count as "zero margin" (Figure 9).
    zero_margin_threshold: int = 60
    #: Validity windows beyond this are flagged (Figure 8's ">1 month").
    max_validity: int = 30 * DAY


@dataclass
class Artifact:
    """One parsed artifact handed to rules."""

    kind: str
    der: bytes
    parsed: object
    source: str
    spans: Dict[str, Span] = field(default_factory=dict)

    def span(self, *names: str) -> Span:
        """The first known span among *names*, else the whole artifact."""
        for name in names:
            hit = self.spans.get(name)
            if hit is not None:
                return hit
        return self.spans.get(provenance.WHOLE, Span(0, len(self.der)))


#: What a rule callable yields: (message, span-or-None).
Violation = Tuple[str, Optional[Span]]
CheckFn = Callable[[Artifact, LintContext], Iterator[Violation]]


@dataclass(frozen=True)
class Rule:
    """One registered conformance rule."""

    rule_id: str
    severity: Severity
    kind: str
    reference: str
    summary: str
    check: Optional[CheckFn] = None  # None = engine-fired (parse rules)

    def finding(self, artifact_kind: str, source: str, message: str,
                span: Optional[Span] = None) -> Finding:
        """Materialize one Finding for this rule."""
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
            kind=artifact_kind,
            source=source,
            span=span,
            reference=self.reference,
        )


#: The global registry: rule id -> Rule, insertion-ordered.
RULES: Dict[str, Rule] = {}


def register(rule_id: str, severity: Severity, kind: str, reference: str,
             summary: str) -> Callable[[CheckFn], CheckFn]:
    """Decorator registering a rule callable under *rule_id*."""
    def wrap(check: CheckFn) -> CheckFn:
        _add_rule(Rule(rule_id, severity, kind, reference, summary, check))
        return check
    return wrap


def register_structural(rule_id: str, severity: Severity, kind: str,
                        reference: str, summary: str) -> Rule:
    """Register an engine-fired rule (parse failures) with no callable."""
    rule = Rule(rule_id, severity, kind, reference, summary, None)
    _add_rule(rule)
    return rule


def _add_rule(rule: Rule) -> None:
    if rule.rule_id in RULES:
        raise ValueError(f"duplicate rule id: {rule.rule_id}")
    if rule.kind not in KINDS:
        raise ValueError(f"unknown artifact kind: {rule.kind}")
    RULES[rule.rule_id] = rule


def rules_for(kind: str) -> List[Rule]:
    """All registered rules applying to *kind* (registration order)."""
    return [rule for rule in RULES.values() if rule.kind == kind]


def catalogue() -> List[Rule]:
    """Every registered rule, sorted by id (the documented catalogue)."""
    return sorted(RULES.values(), key=lambda rule: rule.rule_id)


def render_catalogue() -> str:
    """The rule catalogue as a text table (ID, severity, RFC, summary)."""
    rows = [(r.rule_id, r.severity.label, r.reference, r.summary)
            for r in catalogue()]
    widths = [max(len(row[i]) for row in rows + [("rule", "sev", "reference", "summary")])
              for i in range(4)]
    header = ("rule", "sev", "reference", "summary")
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(header))]
    lines.append("  ".join("-" * widths[i] for i in range(4)))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


# -- parse (structural) rules; fired by the engine itself ---------------------

PARSE_RULES: Dict[str, Rule] = {
    KIND_CERTIFICATE: register_structural(
        "X509_PARSE", Severity.ERROR, KIND_CERTIFICATE, "RFC 5280 §4.1",
        "certificate bytes must parse as a DER Certificate"),
    KIND_OCSP: register_structural(
        "OCSP_PARSE", Severity.ERROR, KIND_OCSP, "RFC 6960 §4.2.1",
        "response bytes must parse as a DER OCSPResponse"),
    KIND_CRL: register_structural(
        "CRL_PARSE", Severity.ERROR, KIND_CRL, "RFC 5280 §5.1",
        "CRL bytes must parse as a DER CertificateList"),
}

_PARSERS = {
    KIND_CERTIFICATE: Certificate.from_der,
    KIND_OCSP: OCSPResponse.from_der,
    KIND_CRL: CertificateList.from_der,
}

_SPAN_WALKERS = {
    KIND_CERTIFICATE: provenance.certificate_spans,
    KIND_OCSP: provenance.ocsp_spans,
    KIND_CRL: provenance.crl_spans,
}


def sniff_kind(der: bytes) -> Optional[str]:
    """Guess the artifact kind of raw DER by attempting each parser."""
    for kind in (KIND_CERTIFICATE, KIND_CRL, KIND_OCSP):
        try:
            _PARSERS[kind](der)
            return kind
        except (ASN1Error, ValueError):
            continue
    # Unparseable: an OCSPResponse is the only artifact whose first
    # element is an ENUMERATED, which identifies broken responses.
    if len(der) > 2 and der[0] == 0x30:
        try:
            from ..asn1 import Reader, tags
            if Reader(der).read_sequence().peek_tag() == tags.ENUMERATED:
                return KIND_OCSP
        except (ASN1Error, ValueError):
            pass
    return None


class LintEngine:
    """Runs registered rules over artifacts and collects findings."""

    def __init__(self, context: Optional[LintContext] = None) -> None:
        self.context = context or LintContext()

    # -- single artifacts ----------------------------------------------------

    def lint_der(self, der: bytes, kind: str, source: str = "<der>",
                 context: Optional[LintContext] = None) -> List[Finding]:
        """Lint one DER artifact of a known *kind*."""
        ctx = context or self.context
        if kind not in KINDS:
            raise ValueError(f"unknown artifact kind: {kind}")
        try:
            parsed = _PARSERS[kind](der)
        except (ASN1Error, ValueError) as exc:
            rule = PARSE_RULES[kind]
            return [rule.finding(kind, source, f"does not parse: {exc}",
                                 Span(0, len(der)))]
        spans = _SPAN_WALKERS[kind](der)
        artifact = Artifact(kind=kind, der=der, parsed=parsed,
                            source=source, spans=spans)
        findings: List[Finding] = []
        for rule in rules_for(kind):
            if rule.check is None:
                continue
            try:
                for message, span in rule.check(artifact, ctx):
                    findings.append(rule.finding(kind, source, message,
                                                 span or artifact.span()))
            except (ASN1Error, ValueError) as exc:
                # Lazily-decoded substructure (extension values, embedded
                # certificates) can be malformed even when the outer
                # artifact parses; degrade to a parse finding instead of
                # letting the rule's exception escape the engine.
                offset = getattr(exc, "offset", None)
                span = (Span(offset, offset + 1) if isinstance(offset, int)
                        else Span(0, len(der)))
                findings.append(PARSE_RULES[kind].finding(
                    kind, source,
                    f"lazy decode failed in {rule.rule_id}: {exc}", span))
        return findings

    def lint_certificate(self, certificate: Certificate, source: str = "<certificate>",
                         context: Optional[LintContext] = None) -> List[Finding]:
        """Lint a parsed certificate (re-examined from its own DER)."""
        return self.lint_der(certificate.der, KIND_CERTIFICATE, source, context)

    def lint_crl(self, crl: CertificateList, source: str = "<crl>",
                 context: Optional[LintContext] = None) -> List[Finding]:
        """Lint a parsed CRL."""
        return self.lint_der(crl.der, KIND_CRL, source, context)

    def lint_ocsp(self, response_der: bytes, source: str = "<ocsp>",
                  context: Optional[LintContext] = None) -> List[Finding]:
        """Lint raw OCSP response bytes."""
        return self.lint_der(response_der, KIND_OCSP, source, context)

    # -- files / bundles -----------------------------------------------------

    def lint_blob(self, raw: bytes, source: str, kind: str = "auto",
                  context: Optional[LintContext] = None) -> LintReport:
        """Lint a file blob: PEM bundle (any mix of labels) or raw DER."""
        report = LintReport(reference_time=(context or self.context).reference_time)
        blocks: List[Tuple[str, bytes, str]] = []
        text: Optional[str] = None
        try:
            text = raw.decode("ascii")
        except UnicodeDecodeError:
            pass
        if text is not None and "-----BEGIN " in text:
            try:
                decoded = decode_pem(text)
            except ValueError:
                decoded = []  # bad base64: fall through to the raw path
            for index, (label, der) in enumerate(decoded):
                block_kind = (_PEM_LABEL_TO_KIND.get(label) or
                              (kind if kind != "auto" else None))
                if block_kind is None:
                    continue  # keys and other non-lintable PEM blocks
                blocks.append((block_kind, der, f"{source}#{index}"))
            if not blocks:
                # PEM armor with no complete lintable block (e.g. a
                # truncated bundle) is a malformed artifact, not a
                # clean empty report.
                fallback = kind if kind != "auto" else KIND_CERTIFICATE
                blocks.append((fallback, raw, source))
        else:
            der_kind = kind if kind != "auto" else sniff_kind(raw)
            if der_kind is None:
                der_kind = KIND_CERTIFICATE  # deterministic fallback
            blocks.append((der_kind, raw, source))
        for block_kind, der, block_source in blocks:
            report.artifacts += 1
            report.extend(self.lint_der(der, block_kind, block_source, context))
        return report.sort()

    def lint_path(self, path: str, kind: str = "auto",
                  context: Optional[LintContext] = None) -> LintReport:
        """Lint one file from disk (PEM bundle or raw DER)."""
        with open(path, "rb") as stream:
            raw = stream.read()
        return self.lint_blob(raw, source=path, kind=kind, context=context)

    def lint_many(self, artifacts: Iterable[Tuple[str, bytes, str]],
                  context: Optional[LintContext] = None) -> LintReport:
        """Lint (kind, der, source) triples into one report."""
        report = LintReport(reference_time=(context or self.context).reference_time)
        for kind, der, source in artifacts:
            report.artifacts += 1
            report.extend(self.lint_der(der, kind, source, context))
        return report.sort()
