"""``repro.lint`` — rule-based static conformance analysis.

A pluggable analyzer for the three DER artifact families the paper's
measurements revolve around: X.509 certificates (RFC 5280 + the
RFC 7633 Must-Staple extension), OCSP responses (RFC 6960), and CRLs
(RFC 5280 section 5).  Every check is a registered :class:`Rule` with
a stable id, a severity, and the RFC clause (or paper figure) it
enforces; findings carry byte-offset provenance into the artifact's
DER encoding.

Design constraints:

* **No network, no clock.**  The reference time is an explicit input
  (:class:`LintContext`), so a lint run is a pure function of its
  inputs and its reports are byte-for-byte reproducible.
* **Parsing failures are findings**, not crashes — the ``*_PARSE``
  rules are exactly the "malformed" class of the paper's Figure 5.
* **The corpus driver cross-checks the dynamic path**: every batch
  probe classification is compared against
  :func:`repro.ocsp.verify.verify_response`, the verifier behind the
  scanner dataset that :mod:`repro.core.quality` aggregates.
"""

from .engine import (
    KIND_CERTIFICATE,
    KIND_CRL,
    KIND_OCSP,
    KINDS,
    RULES,
    Artifact,
    LintContext,
    LintEngine,
    Rule,
    catalogue,
    register,
    render_catalogue,
    rules_for,
    sniff_kind,
)
from .findings import Finding, LintReport, Severity, Span

# Importing the rule modules populates the registry.
from . import rules_x509  # noqa: F401  (registration side effect)
from . import rules_ocsp  # noqa: F401
from . import rules_crl   # noqa: F401

from .corpus import (
    FIGURE5_CLASSES,
    CorpusLintSummary,
    classify_findings,
    lint_world,
    self_test,
)
from .output import render_json, render_report, render_sarif, report_to_json, report_to_sarif

__all__ = [
    "KIND_CERTIFICATE",
    "KIND_CRL",
    "KIND_OCSP",
    "KINDS",
    "RULES",
    "Artifact",
    "LintContext",
    "LintEngine",
    "Rule",
    "Finding",
    "LintReport",
    "Severity",
    "Span",
    "FIGURE5_CLASSES",
    "CorpusLintSummary",
    "catalogue",
    "classify_findings",
    "lint_world",
    "register",
    "render_catalogue",
    "render_json",
    "render_report",
    "render_sarif",
    "report_to_json",
    "report_to_sarif",
    "rules_for",
    "self_test",
    "sniff_kind",
]
