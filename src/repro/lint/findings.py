"""Finding and report types for the static conformance analyzer.

A :class:`Finding` is one rule violation observed in one artifact,
carrying byte-offset provenance (a :class:`Span` into the artifact's
DER encoding) so a report consumer can point at the exact octets that
triggered the rule — the same way ``openssl asn1parse`` offsets do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, Iterable, List, Optional


class Severity(IntEnum):
    """Rule severity; ordering allows ``>=`` threshold filters."""

    INFO = 10
    WARN = 20
    ERROR = 30

    @property
    def label(self) -> str:
        """Lower-case label used in reports ("error"/"warn"/"info")."""
        return self.name.lower()

    @property
    def sarif_level(self) -> str:
        """The SARIF 2.1.0 ``level`` value for this severity."""
        return {"ERROR": "error", "WARN": "warning", "INFO": "note"}[self.name]


@dataclass(frozen=True)
class Span:
    """A byte range (offset, length) into one artifact's DER encoding."""

    offset: int
    length: int

    @property
    def end(self) -> int:
        """Offset one past the last covered byte."""
        return self.offset + self.length


@dataclass(frozen=True)
class Finding:
    """One rule violation in one artifact."""

    rule_id: str
    severity: Severity
    message: str
    #: "certificate" | "ocsp" | "crl" | "unknown".
    kind: str
    #: Where the artifact came from (file path, PEM block index, corpus id).
    source: str
    #: DER byte range the finding points at (None = whole artifact).
    span: Optional[Span] = None
    #: The RFC clause (or paper figure) the rule enforces.
    reference: str = ""

    def render(self) -> str:
        """One-line human rendering."""
        where = f"@{self.span.offset}+{self.span.length}" if self.span else ""
        ref = f" [{self.reference}]" if self.reference else ""
        return (f"{self.severity.label:5s} {self.rule_id:28s} "
                f"{self.source}{where}: {self.message}{ref}")

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dict (deterministic key set)."""
        out: Dict[str, object] = {
            "rule": self.rule_id,
            "severity": self.severity.label,
            "message": self.message,
            "kind": self.kind,
            "source": self.source,
            "reference": self.reference,
        }
        if self.span is not None:
            out["byteOffset"] = self.span.offset
            out["byteLength"] = self.span.length
        return out


@dataclass
class LintReport:
    """All findings from one lint run, with aggregation helpers."""

    findings: List[Finding] = field(default_factory=list)
    #: Number of artifacts examined (clean artifacts contribute 0 findings).
    artifacts: int = 0
    #: The reference time every time-sensitive rule judged against.
    reference_time: int = 0

    def extend(self, findings: Iterable[Finding]) -> None:
        """Append findings."""
        self.findings.extend(findings)

    def sort(self) -> "LintReport":
        """Sort findings deterministically (source, offset, rule id)."""
        self.findings.sort(key=lambda f: (
            f.source, f.span.offset if f.span else -1, f.rule_id, f.message
        ))
        return self

    def at_least(self, severity: Severity) -> List[Finding]:
        """Findings at or above *severity*."""
        return [f for f in self.findings if f.severity >= severity]

    @property
    def errors(self) -> List[Finding]:
        """ERROR findings only."""
        return self.at_least(Severity.ERROR)

    @property
    def clean(self) -> bool:
        """True when no ERROR finding was raised."""
        return not self.errors

    def by_rule(self) -> Dict[str, int]:
        """Finding counts per rule id (sorted by id)."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))

    def by_severity(self) -> Dict[str, int]:
        """Finding counts per severity label."""
        counts = {s.label: 0 for s in (Severity.ERROR, Severity.WARN, Severity.INFO)}
        for finding in self.findings:
            counts[finding.severity.label] += 1
        return counts

    def fired_rules(self) -> List[str]:
        """Sorted unique rule ids present in the report."""
        return sorted({f.rule_id for f in self.findings})

    def render(self) -> str:
        """Multi-line human rendering."""
        lines = [finding.render() for finding in self.findings]
        counts = self.by_severity()
        lines.append(
            f"{self.artifacts} artifact(s): {counts['error']} error(s), "
            f"{counts['warn']} warning(s), {counts['info']} info"
        )
        return "\n".join(lines)
