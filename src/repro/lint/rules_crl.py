"""CRL conformance rules (RFC 5280 section 5).

CRLs are the fallback revocation channel the paper compares OCSP
against (Section 6): a stale or unsigned CRL silently turns every
client that relies on it into a fail-open client.
"""

from __future__ import annotations

from typing import Iterator

from ..x509 import CertificateList
from .engine import KIND_CRL, Artifact, LintContext, Violation, register
from .findings import Severity


def _crl(artifact: Artifact) -> CertificateList:
    return artifact.parsed  # type: ignore[return-value]


@register("CRL_UPDATE_ORDER", Severity.ERROR, KIND_CRL,
          "RFC 5280 §5.1.2.5", "nextUpdate must follow thisUpdate")
def check_update_order(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    crl = _crl(artifact)
    if crl.next_update is not None and crl.next_update < crl.this_update:
        yield (f"nextUpdate ({crl.next_update}) precedes thisUpdate "
               f"({crl.this_update})", artifact.span("nextUpdate", "tbsCertList"))


@register("CRL_NEXT_UPDATE_MISSING", Severity.ERROR, KIND_CRL,
          "RFC 5280 §5.1.2.5", "conforming CRL issuers must include nextUpdate")
def check_next_update(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    if _crl(artifact).next_update is None:
        yield ("no nextUpdate: relying parties cannot tell when this CRL "
               "goes stale", artifact.span("thisUpdate", "tbsCertList"))


@register("CRL_STALE", Severity.ERROR, KIND_CRL,
          "RFC 5280 §5.1.2.5", "the CRL must not be stale at the reference time")
def check_stale(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    crl = _crl(artifact)
    if crl.next_update is not None and crl.next_update >= crl.this_update and \
            crl.next_update < ctx.reference_time - ctx.clock_skew:
        yield (f"nextUpdate passed {ctx.reference_time - crl.next_update}s "
               f"before the reference time", artifact.span("nextUpdate"))


@register("CRL_THISUPDATE_FUTURE", Severity.ERROR, KIND_CRL,
          "RFC 5280 §5.1.2.4", "thisUpdate must not be in the future")
def check_future(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    crl = _crl(artifact)
    if crl.this_update > ctx.reference_time + ctx.clock_skew:
        yield (f"thisUpdate is {crl.this_update - ctx.reference_time}s in "
               f"the future", artifact.span("thisUpdate"))


@register("CRL_ENTRY_ORDER", Severity.INFO, KIND_CRL,
          "RFC 5280 §5.1.2.6", "entries are conventionally sorted by serial")
def check_entry_order(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    revoked = _crl(artifact).revoked
    for previous, current in zip(revoked, revoked[1:]):
        if current.serial_number < previous.serial_number:
            yield (f"entry for serial {current.serial_number} follows "
                   f"{previous.serial_number}; binary search over the list "
                   f"is impossible",
                   artifact.span(f"entry:{current.serial_number}",
                                 "revokedCertificates"))
            break


@register("CRL_ENTRY_DUPLICATE", Severity.ERROR, KIND_CRL,
          "RFC 5280 §5.1.2.6", "a serial must appear at most once")
def check_entry_duplicate(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    seen = set()
    for entry in _crl(artifact).revoked:
        if entry.serial_number in seen:
            yield (f"serial {entry.serial_number} listed more than once",
                   artifact.span(f"entry:{entry.serial_number}",
                                 "revokedCertificates"))
        seen.add(entry.serial_number)


@register("CRL_ENTRY_DATE_FUTURE", Severity.WARN, KIND_CRL,
          "RFC 5280 §5.1.2.6", "revocation dates must not be in the future")
def check_entry_dates(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    for entry in _crl(artifact).revoked:
        if entry.revocation_date > ctx.reference_time + ctx.clock_skew:
            yield (f"serial {entry.serial_number} revoked "
                   f"{entry.revocation_date - ctx.reference_time}s in the future",
                   artifact.span(f"entry:{entry.serial_number}",
                                 "revokedCertificates"))


@register("CRL_SIGNATURE", Severity.ERROR, KIND_CRL,
          "RFC 5280 §5.1.1.3", "the signature must verify under the issuer key")
def check_signature(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    if ctx.issuer is None:
        return  # no issuer context: cannot judge
    if not _crl(artifact).verify_signature(ctx.issuer.public_key):
        yield ("CRL signature does not verify under the issuer key",
               artifact.span("signatureValue"))
