"""Report serializers: JSON and SARIF 2.1.0.

Both renderings are deterministic for a fixed input: keys are sorted,
findings are pre-sorted by the report, and no wall-clock timestamps
are emitted, so the same artifacts + reference time produce the same
bytes.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .engine import catalogue
from .findings import LintReport

#: Identifies the JSON report layout for consumers.
JSON_SCHEMA_ID = "repro-lint/1"
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                    "master/Schemata/sarif-schema-2.1.0.json")
TOOL_NAME = "repro-lint"


def report_to_json(report: LintReport) -> Dict[str, object]:
    """The JSON document for a report (plain dict, JSON-ready)."""
    return {
        "schema": JSON_SCHEMA_ID,
        "referenceTime": report.reference_time,
        "artifacts": report.artifacts,
        "summary": {
            "bySeverity": report.by_severity(),
            "byRule": report.by_rule(),
            "clean": report.clean,
        },
        "findings": [finding.to_dict() for finding in report.findings],
    }


def render_json(report: LintReport) -> str:
    """Deterministic JSON rendering (sorted keys, trailing newline)."""
    return json.dumps(report_to_json(report), indent=2, sort_keys=True) + "\n"


def report_to_sarif(report: LintReport) -> Dict[str, object]:
    """The SARIF 2.1.0 document for a report.

    Every registered rule appears in the driver's rule table (not just
    the fired ones) so `ruleIndex` is stable across reports; byte
    provenance lands in `physicalLocation.region.byteOffset/byteLength`
    as the SARIF spec defines for binary artifacts.

    Findings from the effect analyzer (:mod:`repro.analyze`) share
    this serializer; its rule descriptions are merged into the table
    only when such findings are present, so pure lint reports keep
    the exact catalogue shape.
    """
    rules = list(catalogue())
    known = {rule.rule_id for rule in rules}
    foreign = {f.rule_id for f in report.findings} - known
    if foreign:
        from ..analyze.rules import ANALYZE_RULE_INDEX, AnalyzeRule
        for rule_id in sorted(foreign):
            extra = ANALYZE_RULE_INDEX.get(rule_id)
            if extra is None:
                severity = max(f.severity for f in report.findings
                               if f.rule_id == rule_id)
                extra = AnalyzeRule(rule_id, "externally defined rule",
                                    severity)
            rules.append(extra)
        rules.sort(key=lambda rule: rule.rule_id)
    rule_index = {rule.rule_id: i for i, rule in enumerate(rules)}
    results: List[Dict[str, object]] = []
    for finding in report.findings:
        location: Dict[str, object] = {
            "physicalLocation": {
                "artifactLocation": {"uri": finding.source},
            }
        }
        if finding.span is not None:
            location["physicalLocation"]["region"] = {
                "byteOffset": finding.span.offset,
                "byteLength": finding.span.length,
            }
        results.append({
            "ruleId": finding.rule_id,
            "ruleIndex": rule_index[finding.rule_id],
            "level": finding.severity.sarif_level,
            "message": {"text": finding.message},
            "locations": [location],
            "properties": {"kind": finding.kind},
        })
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "informationUri": "https://doi.org/10.1145/3278532.3278543",
                    "rules": [{
                        "id": rule.rule_id,
                        "shortDescription": {"text": rule.summary},
                        "defaultConfiguration": {"level": rule.severity.sarif_level},
                        "properties": {
                            "kind": rule.kind,
                            "reference": rule.reference,
                        },
                    } for rule in rules],
                }
            },
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }


def render_sarif(report: LintReport) -> str:
    """Deterministic SARIF rendering (sorted keys, trailing newline)."""
    return json.dumps(report_to_sarif(report), indent=2, sort_keys=True) + "\n"


def render_report(report: LintReport, fmt: str) -> str:
    """Render a report as ``text``, ``json``, or ``sarif``."""
    if fmt == "text":
        return report.render() + "\n"
    if fmt == "json":
        return render_json(report)
    if fmt == "sarif":
        return render_sarif(report)
    raise ValueError(f"unknown report format: {fmt}")
