"""DER byte-offset provenance for lint findings.

These walkers re-trace an artifact's TLV structure with the strict
:class:`repro.asn1.Reader` (whose sub-readers keep *absolute* offsets
into the original buffer) and record a ``field name -> Span`` map.
Rules then attach the span of the offending field to their findings,
so a report consumer can jump to the exact octets.

The walkers are deliberately forgiving: they return whatever spans
they managed to collect before a decode error, because the artifacts
being linted are often broken — that is the point of linting them.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..asn1 import Reader, tags
from ..asn1.errors import ASN1Error
from .findings import Span

#: Span-map key for a whole artifact.
WHOLE = "artifact"


def _span(reader: Reader) -> Span:
    offset, length = reader.peek_span()
    return Span(offset, length)


def _content_reader(parent: Reader, der: bytes) -> Optional[Reader]:
    """Read an OCTET STRING whose content is nested DER, returning a
    reader positioned over the content *in the original buffer*."""
    offset, total = parent.peek_span()
    content = parent.read_octet_string()
    start = offset + (total - len(content))
    return Reader(der, start, start + len(content))


def certificate_spans(der: bytes) -> Dict[str, Span]:
    """Field spans for a DER Certificate (RFC 5280 section 4.1)."""
    spans: Dict[str, Span] = {WHOLE: Span(0, len(der))}
    try:
        outer = Reader(der)
        certificate = outer.read_sequence()
        spans["tbsCertificate"] = _span(certificate)
        tbs = certificate.read_sequence()
        spans["signatureAlgorithm"] = _span(certificate)
        certificate.read_tlv()
        spans["signatureValue"] = _span(certificate)

        if not tbs.at_end() and tbs.peek_tag() == tags.context(0):
            spans["version"] = _span(tbs)
            tbs.read_tlv()
        spans["serialNumber"] = _span(tbs)
        tbs.read_tlv()
        spans["signature"] = _span(tbs)
        tbs.read_tlv()
        spans["issuer"] = _span(tbs)
        tbs.read_tlv()
        spans["validity"] = _span(tbs)
        tbs.read_tlv()
        spans["subject"] = _span(tbs)
        tbs.read_tlv()
        spans["subjectPublicKeyInfo"] = _span(tbs)
        tbs.read_tlv()
        while not tbs.at_end() and tbs.peek_tag() != tags.context(3):
            tbs.read_tlv()  # issuerUniqueID / subjectUniqueID
        if not tbs.at_end():
            spans["extensions"] = _span(tbs)
            wrapper = tbs.read_context(3)
            sequence = wrapper.read_sequence()
            while not sequence.at_end():
                extension_span = _span(sequence)
                extension = sequence.read_sequence()
                extn_id = extension.read_oid()
                spans[f"extension:{extn_id.dotted}"] = extension_span
    except (ASN1Error, ValueError):
        pass
    return spans


def ocsp_spans(der: bytes) -> Dict[str, Span]:
    """Field spans for a DER OCSPResponse (RFC 6960 section 4.2.1)."""
    spans: Dict[str, Span] = {WHOLE: Span(0, len(der))}
    try:
        outer = Reader(der).read_sequence()
        spans["responseStatus"] = _span(outer)
        outer.read_tlv()
        if outer.at_end():
            return spans
        spans["responseBytes"] = _span(outer)
        response_bytes = outer.read_context(0).read_sequence()
        response_bytes.read_oid()
        basic = _content_reader(response_bytes, der)
        if basic is None:
            return spans
        basic_seq = basic.read_sequence()
        spans["tbsResponseData"] = _span(basic_seq)
        tbs = basic_seq.read_sequence()
        spans["basicSignatureAlgorithm"] = _span(basic_seq)
        basic_seq.read_tlv()
        spans["basicSignature"] = _span(basic_seq)
        basic_seq.read_tlv()
        if not basic_seq.at_end():
            spans["certs"] = _span(basic_seq)

        if not tbs.at_end() and tbs.peek_tag() == tags.context(0):
            tbs.read_tlv()  # version
        spans["responderID"] = _span(tbs)
        tbs.read_tlv()
        spans["producedAt"] = _span(tbs)
        tbs.read_tlv()
        spans["responses"] = _span(tbs)
        responses = tbs.read_sequence()
        index = 0
        while not responses.at_end():
            single_span = _span(responses)
            spans[f"singleResponse[{index}]"] = single_span
            single = responses.read_sequence()
            spans[f"certID[{index}]"] = _span(single)
            index += 1
        if not tbs.at_end() and tbs.peek_tag() == tags.context(1):
            spans["responseExtensions"] = _span(tbs)
    except (ASN1Error, ValueError):
        pass
    return spans


def crl_spans(der: bytes) -> Dict[str, Span]:
    """Field spans for a DER CertificateList (RFC 5280 section 5.1)."""
    spans: Dict[str, Span] = {WHOLE: Span(0, len(der))}
    try:
        outer = Reader(der).read_sequence()
        spans["tbsCertList"] = _span(outer)
        tbs = outer.read_sequence()
        spans["signatureAlgorithm"] = _span(outer)
        outer.read_tlv()
        spans["signatureValue"] = _span(outer)

        if not tbs.at_end() and tbs.peek_tag() == tags.INTEGER:
            spans["version"] = _span(tbs)
            tbs.read_tlv()
        spans["signature"] = _span(tbs)
        tbs.read_tlv()
        spans["issuer"] = _span(tbs)
        tbs.read_tlv()
        spans["thisUpdate"] = _span(tbs)
        tbs.read_tlv()
        if not tbs.at_end() and tbs.peek_tag() in (tags.UTC_TIME, tags.GENERALIZED_TIME):
            spans["nextUpdate"] = _span(tbs)
            tbs.read_tlv()
        if not tbs.at_end() and tbs.peek_tag() == tags.SEQUENCE:
            spans["revokedCertificates"] = _span(tbs)
            revoked = tbs.read_sequence()
            while not revoked.at_end():
                entry_span = _span(revoked)
                entry = revoked.read_sequence()
                serial = entry.read_integer()
                spans[f"entry:{serial}"] = entry_span
    except (ASN1Error, ValueError):
        pass
    return spans
