"""X.509 certificate conformance rules (RFC 5280 / RFC 7633).

The Must-Staple rules are the paper's Section 4 in static form: a CA
that mints a TLSFeature extension with a broken encoding, or a
Must-Staple certificate with no OCSP responder URL, has mis-issued a
certificate that no client can ever satisfy.
"""

from __future__ import annotations

from typing import Iterator

from ..asn1 import Reader, oid
from ..asn1.errors import ASN1Error
from ..x509 import Certificate
from ..x509.extensions import TLS_FEATURE_STATUS_REQUEST
from .engine import (
    KIND_CERTIFICATE,
    Artifact,
    LintContext,
    Violation,
    register,
)
from .findings import Severity

#: RFC 5280 §4.1.2.2: serialNumber content must fit in 20 octets.
MAX_SERIAL_OCTETS = 20


def _cert(artifact: Artifact) -> Certificate:
    return artifact.parsed  # type: ignore[return-value]


@register("X509_VERSION", Severity.WARN, KIND_CERTIFICATE,
          "RFC 5280 §4.1.2.1", "extension-bearing certificates must be v3")
def check_version(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    certificate = _cert(artifact)
    if certificate.version != 3:
        yield (f"certificate is v{certificate.version}, not v3",
               artifact.span("version", "tbsCertificate"))


@register("X509_SERIAL_NONPOSITIVE", Severity.ERROR, KIND_CERTIFICATE,
          "RFC 5280 §4.1.2.2", "serialNumber must be a positive integer")
def check_serial_positive(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    serial = _cert(artifact).serial_number
    if serial <= 0:
        yield (f"serialNumber {serial} is not positive",
               artifact.span("serialNumber"))


@register("X509_SERIAL_RANGE", Severity.ERROR, KIND_CERTIFICATE,
          "RFC 5280 §4.1.2.2", "serialNumber must not exceed 20 octets")
def check_serial_range(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    serial = _cert(artifact).serial_number
    if serial > 0:
        octets = (serial.bit_length() + 8) // 8  # + sign-bit headroom
        if octets > MAX_SERIAL_OCTETS:
            yield (f"serialNumber needs {octets} octets (max {MAX_SERIAL_OCTETS})",
                   artifact.span("serialNumber"))


@register("X509_VALIDITY_ORDER", Severity.ERROR, KIND_CERTIFICATE,
          "RFC 5280 §4.1.2.5", "notBefore must not follow notAfter")
def check_validity_order(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    validity = _cert(artifact).validity
    if validity.not_after < validity.not_before:
        yield (f"notAfter ({validity.not_after}) precedes "
               f"notBefore ({validity.not_before})", artifact.span("validity"))


@register("X509_EXPIRED", Severity.WARN, KIND_CERTIFICATE,
          "RFC 5280 §4.1.2.5", "certificate must not be expired at the reference time")
def check_expired(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    validity = _cert(artifact).validity
    if validity.not_after >= validity.not_before and \
            validity.not_after < ctx.reference_time - ctx.clock_skew:
        yield (f"expired {ctx.reference_time - validity.not_after}s before "
               f"the reference time", artifact.span("validity"))


@register("X509_NOT_YET_VALID", Severity.WARN, KIND_CERTIFICATE,
          "RFC 5280 §4.1.2.5", "certificate must be valid at the reference time")
def check_not_yet_valid(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    validity = _cert(artifact).validity
    if validity.not_before > ctx.reference_time + ctx.clock_skew:
        yield (f"notBefore is {validity.not_before - ctx.reference_time}s after "
               f"the reference time", artifact.span("validity"))


@register("X509_BC_MISSING", Severity.WARN, KIND_CERTIFICATE,
          "RFC 5280 §4.2.1.9", "v3 certificates should carry BasicConstraints")
def check_basic_constraints(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    certificate = _cert(artifact)
    if certificate.version == 3 and \
            certificate.extensions.get(oid.BASIC_CONSTRAINTS) is None:
        yield ("no BasicConstraints extension",
               artifact.span("extensions", "tbsCertificate"))


@register("X509_SKI_MISSING", Severity.WARN, KIND_CERTIFICATE,
          "RFC 5280 §4.2.1.2", "CA certificates must carry SubjectKeyIdentifier")
def check_ski(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    certificate = _cert(artifact)
    if certificate.is_ca and \
            certificate.extensions.get(oid.SUBJECT_KEY_IDENTIFIER) is None:
        yield ("CA certificate without SubjectKeyIdentifier",
               artifact.span("extensions", "tbsCertificate"))


@register("X509_AKI_MISSING", Severity.WARN, KIND_CERTIFICATE,
          "RFC 5280 §4.2.1.1", "non-self-issued certificates must carry AKI")
def check_aki(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    certificate = _cert(artifact)
    if not certificate.is_self_signed and \
            certificate.extensions.get(oid.AUTHORITY_KEY_IDENTIFIER) is None:
        yield ("no AuthorityKeyIdentifier on a non-self-issued certificate",
               artifact.span("extensions", "tbsCertificate"))


@register("X509_MUST_STAPLE_ENCODING", Severity.ERROR, KIND_CERTIFICATE,
          "RFC 7633 §4.1", "TLSFeature must encode as SEQUENCE OF INTEGER")
def check_must_staple_encoding(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    extension = _cert(artifact).extensions.get(oid.TLS_FEATURE)
    if extension is None:
        return
    span = artifact.span(f"extension:{oid.TLS_FEATURE.dotted}")
    try:
        sequence = Reader(extension.value).read_sequence()
        while not sequence.at_end():
            sequence.read_integer()
    except (ASN1Error, ValueError) as exc:
        yield (f"TLSFeature payload is not a SEQUENCE OF INTEGER: {exc}", span)


@register("X509_MUST_STAPLE_EMPTY", Severity.WARN, KIND_CERTIFICATE,
          "RFC 7633 §4.2", "TLSFeature should request status_request(5)")
def check_must_staple_features(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    extension = _cert(artifact).extensions.get(oid.TLS_FEATURE)
    if extension is None:
        return
    span = artifact.span(f"extension:{oid.TLS_FEATURE.dotted}")
    try:
        sequence = Reader(extension.value).read_sequence()
        features = []
        while not sequence.at_end():
            features.append(sequence.read_integer())
    except (ASN1Error, ValueError):
        return  # X509_MUST_STAPLE_ENCODING already fires
    if TLS_FEATURE_STATUS_REQUEST not in features:
        yield (f"TLSFeature {features} does not include "
               f"status_request({TLS_FEATURE_STATUS_REQUEST})", span)


@register("X509_MUST_STAPLE_NO_OCSP", Severity.ERROR, KIND_CERTIFICATE,
          "RFC 7633 §6", "Must-Staple certificates need an OCSP responder URL")
def check_must_staple_ocsp(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    certificate = _cert(artifact)
    try:
        must_staple = certificate.must_staple
    except (ASN1Error, ValueError):
        return  # X509_MUST_STAPLE_ENCODING already fires
    if must_staple and not certificate.ocsp_urls:
        yield ("Must-Staple certificate without an AIA OCSP URL — no "
               "staple can ever be fetched for it",
               artifact.span(f"extension:{oid.TLS_FEATURE.dotted}"))


@register("X509_AIA_OCSP_MISSING", Severity.WARN, KIND_CERTIFICATE,
          "RFC 5280 §4.2.2.1", "end-entity certificates should carry an OCSP URL")
def check_aia_ocsp(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    certificate = _cert(artifact)
    if not certificate.is_ca and not certificate.ocsp_urls:
        yield ("end-entity certificate without an AIA OCSP URL",
               artifact.span("extensions", "tbsCertificate"))


@register("X509_OCSP_URL_SCHEME", Severity.WARN, KIND_CERTIFICATE,
          "RFC 6960 App. A", "AIA OCSP URLs should use plain http")
def check_ocsp_scheme(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    certificate = _cert(artifact)
    span = artifact.span(f"extension:{oid.AUTHORITY_INFORMATION_ACCESS.dotted}")
    for url in certificate.ocsp_urls:
        if not url.startswith("http://"):
            yield (f"OCSP URL {url!r} is not plain http (an https responder "
                   f"makes revocation checking circular)", span)


@register("X509_SHA1_SIGNATURE", Severity.WARN, KIND_CERTIFICATE,
          "CA/B BR §7.1.3", "certificates should not be signed with SHA-1")
def check_sha1(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    certificate = _cert(artifact)
    if certificate.signature_algorithm == oid.SHA1_WITH_RSA:
        yield ("signature algorithm is sha1WithRSAEncryption",
               artifact.span("signatureAlgorithm"))


@register("X509_SIGNATURE", Severity.ERROR, KIND_CERTIFICATE,
          "RFC 5280 §4.1.1.3", "the signature must verify under the issuer key")
def check_signature(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    certificate = _cert(artifact)
    issuer = ctx.issuer
    if issuer is None and certificate.is_self_signed:
        issuer = certificate
    if issuer is None:
        return  # no issuer context: cannot judge
    try:
        ok = certificate.verify_signature(issuer.public_key)
    except (ASN1Error, ValueError):
        ok = False
    if not ok:
        yield ("certificate signature does not verify under the issuer key",
               artifact.span("signatureValue"))
