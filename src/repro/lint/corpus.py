"""Batch linting of the synthetic measurement corpus.

:func:`lint_world` drives every responder of a
:class:`~repro.datasets.world.MeasurementWorld` **statically**: it
calls each responder's handler directly at one fixed reference time
(no simulated network, so no vantage noise or outages), lints the
certificates, OCSP responses, and CRLs it collects, and aggregates the
findings into the paper's Figure-5 unusable-response breakdown.

Every probe is double-checked against the dynamic verification path
(:func:`repro.ocsp.verify.verify_response`) that the scanner — and
therefore :mod:`repro.core.quality` — uses for the real Figure 5, so a
divergence between the rule engine and the reference verifier is
surfaced as a ``disagreement`` instead of passing silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ca import CertificateAuthority, OCSPResponder
from ..core.quality import UNUSABLE_CLASSES
from ..crypto import KeyPool
from ..datasets.world import MeasurementWorld, WorldConfig
from ..ocsp import CertID, OCSPRequest
from ..ocsp.verify import OCSPError, verify_response
from ..simnet.clock import DAY, MEASUREMENT_START

from .engine import (
    KIND_CERTIFICATE,
    KIND_CRL,
    KIND_OCSP,
    RULES,
    LintContext,
    LintEngine,
)
from .findings import Finding, LintReport

#: Figure 5's class labels, derived from the quality module's taxonomy
#: so the static and dynamic breakdowns can never drift apart silently.
FIGURE5_CLASSES: Tuple[str, ...] = tuple(
    outcome.name.lower() for outcome in UNUSABLE_CLASSES
)

USABLE = "usable"

#: Lint-rule → probe-class mapping, in the same precedence order the
#: reference verifier short-circuits in (`verify_response`).
_LINT_CLASS_ORDER: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("malformed", ("OCSP_PARSE",)),
    ("error_status", ("OCSP_ERROR_STATUS",)),
    ("serial_mismatch", ("OCSP_CERTID_MISMATCH", "OCSP_CERTID_HASH")),
    ("bad_signature", ("OCSP_SIGNATURE",)),
    ("not_yet_valid", ("OCSP_THISUPDATE_FUTURE",)),
    ("expired", ("OCSP_UPDATE_ORDER", "OCSP_EXPIRED")),
)

_VERIFY_CLASS: Dict[OCSPError, str] = {
    OCSPError.MALFORMED: "malformed",
    OCSPError.ERROR_STATUS: "error_status",
    OCSPError.SERIAL_MISMATCH: "serial_mismatch",
    OCSPError.BAD_SIGNATURE: "bad_signature",
    OCSPError.NOT_YET_VALID: "not_yet_valid",
    OCSPError.EXPIRED: "expired",
    OCSPError.NONCE_MISMATCH: "serial_mismatch",  # unused without a nonce
}

def classify_findings(findings: Sequence[Finding]) -> str:
    """Collapse one OCSP probe's findings into a probe class."""
    fired = {finding.rule_id for finding in findings}
    for label, rule_ids in _LINT_CLASS_ORDER:
        if fired.intersection(rule_ids):
            return label
    return USABLE

@dataclass
class ProbeClassification:
    """The static and dynamic verdicts for one (cert, responder) probe."""

    source: str
    lint_class: str
    verify_class: str

    @property
    def agree(self) -> bool:
        return self.lint_class == self.verify_class

@dataclass
class CorpusLintSummary:
    """Everything a batch lint of the corpus produced."""

    report: LintReport
    reference_time: int
    probes: int = 0
    certificates: int = 0
    crls: int = 0
    lint_classes: Dict[str, int] = field(default_factory=dict)
    verify_classes: Dict[str, int] = field(default_factory=dict)
    disagreements: List[ProbeClassification] = field(default_factory=list)

    @property
    def agreement(self) -> int:
        """Probes where the rule engine matches the reference verifier."""
        return self.probes - len(self.disagreements)

    def figure5_percent(self) -> Dict[str, float]:
        """Figure 5 statically: % of served responses per unusable class."""
        total = self.probes or 1
        return {
            label: 100.0 * self.lint_classes.get(label, 0) / total
            for label in FIGURE5_CLASSES
        }

    def unusable_percent(self) -> float:
        """Total unusable percentage (the Figure 5 stack height)."""
        return sum(self.figure5_percent().values())

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (deterministic key order via sort_keys)."""
        return {
            "referenceTime": self.reference_time,
            "probes": self.probes,
            "certificates": self.certificates,
            "crls": self.crls,
            "lintClasses": dict(sorted(self.lint_classes.items())),
            "verifyClasses": dict(sorted(self.verify_classes.items())),
            "figure5Percent": self.figure5_percent(),
            "unusablePercent": self.unusable_percent(),
            "agreement": self.agreement,
            "disagreements": [
                {"source": d.source, "lint": d.lint_class, "verify": d.verify_class}
                for d in self.disagreements
            ],
            "findingsBySeverity": self.report.by_severity(),
            "findingsByRule": self.report.by_rule(),
        }

def lint_world(world: Optional[MeasurementWorld] = None,
               config: Optional[WorldConfig] = None,
               reference_time: Optional[int] = None,
               max_sites: Optional[int] = None) -> CorpusLintSummary:
    """Statically lint an entire measurement world at one instant."""
    if world is None:
        world = MeasurementWorld(config)
    now = world.config.start + DAY if reference_time is None else reference_time
    engine = LintEngine(LintContext(reference_time=now))
    report = LintReport(reference_time=now)
    summary = CorpusLintSummary(report=report, reference_time=now)

    sites = world.sites if max_sites is None else world.sites[:max_sites]
    for site in sites:
        issuer = site.authority.certificate
        cert_ctx = LintContext(reference_time=now, issuer=issuer)
        for certificate, cert_id in zip(site.certificates, site.cert_ids):
            source = f"{site.url}/serial={cert_id.serial_number}"
            report.artifacts += 1
            summary.certificates += 1
            report.extend(engine.lint_der(
                certificate.der, KIND_CERTIFICATE, f"{source}/cert", cert_ctx))

            request_der = OCSPRequest.for_single(cert_id).encode()
            response_der = site.responder.handle(request_der, now).body
            ocsp_ctx = LintContext(reference_time=now, issuer=issuer,
                                   cert_id=cert_id)
            ocsp_findings = engine.lint_der(
                response_der, KIND_OCSP, f"{source}/ocsp", ocsp_ctx)
            report.artifacts += 1
            report.extend(ocsp_findings)

            summary.probes += 1
            lint_class = classify_findings(ocsp_findings)
            check = verify_response(response_der, cert_id, issuer, now)
            verify_class = USABLE if check.ok else _VERIFY_CLASS[check.error]
            summary.lint_classes[lint_class] = \
                summary.lint_classes.get(lint_class, 0) + 1
            summary.verify_classes[verify_class] = \
                summary.verify_classes.get(verify_class, 0) + 1
            if lint_class != verify_class:
                summary.disagreements.append(ProbeClassification(
                    source=source, lint_class=lint_class,
                    verify_class=verify_class))

        crl = site.authority.build_crl(now)
        report.artifacts += 1
        summary.crls += 1
        report.extend(engine.lint_der(
            crl.der, KIND_CRL, f"{site.url}/crl", cert_ctx))

    report.sort()
    summary.disagreements.sort(key=lambda d: d.source)
    return summary

# -- self test (CLI --self-test, CI smoke) -----------------------------------

def self_test(reference_time: int = MEASUREMENT_START + DAY) -> Tuple[bool, str]:
    """Mint a known-good chain + OCSP response + CRL and lint them.

    Returns ``(ok, details)``: *ok* is True when the registry holds at
    least 15 rules and the freshly minted artifacts produce zero ERROR
    findings — the invariant the property tests pin down.
    """
    pool = KeyPool(size=4, bits=512, seed=11)
    url = "http://ocsp.selftest.test"
    root = CertificateAuthority.create_root(
        "Selftest Root", ocsp_url=url, key_pool=pool,
        not_before=reference_time - 3 * 365 * DAY)
    issuing = root.create_intermediate("Selftest CA", url, key_pool=pool)
    issuing.crl_url = "http://crl.selftest.test/ca.crl"
    leaf = issuing.issue_leaf("staple.selftest.example", pool.take(),
                              not_before=reference_time - DAY,
                              must_staple=True)
    cert_id = CertID.for_certificate(leaf, issuing.certificate)
    responder = OCSPResponder(issuing, url,
                              epoch_start=reference_time - 30 * DAY)
    response_der = responder.handle(
        OCSPRequest.for_single(cert_id).encode(), reference_time).body
    crl = issuing.build_crl(reference_time)

    engine = LintEngine()
    report = LintReport(reference_time=reference_time)
    report.extend(engine.lint_der(
        root.certificate.der, KIND_CERTIFICATE, "selftest/root",
        LintContext(reference_time=reference_time)))
    issued_ctx = LintContext(reference_time=reference_time,
                             issuer=root.certificate)
    report.extend(engine.lint_der(
        issuing.certificate.der, KIND_CERTIFICATE, "selftest/ca", issued_ctx))
    leaf_ctx = LintContext(reference_time=reference_time,
                           issuer=issuing.certificate, cert_id=cert_id)
    report.extend(engine.lint_der(
        leaf.der, KIND_CERTIFICATE, "selftest/leaf", leaf_ctx))
    report.extend(engine.lint_der(
        response_der, KIND_OCSP, "selftest/ocsp", leaf_ctx))
    report.extend(engine.lint_der(crl.der, KIND_CRL, "selftest/crl", leaf_ctx))
    report.artifacts = 5
    report.sort()

    problems: List[str] = []
    if len(RULES) < 15:
        problems.append(f"only {len(RULES)} rules registered (need >= 15)")
    for finding in report.errors:
        problems.append(f"unexpected ERROR: {finding.render()}")
    ok = not problems
    lines = [f"rules registered: {len(RULES)}",
             f"artifacts linted: {report.artifacts}",
             f"findings: {len(report.findings)} "
             f"({len(report.errors)} errors)"]
    lines.extend(problems)
    lines.append("self-test OK" if ok else "self-test FAILED")
    return ok, "\n".join(lines)
