"""OCSP response conformance rules (RFC 6960).

These are the static mirror of the paper's Section 5 measurements:
the update-window rules reproduce Figure 9's zero-margin and
future-dated ``thisUpdate`` classes, the CertID and signature rules
reproduce Figure 5's serial-mismatch and bad-signature classes, and
the superfluous-certificate / multi-serial rules quantify Figures 6
and 7 for a single response.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..ocsp.response import BasicOCSPResponse, OCSPResponse, ResponseStatus
from ..ocsp.verify import _find_delegate
from .engine import KIND_OCSP, Artifact, LintContext, Violation, register
from .findings import Severity


def _response(artifact: Artifact) -> OCSPResponse:
    return artifact.parsed  # type: ignore[return-value]


def _basic(artifact: Artifact) -> Optional[BasicOCSPResponse]:
    return _response(artifact).basic


@register("OCSP_ERROR_STATUS", Severity.WARN, KIND_OCSP,
          "RFC 6960 §4.2.1", "responseStatus should be successful")
def check_status(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    response = _response(artifact)
    if response.response_status is not ResponseStatus.SUCCESSFUL:
        yield (f"responseStatus is {response.response_status.name.lower()}",
               artifact.span("responseStatus"))
    elif response.basic is None:
        yield ("successful response without a BasicOCSPResponse",
               artifact.span("responseStatus"))


@register("OCSP_UPDATE_ORDER", Severity.ERROR, KIND_OCSP,
          "RFC 6960 §4.2.2.1", "nextUpdate must follow thisUpdate")
def check_update_order(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    basic = _basic(artifact)
    if basic is None:
        return
    for index, single in enumerate(basic.single_responses):
        if single.next_update is not None and single.next_update <= single.this_update:
            yield (f"nextUpdate ({single.next_update}) does not follow "
                   f"thisUpdate ({single.this_update}) for serial "
                   f"{single.cert_id.serial_number}",
                   artifact.span(f"singleResponse[{index}]"))


@register("OCSP_EXPIRED", Severity.ERROR, KIND_OCSP,
          "RFC 6960 §4.2.2.1", "nextUpdate must not be in the past")
def check_expired(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    basic = _basic(artifact)
    if basic is None:
        return
    for index, single in enumerate(basic.single_responses):
        if single.next_update is not None and \
                single.next_update > single.this_update and \
                single.next_update < ctx.reference_time - ctx.clock_skew:
            yield (f"nextUpdate expired {ctx.reference_time - single.next_update}s "
                   f"before the reference time",
                   artifact.span(f"singleResponse[{index}]"))


@register("OCSP_THISUPDATE_FUTURE", Severity.ERROR, KIND_OCSP,
          "RFC 6960 §4.2.2.1", "thisUpdate must not be in the future")
def check_future(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    basic = _basic(artifact)
    if basic is None:
        return
    for index, single in enumerate(basic.single_responses):
        if single.this_update > ctx.reference_time + ctx.clock_skew:
            yield (f"thisUpdate is {single.this_update - ctx.reference_time}s "
                   f"in the future (clients with accurate clocks reject this)",
                   artifact.span(f"singleResponse[{index}]"))


@register("OCSP_ZERO_MARGIN", Severity.WARN, KIND_OCSP,
          "paper Fig. 9", "thisUpdate should leave margin for clock skew")
def check_zero_margin(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    basic = _basic(artifact)
    if basic is None:
        return
    for index, single in enumerate(basic.single_responses):
        margin = ctx.reference_time - single.this_update
        if 0 <= margin < ctx.zero_margin_threshold:
            yield (f"thisUpdate margin is only {margin}s — clients with "
                   f"slightly slow clocks will consider the response invalid",
                   artifact.span(f"singleResponse[{index}]"))


@register("OCSP_BLANK_NEXT_UPDATE", Severity.WARN, KIND_OCSP,
          "RFC 6960 §4.2.2.1 / paper Fig. 8", "nextUpdate should be present")
def check_blank(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    basic = _basic(artifact)
    if basic is None:
        return
    for index, single in enumerate(basic.single_responses):
        if single.next_update is None:
            yield ("blank nextUpdate: caches cannot tell when newer "
                   "revocation information is available",
                   artifact.span(f"singleResponse[{index}]"))


@register("OCSP_VALIDITY_OVER_MONTH", Severity.WARN, KIND_OCSP,
          "paper Fig. 8", "validity windows over a month defeat revocation")
def check_long_validity(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    basic = _basic(artifact)
    if basic is None:
        return
    for index, single in enumerate(basic.single_responses):
        period = single.validity_period
        if period is not None and period > ctx.max_validity:
            yield (f"validity period is {period}s "
                   f"({period // 86400} days > {ctx.max_validity // 86400})",
                   artifact.span(f"singleResponse[{index}]"))


@register("OCSP_PRODUCED_AT_RANGE", Severity.WARN, KIND_OCSP,
          "RFC 6960 §4.2.2.1", "producedAt must be plausible")
def check_produced_at(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    basic = _basic(artifact)
    if basic is None:
        return
    span = artifact.span("producedAt")
    if basic.produced_at > ctx.reference_time + ctx.clock_skew:
        yield (f"producedAt is {basic.produced_at - ctx.reference_time}s in "
               f"the future", span)
    for single in basic.single_responses:
        if basic.produced_at < single.this_update:
            yield (f"producedAt ({basic.produced_at}) precedes thisUpdate "
                   f"({single.this_update}) for serial "
                   f"{single.cert_id.serial_number}", span)
            break


@register("OCSP_CERTID_MISMATCH", Severity.ERROR, KIND_OCSP,
          "RFC 6960 §4.1.1 / paper Fig. 5", "the response must answer the requested serial")
def check_certid_mismatch(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    basic = _basic(artifact)
    if basic is None or ctx.cert_id is None:
        return
    if basic.find_single(ctx.cert_id.serial_number) is None:
        answered = ", ".join(str(s) for s in basic.serial_numbers) or "none"
        yield (f"requested serial {ctx.cert_id.serial_number} is not in the "
               f"response (answered: {answered})", artifact.span("responses"))


@register("OCSP_CERTID_HASH", Severity.ERROR, KIND_OCSP,
          "RFC 6960 §4.1.1", "CertID hashes must match the issuer")
def check_certid_hash(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    basic = _basic(artifact)
    if basic is None or ctx.issuer is None:
        return
    for index, single in enumerate(basic.single_responses):
        try:
            ok = single.cert_id.matches_issuer(ctx.issuer)
        except ValueError:
            ok = False
        if not ok:
            yield (f"CertID hashes for serial {single.cert_id.serial_number} "
                   f"do not match the issuer certificate",
                   artifact.span(f"certID[{index}]", f"singleResponse[{index}]"))


@register("OCSP_SIGNATURE", Severity.ERROR, KIND_OCSP,
          "RFC 6960 §4.2.2.2 / paper Fig. 5", "the signature must verify")
def check_signature(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    basic = _basic(artifact)
    if basic is None or ctx.issuer is None:
        return
    if basic.verify_signature(ctx.issuer.public_key):
        return
    delegate = _find_delegate(basic, ctx.issuer)
    if delegate is not None and basic.verify_signature(delegate.public_key):
        return
    yield ("signature verifies under neither the issuer key nor any "
           "valid delegated responder certificate",
           artifact.span("basicSignature"))


@register("OCSP_NONCE_MISMATCH", Severity.ERROR, KIND_OCSP,
          "RFC 6960 §4.4.1", "the request nonce must be echoed")
def check_nonce(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    basic = _basic(artifact)
    if basic is None or ctx.expected_nonce is None:
        return
    if basic.nonce != ctx.expected_nonce:
        got = "absent" if basic.nonce is None else basic.nonce.hex()
        yield (f"nonce echo is {got}, expected {ctx.expected_nonce.hex()}",
               artifact.span("responseExtensions", "tbsResponseData"))


@register("OCSP_SUPERFLUOUS_CERTS", Severity.INFO, KIND_OCSP,
          "paper Fig. 6", "responses should not embed extra certificates")
def check_superfluous(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    basic = _basic(artifact)
    if basic is None:
        return
    if len(basic.certificates) > 1:
        yield (f"{len(basic.certificates)} embedded certificates — at most "
               f"one (the delegated signer) is ever needed",
               artifact.span("certs"))


@register("OCSP_MULTI_SERIAL", Severity.INFO, KIND_OCSP,
          "paper Fig. 7", "responses should answer only the requested serial")
def check_multi_serial(artifact: Artifact, ctx: LintContext) -> Iterator[Violation]:
    basic = _basic(artifact)
    if basic is None:
        return
    count = len(basic.single_responses)
    if count > 1:
        yield (f"{count} SingleResponses stuffed into one response",
               artifact.span("responses"))
