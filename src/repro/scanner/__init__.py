"""Measurement clients: the active scanning side of the reproduction.

* :mod:`~repro.scanner.hourly` — the Hourly dataset scanner (Figs 3-9),
* :mod:`~repro.scanner.alexa_scan` — Alexa1M availability/impact (Fig 4),
* :mod:`~repro.scanner.consistency` — CRL↔OCSP cross-check (Table 1, Fig 10),
* :mod:`~repro.scanner.cdn` — the Akamai-style CDN perspective,
* :mod:`~repro.scanner.tls_scan` — stapling detection handshakes (§7.1).
"""

from .results import ProbeOutcome, ProbeRecord, classify_probe
from .hourly import HourlyScanner, ScanDataset
from .alexa_scan import (
    Alexa1MSummary,
    AlexaAssignment,
    AlexaAvailability,
    alexa1m_scan,
)
from .consistency import (
    ConsistencyConfig,
    ConsistencyReport,
    ConsistencyWorld,
    DiscrepancyRow,
    ReasonComparison,
    TABLE1_ROWS,
    TimeDelta,
    run_consistency_scan,
)
from .cdn import CDNCache, OriginFetchLog
from .tls_scan import HandshakeObservation, scan_servers, stapling_rate
from .selftest import Finding, Grade, SelfTestReport, self_test_responder

__all__ = [
    "Alexa1MSummary",
    "AlexaAssignment",
    "AlexaAvailability",
    "CDNCache",
    "ConsistencyConfig",
    "ConsistencyReport",
    "ConsistencyWorld",
    "DiscrepancyRow",
    "HandshakeObservation",
    "HourlyScanner",
    "OriginFetchLog",
    "ProbeOutcome",
    "ProbeRecord",
    "ReasonComparison",
    "ScanDataset",
    "SelfTestReport",
    "Grade",
    "Finding",
    "self_test_responder",
    "TABLE1_ROWS",
    "TimeDelta",
    "alexa1m_scan",
    "classify_probe",
    "run_consistency_scan",
    "scan_servers",
    "stapling_rate",
]
