"""The CDN perspective (paper Section 5.2, "CDN's Perspective").

"CDNs, which are used by certificate authorities to cache OCSP
responses to improve scalability and reliability, frequently contact
OCSP responders. ... The logs, spanning a period of approximately 60
hours, reveal that the CDN contacts a small number of OCSP responders
(approximately 20) ... Because most responses are served from cache,
only a small fraction of TLS connections ... cause the CDN servers to
contact the OCSP [responders]. But in those instances ... the HTTP
status codes recorded in the logs indicate a 100% success rate."

:class:`CDNCache` models an edge cache fronting responders: client
lookups hit the cache; origin fetches happen only on miss/expiry, are
retried on failure, and are logged like Akamai's servers logged theirs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..asn1.errors import ASN1Error
from ..ocsp import OCSPResponse
from ..simnet import Network, ocsp_post


@dataclass
class OriginFetchLog:
    """One logged origin contact (what the paper read from Akamai)."""

    url: str
    timestamp: int
    http_status: Optional[int]
    ok: bool


@dataclass
class _CacheEntry:
    body: bytes
    expires_at: Optional[int]

    def fresh(self, now: int) -> bool:
        return self.expires_at is None or now <= self.expires_at


class CDNCache:
    """An OCSP-caching CDN edge with origin-fetch logging."""

    def __init__(self, network: Network, vantage: str = "Virginia",
                 default_ttl: int = 3600, max_retries: int = 2) -> None:
        self.network = network
        self.vantage = vantage
        self.default_ttl = default_ttl
        self.max_retries = max_retries
        self._cache: Dict[Tuple[str, bytes], _CacheEntry] = {}
        self.origin_log: List[OriginFetchLog] = []
        #: Parse failures seen while computing cache TTLs — one
        #: ``(url, timestamp, "ExcClass: message")`` triple per body
        #: that did not decode, so hostile origins are attributable.
        self.parse_errors: List[Tuple[str, int, str]] = []
        self.client_lookups = 0
        self.cache_hits = 0

    def lookup(self, url: str, request_der: bytes, now: int) -> Optional[bytes]:
        """Serve an OCSP lookup, from cache when possible."""
        self.client_lookups += 1
        key = (url, request_der)
        entry = self._cache.get(key)
        if entry is not None and entry.fresh(now):
            self.cache_hits += 1
            return entry.body

        body = self._fetch_origin(url, request_der, now)
        if body is None:
            # Serve stale on origin failure — CDN resilience.
            return entry.body if entry is not None else None
        self._cache[key] = _CacheEntry(body, self._expiry(url, body, now))
        return body

    def _fetch_origin(self, url: str, request_der: bytes, now: int) -> Optional[bytes]:
        for attempt in range(self.max_retries + 1):
            fetch = self.network.fetch(self.vantage,
                                       ocsp_post(url + "/", request_der),
                                       now + attempt)
            self.origin_log.append(OriginFetchLog(
                url=url, timestamp=now + attempt,
                http_status=fetch.status_code, ok=fetch.ok,
            ))
            if fetch.ok:
                return fetch.response.body
        return None

    def _expiry(self, url: str, body: bytes, now: int) -> Optional[int]:
        try:
            response = OCSPResponse.from_der(body)
        except (ASN1Error, ValueError) as exc:
            self.parse_errors.append((url, now, f"{type(exc).__name__}: {exc}"))
            return now + 60  # do not cache garbage for long
        if response.basic is None or not response.basic.single_responses:
            return now + 60
        next_update = response.basic.single_responses[0].next_update
        if next_update is None:
            return now + self.default_ttl
        return min(next_update, now + 7 * 86400)

    # -- the Akamai-log analysis ---------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Fraction of client lookups served from cache."""
        if not self.client_lookups:
            return 0.0
        return self.cache_hits / self.client_lookups

    def origin_success_rate(self) -> float:
        """Success rate over logged origin contacts (the paper's 100%)."""
        successes = 0
        seen = set()
        # Count a contact successful if any retry in its burst succeeded,
        # mirroring how per-lookup success shows in the logs.
        for log in self.origin_log:
            seen.add((log.url, log.timestamp - (log.timestamp % 3)))
        bursts: Dict[tuple, bool] = {}
        for log in self.origin_log:
            key = (log.url, log.timestamp - (log.timestamp % 3))
            bursts[key] = bursts.get(key, False) or log.ok
        if not bursts:
            return 1.0
        return sum(bursts.values()) / len(bursts)

    def responders_contacted(self) -> int:
        """Distinct responder URLs in the origin log (paper: ~20)."""
        return len({log.url for log in self.origin_log})
