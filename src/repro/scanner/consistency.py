"""CRL ↔ OCSP consistency measurement (paper Section 5.4, Table 1 and
Figure 10).

The paper downloaded 1,568 CRLs from Alexa-domain certificates,
extracted 2,041,345 revoked serials, kept the 728,261 that were
unexpired and cross-referenced in the Censys corpus, and issued OCSP
requests for each — finding seven responders whose OCSP status
contradicted their CA's CRL, and 863 responses (0.15%) whose
*revocation time* differed between the two channels.

This module builds a scaled "consistency world" with those seven
misbehaving responders plus a consistent bulk, then replays the
cross-check through real CRL downloads and real OCSP requests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ca import CertificateAuthority, OCSPResponder, ResponderProfile
from ..crypto import KeyPool
from ..ocsp import CertID, CertStatus, OCSPRequest, verify_response
from ..simnet import DAY, HOUR, Network, HTTPRequest, ocsp_post, ocsp_service
from ..simnet.clock import ALEXA_SCAN_DATE
from ..x509 import CertificateList, Name, REASON_KEY_COMPROMISE, REASON_SUPERSEDED, self_signed
from ..ca.responder import CRLService

#: Paper Table 1 — (OCSP URL, CRL host, #Unknown, #Good, #Revoked).
TABLE1_ROWS = [
    ("ocsp.camerfirma.com", "crl1.camerfirma.com", 0, 7, 369),
    ("ocsp.quovadisglobal.com", "crl.quovadisglobal.com", 0, 1, 514),
    ("ocsp.startssl.com", "crl.startssl.com", 0, 1, 980),
    ("ss.symcd.com", "ss.symcb.com", 0, 1, 28_023),
    ("twcasslocsp.twca.com.tw", "sslserver.twca.com.tw", 0, 1, 122),
    ("ocsp2.globalsign.com/gsalphasha2g2", "crl2.alphassl.com", 5_375, 0, 0),
    ("ocsp.firmaprofesional.com", "crl.firmaprofesional.com", 11, 0, 0),
]

#: Paper totals for the cross-check.
PAPER_REVOKED_CHECKED = 728_261
PAPER_TIME_DIFFERING = 863          # 0.15% of responses
PAPER_TIME_NEGATIVE = 127           # 14.7% of the differing ones
MSOCSP_MIN_LAG = 7 * HOUR           # msocsp lag lower bound
MSOCSP_MAX_LAG = 9 * DAY            # and upper bound
MAX_TAIL_OFFSET = 137_000_000       # "over 4 years!"


@dataclass
class ConsistencyConfig:
    """Scale and seed for the consistency world."""

    #: Divisor applied to the paper's certificate counts.
    scale: int = 40
    seed: int = 17
    now: int = ALEXA_SCAN_DATE
    #: Number of fully consistent bulk CAs.
    consistent_cas: int = 12
    #: Fraction of revocations carrying a CRL reason code (~15%,
    #: "the vast majority of the revocations actually include no
    #: reason code").
    reason_fraction: float = 0.15

    def scaled(self, count: int) -> int:
        """Scale a paper count down (minimum 1 when nonzero)."""
        if count == 0:
            return 0
        return max(1, round(count / self.scale))


@dataclass
class ConsistencySite:
    """One CA in the consistency world."""

    name: str
    ocsp_url: str
    crl_url: str
    authority: CertificateAuthority
    responder: OCSPResponder
    crl_service: CRLService
    #: Serials revoked on the CRL, with per-serial expected OCSP truth.
    revoked_serials: List[int] = field(default_factory=list)
    #: serial -> certificate notAfter (for the expiry filter).
    expiry: Dict[int, int] = field(default_factory=dict)


class ConsistencyWorld:
    """The scaled population of CAs for the Table-1 / Figure-10 study."""

    def __init__(self, config: Optional[ConsistencyConfig] = None) -> None:
        self.config = config or ConsistencyConfig()
        self.rng = random.Random(self.config.seed)
        self.network = Network()
        self.sites: List[ConsistencySite] = []
        self._key_pool = KeyPool(size=8, bits=512, seed=self.config.seed)
        self._serial_cursor = 1000
        self._build()

    def _make_site(self, name: str, ocsp_url: str, crl_url: str,
                   profile: Optional[ResponderProfile] = None) -> ConsistencySite:
        now = self.config.now
        key = self._key_pool.take()
        certificate = self_signed(
            Name.build(f"{name} CA", organization=name), key, serial=1,
            not_before=now - 5 * 365 * DAY, not_after=now + 10 * 365 * DAY,
        )
        authority = CertificateAuthority(name, key, certificate,
                                         ocsp_url=f"http://{ocsp_url}",
                                         crl_url=f"http://{crl_url}/ca.crl")
        responder = OCSPResponder(
            authority, authority.ocsp_url,
            profile or ResponderProfile(update_interval=None, this_update_margin=HOUR),
            epoch_start=now - 30 * DAY,
        )
        crl_service = CRLService(authority, authority.crl_url, epoch_start=now - DAY)
        ocsp_host = ocsp_url.split("/")[0]
        crl_host = crl_url.split("/")[0]
        origin = self.network.add_origin(f"{name}-ocsp", "us-east",
                                         ocsp_service(responder))
        self.network.bind(ocsp_host, origin)
        crl_origin = self.network.add_origin(f"{name}-crl", "us-east", crl_service.handle)
        self.network.bind(crl_host, crl_origin)
        site = ConsistencySite(name, authority.ocsp_url, authority.crl_url,
                               authority, responder, crl_service)
        self.sites.append(site)
        return site

    def _revoke_population(self, site: ConsistencySite, count: int, *,
                           drop_from_ocsp: int = 0,
                           time_offsets: Optional[List[int]] = None) -> None:
        """Revoke *count* serials on a site; the first *drop_from_ocsp*
        never reach the OCSP database (→ OCSP says Good)."""
        now = self.config.now
        rng = self.rng
        for i in range(count):
            serial = self._serial_cursor
            self._serial_cursor += 1
            revoked_at = now - rng.randint(1, 300) * DAY
            reason = None
            if rng.random() < self.config.reason_fraction:
                reason = rng.choice([REASON_KEY_COMPROMISE, REASON_SUPERSEDED])
            offset = time_offsets[i] if time_offsets else 0
            site.authority.registry.revoke(
                serial, revoked_at, reason,
                ocsp_visible=(i >= drop_from_ocsp),
                ocsp_time_offset=offset,
            )
            site.revoked_serials.append(serial)
            # All checked certificates are unexpired, per the paper's filter.
            site.expiry[serial] = now + rng.randint(30, 700) * DAY

    def _build(self) -> None:
        config = self.config
        rng = self.rng

        # The seven Table-1 responders.
        for ocsp_url, crl_url, unknown, good, revoked in TABLE1_ROWS:
            name = ocsp_url.split(".")[1] if ocsp_url.startswith("ocsp") else ocsp_url.split(".")[0]
            if unknown > 0:
                profile = ResponderProfile(update_interval=None,
                                           this_update_margin=HOUR,
                                           unknown_for_all=True)
                site = self._make_site(name, ocsp_url, crl_url, profile)
                self._revoke_population(site, config.scaled(unknown))
            else:
                site = self._make_site(name, ocsp_url, crl_url)
                self._revoke_population(
                    site, config.scaled(good) + config.scaled(revoked),
                    drop_from_ocsp=config.scaled(good),
                )

        # msocsp: every revocation time lags the CRL by 7h - 9d.
        msocsp_count = config.scaled(700)
        lags = [rng.randint(MSOCSP_MIN_LAG, MSOCSP_MAX_LAG) for _ in range(msocsp_count)]
        site = self._make_site("msocsp", "ocsp.msocsp.com", "crl.microsoft.com")
        self._revoke_population(site, msocsp_count, time_offsets=lags)

        # One responder with OCSP revocation times *earlier* than the
        # CRL (the 14.7% negative tail, x from -43,200 s).
        negative_count = config.scaled(PAPER_TIME_NEGATIVE)
        offsets = [-rng.randint(60, 43_200) for _ in range(negative_count)]
        site = self._make_site("earlybird", "ocsp.earlybird.test", "crl.earlybird.test")
        self._revoke_population(site, negative_count, time_offsets=offsets)

        # A couple of extreme positive offsets ("over 4 years!").
        site = self._make_site("longtail", "ocsp.longtail.test", "crl.longtail.test")
        self._revoke_population(site, 2, time_offsets=[110_000_000, MAX_TAIL_OFFSET])

        # The consistent bulk.
        bulk_total = config.scaled(PAPER_REVOKED_CHECKED) - self._total_revoked()
        per_ca = max(1, bulk_total // config.consistent_cas)
        for i in range(config.consistent_cas):
            site = self._make_site(f"bulk{i}", f"ocsp.bulk{i}.test", f"crl.bulk{i}.test")
            self._revoke_population(site, per_ca)

    def _total_revoked(self) -> int:
        return sum(len(site.revoked_serials) for site in self.sites)


# -- the scan ------------------------------------------------------------------------


@dataclass
class DiscrepancyRow:
    """One Table-1 row: counts of OCSP answers for CRL-revoked serials."""

    ocsp_url: str
    crl_url: str
    unknown: int = 0
    good: int = 0
    revoked: int = 0

    @property
    def has_discrepancy(self) -> bool:
        """True when any CRL-revoked serial was not Revoked per OCSP."""
        return self.unknown > 0 or self.good > 0


@dataclass
class TimeDelta:
    """One (serial, OCSP time - CRL time) pair for Figure 10."""

    ocsp_url: str
    serial_number: int
    delta: int


@dataclass
class ReasonComparison:
    """Reason-code agreement counters (Section 5.4, last paragraph)."""

    total: int = 0
    differing: int = 0
    crl_only: int = 0  # CRL has a reason, OCSP does not (the 99.99%)

    @property
    def differing_fraction(self) -> float:
        return self.differing / self.total if self.total else 0.0


@dataclass
class ConsistencyReport:
    """Everything the consistency scan produces."""

    rows: List[DiscrepancyRow]
    time_deltas: List[TimeDelta]
    reasons: ReasonComparison
    responses_collected: int
    serials_checked: int

    def discrepant_rows(self) -> List[DiscrepancyRow]:
        """Rows with status discrepancies (Table 1's content)."""
        return [row for row in self.rows if row.has_discrepancy]

    def differing_time_fraction(self) -> float:
        """Fraction of responses whose revocation time differs."""
        nonzero = sum(1 for delta in self.time_deltas if delta.delta != 0)
        return nonzero / self.responses_collected if self.responses_collected else 0.0


def run_consistency_scan(world: ConsistencyWorld,
                         vantage: str = "Virginia") -> ConsistencyReport:
    """Replay the paper's CRL↔OCSP cross-check over the world."""
    now = world.config.now
    rows: List[DiscrepancyRow] = []
    deltas: List[TimeDelta] = []
    reasons = ReasonComparison()
    collected = 0
    checked = 0

    for site in world.sites:
        # 1. Download and parse the CRL.
        crl_fetch = world.network.fetch(
            vantage, HTTPRequest("GET", site.crl_url), now
        )
        if not crl_fetch.ok:
            continue
        crl = CertificateList.from_der(crl_fetch.response.body)
        if not crl.verify_signature(site.authority.key.public_key):
            continue

        row = DiscrepancyRow(ocsp_url=site.ocsp_url, crl_url=site.crl_url)
        for entry in crl.revoked:
            # 2. Expiry filter: "disregard any certificates that appear
            # in the CRLs but have already expired".
            expiry = site.expiry.get(entry.serial_number)
            if expiry is None or expiry < now:
                continue
            checked += 1
            # 3. OCSP request for the serial.
            cert_id = CertID(
                hash_name="sha1",
                issuer_name_hash=site.authority.certificate.subject.hash_sha1(),
                issuer_key_hash=site.authority.certificate.key_hash_sha1(),
                serial_number=entry.serial_number,
            )
            request = OCSPRequest.for_single(cert_id)
            fetch = world.network.fetch(
                vantage, ocsp_post(site.ocsp_url + "/", request.encode()), now
            )
            if not fetch.ok:
                continue
            check = verify_response(fetch.response.body, cert_id,
                                    site.authority.certificate, now)
            if not check.ok:
                continue
            collected += 1
            if check.cert_status is CertStatus.GOOD:
                row.good += 1
            elif check.cert_status is CertStatus.UNKNOWN:
                row.unknown += 1
            else:
                row.revoked += 1
                info = check.single.revoked_info
                deltas.append(TimeDelta(
                    ocsp_url=site.ocsp_url,
                    serial_number=entry.serial_number,
                    delta=info.revocation_time - entry.revocation_date,
                ))
                reasons.total += 1
                crl_reason = entry.reason
                ocsp_reason = info.reason
                if crl_reason != ocsp_reason:
                    reasons.differing += 1
                    if crl_reason is not None and ocsp_reason is None:
                        reasons.crl_only += 1
        rows.append(row)

    return ConsistencyReport(
        rows=rows,
        time_deltas=deltas,
        reasons=reasons,
        responses_collected=collected,
        serials_checked=checked,
    )
