"""Alexa-driven availability scans (paper Section 5.1 Alexa1M dataset,
Section 5.2 "Impact of Outages" / Figure 4).

The paper's Alexa1M dataset maps 606,367 OCSP-supporting Alexa Top-1M
domains onto 128 responders, then asks: when a responder is
unreachable from a vantage point, how many popular domains just lost
their revocation path?  Here, Alexa domains are assigned to the
measurement world's responder families using the per-family shares
observed in the paper (Comodo's outage hit ~163K of 606K domains, the
Digicert/Seoul event ~77K, the São Paulo-persistent set 318).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..datasets.alexa import AlexaModel
from ..datasets.marketshare import ALEXA_OCSP_CERTIFICATES
from ..datasets.world import MeasurementWorld, ResponderSite, default_event_groups
from ..simnet import ocsp_post
from ..simnet.vantage import VANTAGE_POINTS


@dataclass
class AlexaAssignment:
    """Scaled count of Alexa OCSP domains behind each responder site."""

    site: ResponderSite
    domain_count: float  # at full Alexa scale (sums to ~606,367)


class AlexaAvailability:
    """Computes Figure 4: popular domains unable to fetch OCSP."""

    def __init__(self, world: MeasurementWorld, seed: int = 11,
                 total_domains: int = ALEXA_OCSP_CERTIFICATES,
                 network=None) -> None:
        self.world = world
        self.total_domains = total_domains
        #: Fetch substrate (overridable with a fault-injecting wrapper).
        self.network = world.network if network is None else network
        self.assignments = self._assign(seed)

    def _assign(self, seed: int) -> List[AlexaAssignment]:
        rng = random.Random(seed)
        shares = {g.name: g.alexa_share for g in default_event_groups()}
        by_family: Dict[str, List[ResponderSite]] = {}
        for site in self.world.sites:
            by_family.setdefault(site.family, []).append(site)

        assignments: List[AlexaAssignment] = []
        assigned_share = 0.0
        for family, sites in by_family.items():
            share = shares.get(family, 0.0)
            if family == "generic" or share <= 0:
                continue
            assigned_share += share
            per_site = share * self.total_domains / len(sites)
            for site in sites:
                assignments.append(AlexaAssignment(site, per_site))

        generic_sites = by_family.get("generic", [])
        if generic_sites:
            remaining = max(0.0, 1.0 - assigned_share) * self.total_domains
            # Popularity is skewed: draw uneven weights for generic
            # sites.  Persistently-faulty responders carry almost no
            # popular domains — the paper's whole São Paulo-persistent
            # set covers only ~318 of 606K domains.
            weights = []
            for site in generic_sites:
                if "persistent-fault" in site.tags:
                    weights.append(0.001)
                else:
                    # Cap so no single generic responder carries an
                    # outsized share (keeps one noisy hour from moving
                    # the whole Figure-4 series).
                    weights.append(min(5.0, rng.paretovariate(1.2)))
            total_weight = sum(weights)
            for site, weight in zip(generic_sites, weights):
                assignments.append(AlexaAssignment(site, remaining * weight / total_weight))
        return assignments

    # -- probing --------------------------------------------------------------------

    def site_reachable(self, site: ResponderSite, vantage: str, now: int) -> bool:
        """One lightweight reachability probe (request for the first cert)."""
        if not site.certificates:
            return True
        from ..ocsp import OCSPRequest
        request_der = OCSPRequest.for_single(site.cert_ids[0]).encode()
        fetch = self.network.fetch(
            vantage, ocsp_post(site.url, request_der), now
        )
        return fetch.ok

    def domains_unable(self, vantage: str, now: int) -> float:
        """Scaled count of Alexa domains whose responder fails from
        *vantage* at *now*."""
        unable = 0.0
        for assignment in self.assignments:
            if not self.site_reachable(assignment.site, vantage, now):
                unable += assignment.domain_count
        return unable

    def persistent_floor(self, vantage: str, times: Sequence[int]) -> float:
        """Domains unable at *every* sampled time from *vantage*.

        Separates the paper's persistent set ("the client in São Paulo
        is always unable to fetch the OCSP responses of 318 (0.05%)
        domains' certificates") from transient noise: a domain counts
        only when its responder fails at all sampled times.
        """
        persistent: Optional[set] = None
        for now in times:
            failing = {
                id(assignment) for assignment in self.assignments
                if not self.site_reachable(assignment.site, vantage, now)
            }
            persistent = failing if persistent is None else persistent & failing
        if not persistent:
            return 0.0
        return sum(a.domain_count for a in self.assignments
                   if id(a) in persistent)

    def series(self, times: Sequence[int],
               vantages: Optional[Sequence[str]] = None,
               ) -> Dict[str, List[Tuple[int, float]]]:
        """The Figure-4 time series per vantage."""
        vantages = list(vantages or VANTAGE_POINTS)
        return {
            vantage: [(now, self.domains_unable(vantage, now)) for now in times]
            for vantage in vantages
        }


@dataclass
class Alexa1MSummary:
    """The one-shot Alexa1M scan result (May 1, 2018)."""

    vantage: str
    timestamp: int
    responders_probed: int
    responders_failing: int
    domains_unable: float


def alexa1m_scan(availability: AlexaAvailability, now: int,
                 vantages: Optional[Sequence[str]] = None) -> List[Alexa1MSummary]:
    """Run the one-shot scan from each vantage."""
    vantages = list(vantages or VANTAGE_POINTS)
    summaries = []
    for vantage in vantages:
        failing = 0
        unable = 0.0
        for assignment in availability.assignments:
            if not availability.site_reachable(assignment.site, vantage, now):
                failing += 1
                unable += assignment.domain_count
        summaries.append(Alexa1MSummary(
            vantage=vantage,
            timestamp=now,
            responders_probed=len(availability.assignments),
            responders_failing=failing,
            domains_unable=unable,
        ))
    return summaries
