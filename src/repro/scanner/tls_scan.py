"""TLS handshake scanning for stapling detection (paper Section 7.1).

"A certificate by itself does not tell whether an administrator has
enabled OCSP Stapling; instead, we need to see if the web server
provides an OCSP response during the TLS handshake."  This scanner
performs status_request handshakes against live web-server models and
records whether a CertificateStatus came back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..ocsp import ResponseArtifact
from ..tls import ClientHello
from ..webserver import StaplingWebServer


@dataclass
class HandshakeObservation:
    """One scanned domain's stapling posture."""

    hostname: str
    software: str
    stapled: bool
    must_staple: bool
    handshake_delay_ms: float
    #: The stapled bytes as a transport-neutral artifact — provenance
    #: tag, producedAt, and nextUpdate without the caller re-parsing
    #: DER; None when nothing was stapled.
    staple: Optional[ResponseArtifact] = None
    #: Whether the staple was still valid at scan time (None when
    #: nothing was stapled).
    staple_fresh: Optional[bool] = None


def scan_servers(servers: Sequence[StaplingWebServer], now: int,
                 warmup_connections: int = 1) -> List[HandshakeObservation]:
    """Handshake-scan each server, optionally after warm-up connections.

    *warmup_connections* models real scans hitting servers that have
    already served traffic — a cold Nginx never staples to its first
    client (Table 3), which would undercount stapling support.
    """
    observations = []
    for server in servers:
        hostname = server.leaf.dns_names[0] if server.leaf.dns_names else "unknown"
        hello = ClientHello(server_name=hostname, status_request=True)
        for i in range(warmup_connections):
            server.handle_connection(hello, now - 60 * (warmup_connections - i))
        handshake = server.handle_connection(hello, now)
        staple = None
        if handshake.stapled_ocsp is not None:
            staple = ResponseArtifact.from_body(handshake.stapled_ocsp,
                                                source="stapled")
        observations.append(HandshakeObservation(
            hostname=hostname,
            software=server.software,
            stapled=handshake.stapled_ocsp is not None,
            must_staple=server.leaf.must_staple,
            handshake_delay_ms=handshake.handshake_delay_ms,
            staple=staple,
            staple_fresh=staple.fresh(now) if staple is not None else None,
        ))
    return observations


def stapling_rate(observations: Sequence[HandshakeObservation]) -> float:
    """Fraction of scanned servers that stapled."""
    if not observations:
        return 0.0
    return sum(1 for o in observations if o.stapled) / len(observations)
