"""The Hourly-dataset scanner (paper Section 5.1).

Replays the paper's methodology: from each vantage point, issue an
OCSP request (HTTP POST) for every selected certificate against its
responder on a fixed cadence across the measurement window, verifying
each response like the measurement client did.

The paper scanned hourly for 132 days; the scan *interval* here is
configurable so tests can run minutes-long windows and benchmarks can
trade cadence for wall-clock time without changing any shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from ..datasets.world import MeasurementWorld, ScanTarget
from ..ocsp import verify_response
from ..simnet import HOUR, ocsp_post
from ..simnet.vantage import VANTAGE_POINTS
from .results import ProbeOutcome, ProbeRecord, classify_probe


@dataclass
class ScanDataset:
    """All probe records from one scan campaign."""

    records: List[ProbeRecord] = field(default_factory=list)
    vantages: Sequence[str] = tuple(VANTAGE_POINTS)
    interval: int = HOUR
    start: int = 0
    end: int = 0

    def __len__(self) -> int:
        return len(self.records)

    def by_vantage(self, vantage: str) -> List[ProbeRecord]:
        """Records from one vantage point."""
        return [r for r in self.records if r.vantage == vantage]

    def by_responder(self, url: str) -> List[ProbeRecord]:
        """Records against one responder URL."""
        return [r for r in self.records if r.responder_url == url]

    def responder_urls(self) -> List[str]:
        """Distinct responder URLs, stable order."""
        seen = {}
        for record in self.records:
            seen.setdefault(record.responder_url, None)
        return list(seen)

    def scan_times(self) -> List[int]:
        """Distinct probe timestamps, ascending."""
        return sorted({record.timestamp for record in self.records})

    def to_dict(self) -> dict:
        """Campaign metadata plus every probe row as plain mappings —
        the exact content :mod:`repro.scanner.io` persists."""
        from .io import record_to_dict
        return {
            "vantages": list(self.vantages),
            "interval": self.interval,
            "start": self.start,
            "end": self.end,
            "records": [record_to_dict(r) for r in self.records],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScanDataset":
        """Rebuild a dataset from :meth:`to_dict` output."""
        from .io import record_from_dict
        return cls(
            records=[record_from_dict(r) for r in data.get("records", [])],
            vantages=tuple(data.get("vantages", ())),
            interval=data.get("interval", HOUR),
            start=data.get("start", 0),
            end=data.get("end", 0),
        )

    def content_digest(self) -> str:
        """Content address over metadata and all rows; byte-identical
        datasets — and only those — share a digest."""
        from ..canon import stable_digest
        return stable_digest(self)


class HourlyScanner:
    """Drives the periodic OCSP measurement over a MeasurementWorld."""

    def __init__(self, world: MeasurementWorld,
                 vantages: Optional[Sequence[str]] = None,
                 interval: int = HOUR, network=None) -> None:
        self.world = world
        self.vantages = list(vantages or VANTAGE_POINTS)
        self.interval = interval
        #: The fetch substrate — normally the world's network, but any
        #: object with its ``fetch`` shape works (the chaos experiments
        #: pass a :class:`repro.faults.FaultyNetwork` wrapper here).
        self.network = world.network if network is None else network

    def probe(self, target: ScanTarget, vantage: str, now: int) -> ProbeRecord:
        """One OCSP lookup for one certificate from one vantage."""
        site = target.site
        fetch = self.network.fetch(
            vantage, ocsp_post(site.url, target.request_der), now
        )
        check = None
        if fetch.ok:
            check = verify_response(
                fetch.response.body,
                target.cert_id,
                site.authority.certificate,
                now,
            )
        return classify_probe(
            vantage=vantage,
            responder_url=site.url,
            family=site.family,
            serial_number=target.cert_id.serial_number,
            timestamp=now,
            fetch=fetch,
            check=check,
        )

    def run(self, start: Optional[int] = None, end: Optional[int] = None,
            targets: Optional[Sequence[ScanTarget]] = None) -> ScanDataset:
        """Scan every target from every vantage at each interval tick.

        Expired certificates drop out of the scan, as in the paper
        ("we excluded certificates from our measurement results once
        they had expired", footnote 9).
        """
        start = self.world.config.start if start is None else start
        end = self.world.config.end if end is None else end
        targets = list(self.world.scan_targets() if targets is None else targets)

        dataset = ScanDataset(vantages=tuple(self.vantages),
                              interval=self.interval, start=start, end=end)
        now = start
        while now < end:
            for target in targets:
                if target.certificate.validity.not_after < now:
                    continue
                for vantage in self.vantages:
                    dataset.records.append(self.probe(target, vantage, now))
            now += self.interval
        return dataset
