"""Probe result records and their classification.

A :class:`ProbeRecord` captures one OCSP lookup from one vantage point
at one time — the unit of the paper's Hourly dataset — carrying both
the transport outcome and the parsed/verified response metadata that
Figures 3-9 aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..ocsp import CertStatus, OCSPCheckResult, OCSPError
from ..simnet import FailureKind, FetchResult


class ProbeOutcome(Enum):
    """Top-level classification of one probe."""

    OK = "usable response"
    DNS_FAILURE = "DNS failure"
    TCP_FAILURE = "TCP failure"
    TLS_FAILURE = "invalid HTTPS certificate"
    HTTP_ERROR = "HTTP non-200"
    MALFORMED = "malformed response"
    ERROR_STATUS = "OCSP error status"
    SERIAL_MISMATCH = "serial mismatch"
    BAD_SIGNATURE = "bad signature"
    NOT_YET_VALID = "thisUpdate in the future"
    EXPIRED = "nextUpdate passed"


_FAILURE_TO_OUTCOME = {
    FailureKind.DNS: ProbeOutcome.DNS_FAILURE,
    FailureKind.TCP: ProbeOutcome.TCP_FAILURE,
    FailureKind.TLS: ProbeOutcome.TLS_FAILURE,
    FailureKind.HTTP: ProbeOutcome.HTTP_ERROR,
}

_OCSP_ERROR_TO_OUTCOME = {
    OCSPError.MALFORMED: ProbeOutcome.MALFORMED,
    OCSPError.ERROR_STATUS: ProbeOutcome.ERROR_STATUS,
    OCSPError.SERIAL_MISMATCH: ProbeOutcome.SERIAL_MISMATCH,
    OCSPError.BAD_SIGNATURE: ProbeOutcome.BAD_SIGNATURE,
    OCSPError.NOT_YET_VALID: ProbeOutcome.NOT_YET_VALID,
    OCSPError.EXPIRED: ProbeOutcome.EXPIRED,
    OCSPError.NONCE_MISMATCH: ProbeOutcome.MALFORMED,
}


@dataclass
class ProbeRecord:
    """One OCSP probe: transport result + response quality metadata."""

    vantage: str
    responder_url: str
    family: str
    serial_number: int
    timestamp: int
    outcome: ProbeOutcome
    elapsed_ms: float = 0.0
    http_status: Optional[int] = None
    # Response metadata (None unless the response parsed).
    cert_status: Optional[CertStatus] = None
    this_update: Optional[int] = None
    next_update: Optional[int] = None
    produced_at: Optional[int] = None
    num_certificates: Optional[int] = None
    num_serials: Optional[int] = None
    #: Encoded response size in bytes (the superfluous-certificate
    #: bloat of Figure 6's discussion shows up here).
    response_size: Optional[int] = None
    # Parse-error attribution (None unless outcome is MALFORMED with a
    # known cause): exception class name, message, and the byte offset
    # in the response where decoding failed.
    parse_error_class: Optional[str] = None
    parse_error_detail: Optional[str] = None
    parse_error_offset: Optional[int] = None

    @property
    def transport_ok(self) -> bool:
        """The paper's Figure-3 success criterion: HTTP 200 came back."""
        return self.outcome not in (
            ProbeOutcome.DNS_FAILURE,
            ProbeOutcome.TCP_FAILURE,
            ProbeOutcome.TLS_FAILURE,
            ProbeOutcome.HTTP_ERROR,
        )

    @property
    def usable(self) -> bool:
        """Fully verified, in-window response (Figure-5 complement)."""
        return self.outcome is ProbeOutcome.OK

    @property
    def validity_period(self) -> Optional[int]:
        """nextUpdate - thisUpdate; None when either is missing/blank."""
        if self.this_update is None or self.next_update is None:
            return None
        return self.next_update - self.this_update

    @property
    def this_update_margin(self) -> Optional[int]:
        """Seconds between thisUpdate and receipt (Figure 9's x axis)."""
        if self.this_update is None:
            return None
        return self.timestamp - self.this_update


def classify_probe(vantage: str, responder_url: str, family: str,
                   serial_number: int, timestamp: int, fetch: FetchResult,
                   check: Optional[OCSPCheckResult]) -> ProbeRecord:
    """Build a ProbeRecord from a fetch and (optional) verification."""
    record = ProbeRecord(
        vantage=vantage,
        responder_url=responder_url,
        family=family,
        serial_number=serial_number,
        timestamp=timestamp,
        outcome=ProbeOutcome.OK,
        elapsed_ms=fetch.elapsed_ms,
        http_status=fetch.status_code,
    )
    if fetch.failure is not None:
        record.outcome = _FAILURE_TO_OUTCOME[fetch.failure]
        return record
    if fetch.response is not None:
        record.response_size = len(fetch.response.body)
    if check is None:
        record.outcome = ProbeOutcome.MALFORMED
        return record
    if check.error is not None:
        record.outcome = _OCSP_ERROR_TO_OUTCOME[check.error]
    record.parse_error_class = check.error_class
    record.parse_error_detail = check.error_detail
    record.parse_error_offset = check.error_offset
    record.cert_status = check.cert_status
    if check.response is not None and check.response.basic is not None:
        basic = check.response.basic
        record.produced_at = basic.produced_at
        record.num_certificates = len(basic.certificates)
        record.num_serials = len(basic.single_responses)
    if check.single is not None:
        record.this_update = check.single.this_update
        record.next_update = check.single.next_update
    return record
